//! E1: regenerate the Figure 1 source inventory by actually building and
//! parsing a sample of each data-source class the paper lists, reporting
//! the representation class, the volume parsed, and the error classes the
//! accumulators detect.
//!
//! ```text
//! cargo run --example sources_table
//! ```

use pads::{
    compile, descriptions, BaseMask, Charset, Mask, PadsParser, ParseOptions, RecordDiscipline,
    Registry,
};

struct Row {
    name: &'static str,
    representation: &'static str,
    bytes: usize,
    records: usize,
    bad_records: usize,
    common_errors: String,
}

fn mask() -> Mask {
    Mask::all(BaseMask::CheckAndSet)
}

fn classify(pd: &pads::ParseDesc) -> String {
    use std::collections::BTreeSet;
    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
    for (_, code, _) in pd.errors() {
        kinds.insert(if code.is_semantic() { "unexpected values" } else { "corrupted data" });
    }
    if kinds.is_empty() {
        "none".to_owned()
    } else {
        kinds.into_iter().collect::<Vec<_>>().join(", ")
    }
}

fn main() {
    let registry = Registry::standard();
    let mut rows = Vec::new();

    // Web server logs (CLF): fixed-column ASCII records.
    {
        let (data, _) =
            pads_gen::clf::generate(&pads_gen::ClfConfig { records: 20_000, ..Default::default() });
        let schema = descriptions::clf();
        let parser = PadsParser::new(&schema, &registry);
        let m = mask();
        let (records, bad) = parser
            .records(&data, "entry_t", &m)
            .fold((0, 0), |(n, b), (_, pd)| (n + 1, b + (!pd.is_ok()) as usize));
        let (_, pd) = parser.parse_source(&data, &m);
        rows.push(Row {
            name: "Web server logs (CLF)",
            representation: "fixed-column ASCII records",
            bytes: data.len(),
            records,
            bad_records: bad,
            common_errors: classify(&pd),
        });
    }

    // AT&T provisioning data (Sirius): variable-width ASCII records.
    {
        let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
            records: 20_000,
            ..Default::default()
        });
        let schema = descriptions::sirius();
        let parser = PadsParser::new(&schema, &registry);
        let (v, pd) = parser.parse_source(&data, &mask());
        let records = v.at_path("es").and_then(pads::Value::len).unwrap_or(0);
        let bad = pd
            .errors()
            .iter()
            .map(|(p, _, _)| p.split(']').next().unwrap_or("").to_owned())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        rows.push(Row {
            name: "Provisioning data (Sirius)",
            representation: "variable-width ASCII records",
            bytes: data.len(),
            records,
            bad_records: bad,
            common_errors: classify(&pd),
        });
    }

    // Call detail: fixed-width binary records.
    {
        let schema = compile(
            r#"
            Precord Pstruct call_t {
                Pb_uint32 caller;
                Pb_uint32 callee;
                Pb_uint16 duration;
                Pb_uint8 flags : flags <= 7;
            };
            Psource Parray calls_t { call_t[]; };
            "#,
            &registry,
        )
        .expect("call detail description");
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut data = Vec::new();
        let n = 20_000;
        for _ in 0..n {
            data.extend_from_slice(&rng.gen::<u32>().to_be_bytes());
            data.extend_from_slice(&rng.gen::<u32>().to_be_bytes());
            data.extend_from_slice(&rng.gen::<u16>().to_be_bytes());
            // Mostly sane flags; ~1% undocumented values (Figure 1's
            // "undocumented data" error class).
            data.push(if rng.gen_bool(0.01) { rng.gen_range(8..=255) } else { rng.gen_range(0..8) });
        }
        let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
            discipline: RecordDiscipline::FixedWidth(11),
            ..Default::default()
        });
        let (v, pd) = parser.parse_source(&data, &mask());
        rows.push(Row {
            name: "Call detail (fraud)",
            representation: "fixed-width binary records",
            bytes: data.len(),
            records: v.len().unwrap_or(0),
            bad_records: pd.errors().len(),
            common_errors: classify(&pd),
        });
    }

    // Billing data (Altair): Cobol formats, via the copybook translator.
    {
        let description = pads_cobol::translate(
            "
            01 BILL-REC.
               05 ACCT-ID   PIC 9(6).
               05 REGION    PIC X(3).
               05 AMOUNT    PIC S9(5) COMP-3.
            ",
        )
        .expect("copybook translates");
        let schema = compile(&description, &registry).expect("translation compiles");
        let mut data = Vec::new();
        let n = 20_000;
        for i in 0..n {
            for d in format!("{:06}", i % 1_000_000).bytes() {
                data.push(0xF0 | (d - b'0'));
            }
            for b in "NE1".bytes() {
                data.push(Charset::Ebcdic.encode(b));
            }
            data.extend_from_slice(&[0x01, 0x23, 0x4C]);
        }
        let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
            charset: Charset::Ebcdic,
            discipline: RecordDiscipline::FixedWidth(12),
            ..Default::default()
        });
        let (v, pd) = parser.parse_source(&data, &mask());
        rows.push(Row {
            name: "Billing data (Altair)",
            representation: "Cobol (EBCDIC zoned/packed)",
            bytes: data.len(),
            records: v.len().unwrap_or(0),
            bad_records: pd.errors().len(),
            common_errors: classify(&pd),
        });
    }

    println!(
        "{:<28} {:<30} {:>10} {:>8} {:>6}  {}",
        "Name & Use", "Representation", "bytes", "records", "bad", "Detected error classes"
    );
    for r in rows {
        println!(
            "{:<28} {:<30} {:>10} {:>8} {:>6}  {}",
            r.name, r.representation, r.bytes, r.records, r.bad_records, r.common_errors
        );
    }
}
