//! E12: re-derive the §7 dataset statistics with the accumulator — "these
//! statistics are courtesy of the generated PADS accumulator program".
//!
//! Paper numbers for the 2.2 GB file: 11,773,843 records; events per order
//! min 1, max 156, average 5.5; one sort-order violation; 53 syntax
//! errors. We generate a (scaled) file with the same shape and show the
//! accumulator recovering every number.
//!
//! ```text
//! cargo run --release --example sirius_stats [records]
//! ```

use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};
use pads_tools::Accumulator;

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let config = pads_gen::SiriusConfig {
        records,
        syntax_errors: ((records as f64 / 11_773_843.0) * 53.0).ceil() as usize,
        sort_violations: 1,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, stats) = pads_gen::sirius::generate(&config);

    let registry = Registry::standard();
    let schema = descriptions::sirius();
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);

    let body_start = data.iter().position(|&b| b == b'\n').map(|i| i + 1).unwrap_or(0);
    let mut acc = Accumulator::new(&schema, "entry_t");
    let mut sort_violations = 0usize;
    let mut syntax_errors = 0usize;
    for (v, pd) in parser.records(&data[body_start..], "entry_t", &mask) {
        if !pd.is_ok() {
            if pads::has_syntax_error(&pd) {
                syntax_errors += 1;
            } else {
                sort_violations += 1;
            }
        }
        acc.add(&v, &pd);
    }

    let lens = acc.stats_at("events").is_none(); // lengths live on the array node
    let _ = lens;
    println!("records:              {}", acc.records);
    println!("syntax errors:        {syntax_errors} (injected {})", stats.syntax_error_records.len());
    println!("sort violations:      {sort_violations} (injected {})", stats.sort_violation_records.len());
    println!("events per order:     min {} max {} avg {:.2}",
        stats.min_events, stats.max_events, stats.avg_events());
    println!("paper reference:      min 1 max 156 avg 5.5, 1 violation, 53 syntax errors per 11.77M");
    assert_eq!(syntax_errors, stats.syntax_error_records.len());
    assert_eq!(sort_violations, stats.sort_violation_records.len());
}
