//! Quickstart: describe a small ad hoc format, parse it, inspect errors,
//! and write it back.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pads::{compile, BaseMask, Mask, PadsParser, Registry, Value, Writer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the data as it is: an order id, a state, and a total that
    //    must not shrink below the id (a made-up semantic constraint).
    let registry = Registry::standard();
    let schema = compile(
        r#"
        Penum state_t { OPEN, SHIP, DONE };
        Precord Pstruct order_t {
            Puint32 id;
            '|'; state_t state;
            '|'; Popt Pzip zip;
            '|'; Puint32 total : total >= id;
        };
        Psource Parray orders_t { order_t[]; };
        "#,
        &registry,
    )?;

    // 2. Parse — errors never abort; they land in the parse descriptor.
    let data = b"7|OPEN|07974|19\n8|SHIP||20\n9|DONE|oops|1\n";
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let (orders, pd) = parser.parse_source(data, &mask);

    println!("parsed {} orders, {} error(s)", orders.len().unwrap_or(0), pd.nerr);
    for (path, code, loc) in pd.errors() {
        println!("  error at {path}: {code} ({:?})", loc.map(|l| l.begin.record));
    }

    // 3. Use the representation like plain data.
    for i in 0..orders.len().unwrap_or(0) {
        let id = orders.at_path(&format!("[{i}].id")).and_then(Value::as_u64);
        let state = orders.at_path(&format!("[{i}].state"));
        println!("order {:?} in state {}", id, state.map(|s| s.to_string()).unwrap_or_default());
    }

    // 4. Write the clean records back out in original form.
    let writer = Writer::new(&schema, &registry);
    let mut out = Vec::new();
    for i in 0..orders.len().unwrap_or(0) {
        // Skip the record with errors (the third: bad zip syntax).
        let has_error = pd
            .errors()
            .iter()
            .any(|(p, _, _)| p.starts_with(&format!("[{i}]")));
        if !has_error {
            writer.write_named(&mut out, "order_t", orders.index(i).expect("indexed order"))?;
        }
    }
    println!("clean file:\n{}", String::from_utf8_lossy(&out));
    Ok(())
}
