//! The Figure 7 program: filter and normalise Sirius provisioning data.
//!
//! Reads (synthetic) Sirius data, checks all conditions *except* the
//! event-timestamp sort order (via the mask), echoes error records to one
//! sink and cleaned records to another, unifying the two missing-phone-
//! number representations (`0` → `NONE`) on the way, re-verifying after the
//! transformation — exactly the flow of the paper's Figure 7 fragment.
//!
//! ```text
//! cargo run --example sirius_clean
//! ```

use pads::{descriptions, BaseMask, Mask, PadsParser, Registry, Value, Verifier, Writer};

/// `cnvPhoneNumbers`: turn literal-zero phone numbers into `NONE`.
fn cnv_phone_numbers(entry: &mut Value) {
    let header = entry.field_mut("header").expect("entry has a header");
    for field in ["service_tn", "billing_tn", "nlp_service_tn", "nlp_billing_tn"] {
        let v = header.field_mut(field).expect("phone field");
        if let Value::Opt(Some(inner)) = v {
            if inner.as_u64() == Some(0) {
                *v = Value::Opt(None);
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic stand-in for "dibbler/data/2004.11.11" (proprietary).
    let config = pads_gen::SiriusConfig {
        records: 5_000,
        syntax_errors: 53,
        sort_violations: 1,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, stats) = pads_gen::sirius::generate(&config);

    let registry = Registry::standard();
    let schema = descriptions::sirius();
    let parser = PadsParser::new(&schema, &registry);
    let writer = Writer::new(&schema, &registry);
    let verifier = Verifier::new(&schema);

    // entry_t_m_init(p, &mask, P_CheckAndSet); mask.events.compoundLevel = P_Set;
    let mut mask = Mask::all(BaseMask::CheckAndSet);
    mask.set_compound_at("events", BaseMask::Set);

    let mut clean_file: Vec<u8> = Vec::new();
    let mut err_file: Vec<u8> = Vec::new();
    let mut clean = 0usize;
    let mut errored = 0usize;

    // Read and re-emit the summary header record untouched.
    let body_start = data.iter().position(|&b| b == b'\n').map(|i| i + 1).unwrap_or(0);
    clean_file.extend_from_slice(&data[..body_start]);

    for (mut entry, pd) in parser.records(&data[body_start..], "entry_t", &mask) {
        if pd.nerr > 0 {
            // entry_t_write2io(p, ERR_FILE, ...): sadly the raw bytes are the
            // faithful thing to echo for broken records.
            errored += 1;
            err_file.extend_from_slice(format!("# {}\n", pd).as_bytes());
            continue;
        }
        cnv_phone_numbers(&mut entry);
        // entry_t_verify(&entry) — ignoring the sort check we masked out.
        let violations = verifier.verify_named("entry_t", &entry);
        let fatal: Vec<_> = violations
            .iter()
            .filter(|v| v.code != pads::ErrorCode::ForallViolation)
            .collect();
        if fatal.is_empty() {
            writer.write_named(&mut clean_file, "entry_t", &entry)?;
            clean += 1;
        } else {
            eprintln!("Data transform failed: {fatal:?}");
            std::process::exit(2);
        }
    }

    println!("records:        {}", stats.records);
    println!("cleaned:        {clean}");
    println!("error records:  {errored} (injected: {})", stats.syntax_error_records.len());
    println!("clean file:     {} bytes", clean_file.len());
    println!("error log:      {} bytes", err_file.len());
    assert_eq!(errored, stats.syntax_error_records.len());
    Ok(())
}
