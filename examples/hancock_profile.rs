//! §5.1.2: Hancock streams. Hancock builds persistent per-entity profiles
//! from transaction streams; at AT&T it consumed call-detail records to
//! profile phone numbers for fraud detection, and "defining the input
//! streams turned out to be one of the most difficult parts" — the problem
//! that motivated PADS, and masks in particular.
//!
//! This example is that pipeline: a PADS description of binary call-detail
//! records feeds a Hancock-style profiler keyed by caller. Two "apps"
//! share one description but pay for different checks via masks, exactly
//! the §5.1.2 story ("each application could only afford to check for the
//! errors immediately relevant to it").
//!
//! ```text
//! cargo run --release --example hancock_profile [records]
//! ```

use std::collections::HashMap;

use pads::{
    compile, BaseMask, Mask, PadsParser, ParseOptions, RecordDiscipline, Registry, Value,
};
use rand::{Rng, SeedableRng};

const CALL_DETAIL: &str = r#"
    Precord Pstruct call_t {
        Pb_uint32 caller;
        Pb_uint32 callee;
        Pb_uint32 start;
        Pb_uint16 duration : duration > 0;
        Pb_uint8  kind : kind <= 2;
    };
    Psource Parray calls_t { call_t[]; };
"#;

/// A Hancock-style per-entity profile.
#[derive(Debug, Clone, Default)]
struct Profile {
    calls: u64,
    total_secs: u64,
    distinct_hours: [bool; 24],
    suspicious: u64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    // Synthesise a call-detail stream: 500 heavy callers plus a long tail,
    // with ~0.5% corrupted records (zero duration / unknown kind).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCA11);
    let mut data = Vec::with_capacity(records * 15);
    for _ in 0..records {
        let caller: u32 = if rng.gen_bool(0.6) {
            1_000 + rng.gen_range(0..500)
        } else {
            rng.gen_range(10_000..1_000_000)
        };
        data.extend_from_slice(&caller.to_be_bytes());
        data.extend_from_slice(&rng.gen_range(10_000u32..999_999).to_be_bytes());
        data.extend_from_slice(&rng.gen_range(1_000_000_000u32..1_000_900_000).to_be_bytes());
        let duration: u16 =
            if rng.gen_bool(0.003) { 0 } else { rng.gen_range(1..3600) };
        data.extend_from_slice(&duration.to_be_bytes());
        data.push(if rng.gen_bool(0.002) { 9 } else { rng.gen_range(0..3) });
    }

    let registry = Registry::standard();
    let schema = compile(CALL_DETAIL, &registry)?;
    let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
        discipline: RecordDiscipline::FixedWidth(15),
        ..Default::default()
    });

    // App 1 — the fraud profiler: duration errors matter (they corrupt the
    // minutes totals), kind errors do not. Mask accordingly.
    let mut mask = Mask::all(BaseMask::CheckAndSet);
    mask.set_at("kind", BaseMask::Set);

    let mut profiles: HashMap<u64, Profile> = HashMap::new();
    let mut rejected = 0u64;
    for (call, pd) in parser.records(&data, "call_t", &mask) {
        if !pd.is_ok() {
            rejected += 1;
            continue;
        }
        let caller = call.at_path("caller").and_then(Value::as_u64).expect("caller");
        let start = call.at_path("start").and_then(Value::as_u64).expect("start");
        let dur = call.at_path("duration").and_then(Value::as_u64).expect("duration");
        let p = profiles.entry(caller).or_default();
        p.calls += 1;
        p.total_secs += dur;
        p.distinct_hours[(start / 3600 % 24) as usize] = true;
        if dur > 3000 {
            p.suspicious += 1;
        }
    }

    // App 2 — a billing auditor: every constraint matters.
    let strict = Mask::all(BaseMask::CheckAndSet);
    let strict_rejects =
        parser.records(&data, "call_t", &strict).filter(|(_, pd)| !pd.is_ok()).count();

    let mut top: Vec<(&u64, &Profile)> = profiles.iter().collect();
    top.sort_by_key(|(_, p)| std::cmp::Reverse(p.calls));
    println!("stream: {records} records, {} distinct callers", profiles.len());
    println!("fraud profiler rejected {rejected} records (duration errors only)");
    println!("billing auditor would reject {strict_rejects} (all constraints)");
    println!("\ntop callers:");
    println!("{:>10} {:>8} {:>10} {:>6} {:>6}", "caller", "calls", "secs", "hours", "susp");
    for (caller, p) in top.iter().take(5) {
        let hours = p.distinct_hours.iter().filter(|&&h| h).count();
        println!(
            "{:>10} {:>8} {:>10} {:>6} {:>6}",
            caller, p.calls, p.total_secs, hours, p.suspicious
        );
    }
    assert!(strict_rejects as u64 >= rejected);
    Ok(())
}
