//! E7: the accumulator report of §5.2 for the `length` field of web server
//! logs, on synthetic CLF data with the paper's 6.666% `-` injection.
//!
//! The paper's report (run over a real research dataset):
//!
//! ```text
//! <top>.length : uint32
//! +++++++++++++++++++++++++++++++++++++++++++
//! good: 53544 bad: 3824 pcnt-bad: 6.666
//! min: 35 max: 248591 avg: 4090.234
//! top 10 values out of 1000 distinct values:
//! tracked 99.552% of values
//!  val: 3082 count: 1254 %-of-good: 2.342
//!  ...
//!  SUMMING count: 9655 %-of-good: 18.032
//! ```
//!
//! ```text
//! cargo run --example clf_accum
//! ```

use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};
use pads_tools::Accumulator;

fn main() {
    // The paper's dataset has 53544 + 3824 = 57368 records.
    let config = pads_gen::ClfConfig { records: 57_368, ..pads_gen::ClfConfig::default() };
    let (data, stats) = pads_gen::clf::generate(&config);

    let registry = Registry::standard();
    let schema = descriptions::clf();
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);

    let mut acc = Accumulator::new(&schema, "entry_t");
    for (v, pd) in parser.records(&data, "entry_t", &mask) {
        acc.add(&v, &pd);
    }

    // Print just the length-field section (the paper's sample), then a
    // summary of everything else.
    let report = acc.report("<top>");
    let mut printing = false;
    for line in report.lines() {
        if line.starts_with("<top>.length") {
            printing = true;
        } else if printing && line.starts_with("<top>.") {
            break;
        }
        if printing {
            println!("{line}");
        }
    }
    let len = acc.stats_at("length").expect("length stats");
    println!();
    println!(
        "(injected {} dash lengths; accumulator saw {} bad = {:.3}%)",
        stats.dash_lengths,
        len.bad,
        len.pcnt_bad()
    );
    assert_eq!(len.bad as usize, stats.dash_lengths);
}
