//! §6: the base-type collection is user-extensible. The paper reads
//! base-type specifications from files backed by user C libraries; here a
//! custom type is a `BaseType` impl registered under its own name, after
//! which descriptions use it like any built-in.
//!
//! ```text
//! cargo run --example custom_base
//! ```

use std::sync::Arc;

use pads::{compile, BaseMask, Mask, PadsParser, Value};
use pads_runtime::base::BaseType;
use pads_runtime::{Charset, Cursor, Endian, ErrorCode, Prim, PrimKind, Registry};

/// A MAC address in colon-separated hex (`aa:bb:cc:dd:ee:ff`), stored as
/// its canonical lowercase text.
struct MacBase;

impl BaseType for MacBase {
    fn name(&self) -> &str {
        "Pmac"
    }

    fn kind(&self) -> PrimKind {
        PrimKind::String
    }

    fn parse(&self, cur: &mut Cursor<'_>, _args: &[Prim]) -> Result<Prim, ErrorCode> {
        let mut text = String::with_capacity(17);
        for group in 0..6 {
            if group > 0 {
                if cur.peek() != Some(b':') {
                    return Err(ErrorCode::LitMismatch);
                }
                cur.advance(1);
                text.push(':');
            }
            for _ in 0..2 {
                match cur.peek() {
                    Some(b) if b.is_ascii_hexdigit() => {
                        cur.advance(1);
                        text.push(b.to_ascii_lowercase() as char);
                    }
                    _ => return Err(ErrorCode::InvalidDigit),
                }
            }
        }
        Ok(Prim::String(text))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::String(s) => {
                out.extend(s.bytes().map(|b| charset.encode(b)));
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Register the custom type alongside the standard collection.
    let mut registry = Registry::standard();
    registry.register(Arc::new(MacBase));

    // Use it in a description like any built-in.
    let schema = compile(
        r#"
        Precord Pstruct lease_t {
            Pmac mac;
            ' '; Pip addr;
            ' '; Puint32 ttl : ttl <= 86400;
        };
        Psource Parray leases_t { lease_t[]; };
        "#,
        &registry,
    )?;

    let data = b"00:1A:2b:3C:4d:5E 10.0.0.17 3600\nde:ad:be:ef:00:01 10.0.0.18 7200\n";
    let parser = PadsParser::new(&schema, &registry);
    let (v, pd) = parser.parse_source(data, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok(), "{:?}", pd.errors());
    for i in 0..v.len().unwrap_or(0) {
        println!(
            "lease {} -> {} (ttl {})",
            v.at_path(&format!("[{i}].mac")).and_then(Value::as_str).unwrap_or("?"),
            v.at_path(&format!("[{i}].addr")).map(|a| a.to_string()).unwrap_or_default(),
            v.at_path(&format!("[{i}].ttl")).and_then(Value::as_u64).unwrap_or(0),
        );
    }
    // Canonicalised on the way in (lowercase), written back canonically.
    assert_eq!(
        v.at_path("[0].mac").and_then(Value::as_str),
        Some("00:1a:2b:3c:4d:5e")
    );
    Ok(())
}
