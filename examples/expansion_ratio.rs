//! E6: the §4 leverage metric — description lines versus generated-code
//! lines. The paper reports the 68-line Sirius description expanding to a
//! 1432-line `.h` plus a 6471-line `.c`.
//!
//! ```text
//! cargo run --example expansion_ratio
//! ```

use pads::descriptions;
use pads_codegen::{expansion, generate_rust};

fn main() {
    println!(
        "{:<10} {:>12} {:>16} {:>8}",
        "source", "descr lines", "generated lines", "ratio"
    );
    for (name, text, schema) in [
        ("clf", descriptions::CLF, descriptions::clf()),
        ("sirius", descriptions::SIRIUS, descriptions::sirius()),
    ] {
        let generated = generate_rust(&schema, name).expect("bundled descriptions generate");
        let e = expansion(text, &generated);
        println!(
            "{name:<10} {:>12} {:>16} {:>8.1}",
            e.description_lines,
            e.generated_lines,
            e.ratio()
        );
    }
    println!("\npaper (C backend): sirius 68 lines -> 1432 (.h) + 6471 (.c) = ~116x");
    println!("(the Rust backend shares framing helpers in the runtime crate,");
    println!(" so its ratio is lower; the leverage claim is the order of magnitude)");
}
