//! The Altair copybook tool (§5.2): translate a Cobol copybook into a PADS
//! description and show that it compiles.
//!
//! ```text
//! cargo run --example cobol_translate [copybook-file]
//! ```

use pads::Registry;

const SAMPLE: &str = "
   01 BILLING-REC.
      05 ACCOUNT-ID       PIC 9(8).
      05 CUST-NAME        PIC X(12).
      05 OLD-NAME REDEFINES CUST-NAME PIC 9(12).
      05 BALANCE          PIC S9(5)V99 COMP-3.
      05 USAGE-COUNT      PIC 9(4) COMP.
      05 HISTORY OCCURS 3 TIMES.
         10 HIST-CODE     PIC X(2).
         10 HIST-AMT      PIC S9(5) COMP-3.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let copybook = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => SAMPLE.to_owned(),
    };
    let description = pads_cobol::translate(&copybook)?;
    println!("{description}");
    let registry = Registry::standard();
    pads::compile(&description, &registry)?;
    eprintln!("(translated description compiles; parse it with Charset::Ebcdic)");
    Ok(())
}
