//! E11: the Figure 10 experiment — elapsed time of vetting and selection
//! over Sirius data, declarative PADS parser vs. hand-written split/regex
//! baselines, three runs each, plus the record-count floor.
//!
//! The paper ran a 2.2 GB / 11.77M-record file on a 500 MHz SGI Origin
//! 2000; scale the record count to taste:
//!
//! ```text
//! cargo run --release --example fig10 [records]
//! ```

use std::time::Instant;

use pads::generated::sirius::EntryT;
use pads::{BaseMask, Cursor, Mask};
use pads_baseline::{count_records, Selector};

const SELECT_STATE: &str = "LOC_CRTE";

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64(), r)
}

/// PADS vetter: parse each record with all checks on (including the event
/// sort order), write clean records to one sink, count error records.
fn pads_vet(data: &[u8], clean: &mut Vec<u8>) -> (usize, usize) {
    let mask = Mask::all(BaseMask::CheckAndSet);
    let mut cur = Cursor::new(data);
    let (mut ok, mut bad) = (0usize, 0usize);
    while !cur.at_eof() {
        let (entry, pd) = EntryT::read(&mut cur, &mask);
        if pd.is_ok() {
            ok += 1;
            entry
                .write(clean, pads::Charset::Ascii, pads::Endian::Big)
                .expect("clean entries write");
        } else {
            bad += 1;
        }
    }
    (ok, bad)
}

/// PADS selection: checks off, emit order numbers of records passing
/// through the state.
fn pads_select(data: &[u8], out: &mut Vec<u64>) {
    let mask = Mask::all(BaseMask::Set);
    let mut cur = Cursor::new(data);
    while !cur.at_eof() {
        let (entry, _) = EntryT::read(&mut cur, &mask);
        if entry.events.0.iter().any(|e| e.state == SELECT_STATE) {
            out.push(entry.header.order_num as u64);
        }
    }
}

/// PADS record count: record-framing only, no field parsing (the paper's
/// "PADS program that simply counts the number of records").
fn pads_count(data: &[u8]) -> usize {
    let mut cur = Cursor::new(data);
    let mut n = 0usize;
    while !cur.at_eof() {
        if cur.begin_record().is_err() {
            break;
        }
        cur.end_record();
        n += 1;
    }
    n
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    println!("generating {records} Sirius records ...");
    // Paper ratios: 53 syntax errors and 1 sort violation per 11.77M records.
    let config = pads_gen::SiriusConfig {
        records,
        syntax_errors: ((records as f64 / 11_773_843.0) * 53.0).ceil() as usize,
        sort_violations: 1,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, stats) = pads_gen::sirius::generate(&config);
    println!(
        "{} bytes, avg {:.2} events/order, {} syntax errors, {} sort violations\n",
        data.len(),
        stats.avg_events(),
        stats.syntax_error_records.len(),
        stats.sort_violation_records.len()
    );
    // Strip the summary header so both vetters see only order records.
    let body_start = data.iter().position(|&b| b == b'\n').map(|i| i + 1).unwrap_or(0);
    let body = &data[body_start..];

    // ---- Vetting: all properties checked, clean records written out ------
    println!("vetting (all checks on), 3 runs each, elapsed seconds:");
    println!("{:>12} {:>12}", "padsvet", "splitvet");
    let mut pads_clean = Vec::new();
    for run in 0..3 {
        pads_clean.clear();
        let (t_pads, (ok, bad)) = time(|| pads_vet(body, &mut pads_clean));
        let mut base_clean = Vec::new();
        let (t_base, summary) = time(|| pads_baseline::vet(body, &mut base_clean));
        assert_eq!(bad, summary.errors.len(), "both vetters reject the same records");
        assert_eq!(ok, summary.clean);
        println!("{t_pads:>12.3} {t_base:>12.3}");
        if run == 2 {
            println!(
                "  ({ok} clean, {bad} rejected; clean file {} bytes)",
                pads_clean.len()
            );
        }
    }

    // ---- Selection over the cleaned data (as in the paper) ----------------
    println!("\nselection of orders through {SELECT_STATE}, 3 runs each:");
    println!("{:>12} {:>12}", "padsselect", "regexselect");
    let selector = Selector::new(SELECT_STATE);
    for run in 0..3 {
        let mut pads_hits = Vec::new();
        let (t_pads, ()) = time(|| pads_select(&pads_clean, &mut pads_hits));
        let (t_base, base_hits) = time(|| selector.select_all(&pads_clean));
        assert_eq!(pads_hits, base_hits, "both selectors agree");
        println!("{t_pads:>12.3} {t_base:>12.3}");
        if run == 2 {
            println!("  ({} matching orders)", pads_hits.len());
        }
    }

    // ---- Record-count floor ------------------------------------------------
    println!("\nrecord count floor, 3 runs each:");
    println!("{:>12} {:>12}", "padscount", "newlinecount");
    for _ in 0..3 {
        let (t_pads, n_pads) = time(|| pads_count(body));
        let (t_base, n_base) = time(|| count_records(body));
        assert_eq!(n_pads, n_base);
        println!("{t_pads:>12.3} {t_base:>12.3}");
    }
}
