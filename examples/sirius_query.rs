//! E10: the three Sirius queries of §5.4 over synthetic provisioning data.
//!
//! ```text
//! cargo run --example sirius_query
//! ```

use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};
use pads_query::{Node, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = pads_gen::SiriusConfig {
        records: 2_000,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);

    let registry = Registry::standard();
    let schema = descriptions::sirius();
    let parser = PadsParser::new(&schema, &registry);
    let (value, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
    assert!(pd.is_ok());
    let root = Node::root("out_sum", &value, Some(&pd));

    // Query 1: all orders starting within a time window (the paper's
    // xs:date window, expressed in epoch seconds here).
    let (lo, hi) = (1_000_000_000u64, 1_040_000_000u64);
    let q1 = Query::parse(&format!(
        "/es/elt[events/elt[1]/tstamp >= {lo} and events/elt[1]/tstamp <= {hi}]"
    ))?;
    println!("orders starting in [{lo}, {hi}]: {}", q1.count(&root));

    // Query 2: count the orders going through a particular state.
    let q2 = Query::parse("/es/elt[events/elt/state = \"LOC_CRTE\"]")?;
    println!("orders passing through LOC_CRTE: {}", q2.count(&root));

    // Query 3: average time from LOC_CRTE to LOC_OS_10.
    let mut deltas: Vec<u64> = Vec::new();
    for order in q2.select(&root) {
        let events: Vec<_> =
            order.named("events").into_iter().flat_map(|e| e.named("elt")).collect();
        let from = events
            .iter()
            .position(|e| e.named("state")[0].value().as_str() == Some("LOC_CRTE"));
        let to = events
            .iter()
            .position(|e| e.named("state")[0].value().as_str() == Some("LOC_OS_10"));
        if let (Some(a), Some(b)) = (from, to) {
            if b > a {
                let ta = events[a].named("tstamp")[0].value().as_u64().unwrap_or(0);
                let tb = events[b].named("tstamp")[0].value().as_u64().unwrap_or(0);
                deltas.push(tb - ta);
            }
        }
    }
    if deltas.is_empty() {
        println!("no LOC_CRTE -> LOC_OS_10 transitions in this sample");
    } else {
        let avg = deltas.iter().sum::<u64>() as f64 / deltas.len() as f64;
        println!(
            "avg LOC_CRTE -> LOC_OS_10 latency: {avg:.1}s over {} orders",
            deltas.len()
        );
    }
    Ok(())
}
