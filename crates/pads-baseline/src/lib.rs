//! Hand-written baseline programs mirroring the paper's Perl comparators
//! (§7, Figures 9 and 10).
//!
//! The paper measures PADS against the scripts its user base would actually
//! write: a *vetter* that splits each record on `|` and checks every known
//! property, a *selection* program built around one compiled regular
//! expression (Figure 9), and a trivial record counter used as a floor.
//! These are the same three programs with the same algorithmic shape —
//! per-line `split`, compiled-regex scan, newline count — written directly
//! in Rust, since the original Perl interpreter is not part of this
//! reproduction (see DESIGN.md, substitutions).

use pads_regex::Regex;

/// Why the split-based vetter rejected a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VetError {
    /// Fewer than 13 header fields before the event list.
    TooFewFields,
    /// A numeric header field failed to parse.
    BadHeaderNumber,
    /// Zip code malformed.
    BadZip,
    /// Billing identifier neither numeric nor `no_ii<digits>`.
    BadRamp,
    /// The event list does not come in (state, timestamp) pairs.
    UnpairedEvents,
    /// An event timestamp failed to parse.
    BadTimestamp,
    /// Event timestamps out of order.
    UnsortedTimestamps,
    /// No events at all.
    NoEvents,
}

impl std::fmt::Display for VetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VetError::TooFewFields => "too few header fields",
            VetError::BadHeaderNumber => "bad numeric header field",
            VetError::BadZip => "bad zip code",
            VetError::BadRamp => "bad billing identifier",
            VetError::UnpairedEvents => "unpaired event fields",
            VetError::BadTimestamp => "bad event timestamp",
            VetError::UnsortedTimestamps => "event timestamps unsorted",
            VetError::NoEvents => "no events",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VetError {}

fn is_digits(s: &[u8]) -> bool {
    !s.is_empty() && s.iter().all(u8::is_ascii_digit)
}

fn parse_u64(s: &[u8]) -> Option<u64> {
    if !is_digits(s) || s.len() > 20 {
        return None;
    }
    let mut v: u64 = 0;
    for &b in s {
        v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
    }
    Some(v)
}

/// Vets one Sirius record the way the paper's Perl vetter does: split the
/// line on `|` and check each field positionally, including the timestamp
/// sort order.
///
/// # Errors
///
/// The first [`VetError`] encountered.
pub fn vet_line(line: &[u8]) -> Result<(), VetError> {
    // Perl: my @f = split /\|/, $line;  (trailing empty fields dropped —
    // but the header ends with '|' before events, so events start at 13).
    let fields: Vec<&[u8]> = line.split(|&b| b == b'|').collect();
    if fields.len() < 13 {
        return Err(VetError::TooFewFields);
    }
    // order_num, att_order_num, ord_version.
    for f in &fields[0..3] {
        if parse_u64(f).is_none() || parse_u64(f) > Some(u32::MAX as u64) {
            return Err(VetError::BadHeaderNumber);
        }
    }
    // Four phone numbers: empty or digits.
    for f in &fields[3..7] {
        if !f.is_empty() && parse_u64(f).is_none() {
            return Err(VetError::BadHeaderNumber);
        }
    }
    // Zip: empty, 5 digits, or 5+4.
    let zip = fields[7];
    let zip_ok = zip.is_empty()
        || (zip.len() == 5 && is_digits(zip))
        || (zip.len() == 10 && zip[5] == b'-' && is_digits(&zip[0..5]) && is_digits(&zip[6..]));
    if !zip_ok {
        return Err(VetError::BadZip);
    }
    // Ramp: digits or "no_ii" + digits.
    let ramp = fields[8];
    let ramp_ok = is_digits(ramp)
        || (ramp.starts_with(b"no_ii") && is_digits(&ramp[5..]))
        || (ramp.starts_with(b"-") && is_digits(&ramp[1..]));
    if !ramp_ok {
        return Err(VetError::BadRamp);
    }
    // order_type = fields[9] (free text), order_details numeric.
    if parse_u64(fields[10]).is_none() || parse_u64(fields[10]) > Some(u32::MAX as u64) {
        return Err(VetError::BadHeaderNumber);
    }
    // fields[11] unused, fields[12] stream: free text.
    // Events: pairs of (state, tstamp) with sorted timestamps.
    let events = &fields[13..];
    if events.is_empty() {
        return Err(VetError::NoEvents);
    }
    if events.len() % 2 != 0 {
        return Err(VetError::UnpairedEvents);
    }
    let mut prev: Option<u64> = None;
    for pair in events.chunks(2) {
        let ts = parse_u64(pair[1]).ok_or(VetError::BadTimestamp)?;
        if ts > u32::MAX as u64 {
            return Err(VetError::BadTimestamp);
        }
        if let Some(p) = prev {
            if ts < p {
                return Err(VetError::UnsortedTimestamps);
            }
        }
        prev = Some(ts);
    }
    Ok(())
}

/// Summary of a vetting run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VetSummary {
    /// Records that passed all checks.
    pub clean: usize,
    /// Records rejected, with the line index and reason.
    pub errors: Vec<(usize, VetError)>,
}

/// Vets a whole Sirius file (skipping the `0|tstamp` summary header),
/// writing clean records to `clean_out` and returning a summary — the
/// baseline counterpart of the Figure 7 program.
pub fn vet(data: &[u8], clean_out: &mut Vec<u8>) -> VetSummary {
    let mut summary = VetSummary::default();
    for (i, line) in lines(data).enumerate() {
        if i == 0 && line.starts_with(b"0|") && line.split(|&b| b == b'|').count() == 2 {
            continue; // summary header record
        }
        match vet_line(line) {
            Ok(()) => {
                summary.clean += 1;
                clean_out.extend_from_slice(line);
                clean_out.push(b'\n');
            }
            Err(e) => summary.errors.push((i, e)),
        }
    }
    summary
}

/// The paper's selection program: find the order numbers of all records
/// that ever pass through `state`, using the compiled regular expression of
/// Figure 9.
pub struct Selector {
    re: Regex,
}

impl Selector {
    /// Compiles the Figure 9 pattern for a state name.
    ///
    /// # Panics
    ///
    /// Panics when `state` contains regex metacharacters — state names in
    /// the data are plain `[A-Z0-9_]` tokens.
    pub fn new(state: &str) -> Selector {
        let pat = format!(r"^(\d+)\|(?:[^|]*\|){{12}}(?:[^|]*\|[^|]*\|)*{state}\|");
        Selector { re: Regex::new(&pat).expect("state names are regex-safe") }
    }

    /// Returns the order number when the record passes through the state.
    pub fn select(&self, line: &[u8]) -> Option<u64> {
        if !self.re.is_match(line) {
            return None;
        }
        let end = line.iter().position(|&b| b == b'|')?;
        parse_u64(&line[..end])
    }

    /// Runs the selection over a whole file, returning matching order
    /// numbers.
    pub fn select_all(&self, data: &[u8]) -> Vec<u64> {
        lines(data).filter_map(|l| self.select(l)).collect()
    }
}

/// Counts newline-terminated records — the floor benchmark of §7 ("a PERL
/// program that simply counts the number of records").
pub fn count_records(data: &[u8]) -> usize {
    let newlines = data.iter().filter(|&&b| b == b'\n').count();
    // A trailing partial record still counts.
    if data.last().is_some_and(|&b| b != b'\n') {
        newlines + 1
    } else {
        newlines
    }
}

/// Iterates over newline-separated records, excluding the terminator.
pub fn lines(data: &[u8]) -> impl Iterator<Item = &[u8]> {
    data.split(|&b| b == b'\n').filter(|l| !l.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &[u8] =
        b"9152|9152|1|9735551212|0||9085551212|07988|no_ii152272|EDTF_6|0|APRL1|DUO|10|1000295291";
    const GOOD2: &[u8] =
        b"9153|9153|1|0|0|0|0||152268|LOC_6|0|FRDW1|DUO|LOC_CRTE|1001476800|LOC_OS_10|1001649601";

    #[test]
    fn accepts_figure_3_records() {
        assert_eq!(vet_line(GOOD), Ok(()));
        assert_eq!(vet_line(GOOD2), Ok(()));
    }

    #[test]
    fn rejects_structural_problems() {
        assert_eq!(vet_line(b"1|2|3"), Err(VetError::TooFewFields));
        assert_eq!(
            vet_line(b"X|9152|1|||||07988|1|T|0|||S|100"),
            Err(VetError::BadHeaderNumber)
        );
        assert_eq!(
            vet_line(b"1|2|3|||||123|1|T|0|||S|100"),
            Err(VetError::BadZip)
        );
        assert_eq!(
            vet_line(b"1|2|3|||||07988|oops|T|0|||S|100"),
            Err(VetError::BadRamp)
        );
        assert_eq!(
            vet_line(b"1|2|3|||||07988|1|T|0|||S"),
            Err(VetError::UnpairedEvents)
        );
        assert_eq!(
            vet_line(b"1|2|3|||||07988|1|T|0|||A|200|B|100"),
            Err(VetError::UnsortedTimestamps)
        );
    }

    #[test]
    fn selector_matches_states_only_in_event_positions() {
        let sel = Selector::new("LOC_CRTE");
        assert_eq!(sel.select(GOOD2), Some(9153));
        assert_eq!(sel.select(GOOD), None);
        // A state name appearing in the header must not match.
        let tricky =
            b"77|77|1|||||07988|1|LOC_CRTE|0|||A|100";
        assert_eq!(sel.select(&tricky[..]), None);
    }

    #[test]
    fn vet_splits_clean_and_error_records() {
        let mut data = Vec::new();
        data.extend_from_slice(b"0|1005022800\n");
        data.extend_from_slice(GOOD);
        data.push(b'\n');
        data.extend_from_slice(b"corrupt line\n");
        data.extend_from_slice(GOOD2);
        data.push(b'\n');
        let mut clean = Vec::new();
        let summary = vet(&data, &mut clean);
        assert_eq!(summary.clean, 2);
        assert_eq!(summary.errors.len(), 1);
        assert_eq!(count_records(&clean), 2);
    }

    #[test]
    fn count_records_handles_missing_final_newline() {
        assert_eq!(count_records(b"a\nb\nc\n"), 3);
        assert_eq!(count_records(b"a\nb\nc"), 3);
        assert_eq!(count_records(b""), 0);
    }
}
