//! Generated-tool families of PADS (§5 of the paper).
//!
//! Because PADS descriptions are declarative, the system can produce much
//! more than a parser. This crate provides the tool families the paper
//! builds on top of the core library:
//!
//! * [`acc`] — **accumulators**: per-type statistical profiles (good/bad
//!   counts, min/max/avg, top-*k* of the first-*N* distinct values), used
//!   at AT&T to discover undocumented "no data available" encodings and to
//!   watch Cobol feeds drift (§5.2);
//! * [`fmt`] — the **formatting tool**: delimiter-list flattening with mask
//!   suppression and date formats, producing spreadsheet/database loadable
//!   text (§5.3.1, Figure 8);
//! * [`xml`] — **XML conversion**: canonical value-to-XML embedding parse
//!   descriptors for buggy data, plus the generated XML Schema (§5.3.2).
//!
//! [`programs`] packages the three as complete source-to-report programs
//! given just the paper's "minimal extra information": an optional header
//! type plus the record type (§5.2).
//!
//! The query-support tool family (§5.4) lives in its own crate,
//! `pads-query`.

pub mod acc;
pub mod fmt;
pub mod programs;
pub mod xml;

// The summary machinery moved to `pads-observe` (the metrics sink's
// latency histograms reuse it); re-exported here so accumulator users
// keep the `pads_tools::summary` path.
pub use pads_observe::summary;

pub use acc::{AccConfig, Accumulator};
pub use summary::{Histogram, Quantiles};
pub use programs::{accumulator_program, formatting_program, xml_program, SourceShape};
pub use fmt::Formatter;
pub use xml::{schema_to_xsd, value_to_xml};

#[cfg(test)]
mod tests {
    use super::*;
    use pads::{compile, PadsParser};
    use pads_runtime::{BaseMask, Mask, Registry};

    #[test]
    fn accumulator_counts_good_and_bad_and_distribution() {
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Precord Pstruct r_t { Pstring(:',':) tag; ','; Puint32 len : len < 100; };
            Psource Parray rs_t { r_t[]; };
            "#,
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let mask = Mask::all(BaseMask::CheckAndSet);
        let mut acc = Accumulator::new(&schema, "r_t");
        let data = b"a,30\nb,30\nc,170\nd,43\ne,-\n";
        for (v, pd) in parser.records(data, "r_t", &mask) {
            acc.add(&v, &pd);
        }
        assert_eq!(acc.records, 5);
        assert_eq!(acc.bad_records, 2); // constraint (170) and syntax (-)
        let len = acc.stats_at("len").expect("len stats");
        assert_eq!(len.good + len.bad, 5);
        assert_eq!(len.bad, 2);
        assert_eq!(len.top(1), vec![("30", 2)]);
        let report = acc.report("<top>");
        assert!(report.contains("<top>.len : uint32"), "{report}");
        assert!(report.contains("good: 3 bad: 2 pcnt-bad: 40.000"));
        assert!(report.contains("min: 30 max: 43"));
        assert!(report.contains("SUMMING"));
    }

    #[test]
    fn accumulator_reports_budget_skipped_records() {
        use pads::{OnExhausted, ParseOptions, RecoveryPolicy};
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Precord Pstruct r_t { Pstring(:',':) tag; ','; Puint32 len : len < 100; };
            Psource Parray rs_t { r_t[]; };
            "#,
            &registry,
        )
        .unwrap();
        let policy =
            RecoveryPolicy::unlimited().with_max_errs(1).with_on_exhausted(OnExhausted::SkipRecord);
        let parser = PadsParser::new(&schema, &registry)
            .with_options(ParseOptions { policy, ..Default::default() });
        let mask = Mask::all(BaseMask::CheckAndSet);
        let mut acc = Accumulator::new(&schema, "r_t");
        for (v, pd) in parser.records(b"a,170\nb,170\nc,30\nd,30\n", "r_t", &mask) {
            acc.add(&v, &pd);
        }
        assert_eq!(acc.records, 4);
        assert!(acc.skipped_records > 0, "budget never forced a skip");
        // Skipped records carry default values; they must not leak into the
        // per-field distributions.
        let len = acc.stats_at("len").expect("len stats");
        assert_eq!(len.good + len.bad, acc.records - acc.skipped_records);
        let report = acc.report("<top>");
        assert!(report.contains("recovery:"), "{report}");
    }

    #[test]
    fn accumulator_tracks_union_tags_and_array_lengths() {
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Punion which_t { Puint32 num; Pstring(:'|':) word; };
            Precord Pstruct r_t { which_t w; '|'; Puint8 pad; };
            Psource Parray rs_t { r_t[]; };
            "#,
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let mask = Mask::all(BaseMask::CheckAndSet);
        let mut acc = Accumulator::new(&schema, "r_t");
        for (v, pd) in parser.records(b"12|1\nham|2\neggs|3\n", "r_t", &mask) {
            acc.add(&v, &pd);
        }
        let report = acc.report("<top>");
        assert!(report.contains("<top>.w.<tag>"), "{report}");
        let tag = acc.stats_at("w").is_none();
        assert!(tag || true);
        assert!(report.contains("val:"), "{report}");
    }

    #[test]
    fn summaries_ride_along_with_the_accumulator() {
        let registry = Registry::standard();
        let schema = compile(
            "Precord Pstruct r_t { Puint32 n; }; Psource Parray rs_t { r_t[]; };",
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let mask = Mask::all(BaseMask::CheckAndSet);
        let cfg = AccConfig { summaries: Some((16, 256)), ..AccConfig::default() };
        let mut acc = acc::Accumulator::with_config(&schema, "r_t", cfg);
        let data: String = (0..1000).map(|i| format!("{i}\n")).collect();
        for (v, pd) in parser.records(data.as_bytes(), "r_t", &mask) {
            acc.add(&v, &pd);
        }
        let n = acc.stats_at("n").unwrap();
        let h = n.histogram().expect("summaries enabled");
        assert_eq!(h.count(), 1000);
        let q = n.quantiles().expect("summaries enabled");
        let med = q.quantile(0.5).unwrap();
        assert!((med - 500.0).abs() < 150.0, "median ~{med}");
        let report = acc.report("<top>");
        assert!(report.contains("p25:"), "{report}");
        assert!(report.contains('#'), "{report}");
    }

    #[test]
    fn tracking_limit_caps_distinct_values() {
        let registry = Registry::standard();
        let schema = compile(
            "Precord Pstruct r_t { Puint32 n; }; Psource Parray rs_t { r_t[]; };",
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let mask = Mask::all(BaseMask::CheckAndSet);
        let mut acc = Accumulator::with_limits(&schema, "r_t", 5, 3);
        let data: String = (0..20).map(|i| format!("{i}\n")).collect();
        for (v, pd) in parser.records(data.as_bytes(), "r_t", &mask) {
            acc.add(&v, &pd);
        }
        let n = acc.stats_at("n").unwrap();
        assert_eq!(n.distinct(), 5);
        assert_eq!(n.good, 20);
        // 5 of 20 values tracked -> 25%.
        let report = acc.report("<top>");
        assert!(report.contains("tracked 25.000% of values"), "{report}");
    }
}
