//! The formatting tool: flatten values into delimited text (§5.3.1).
//!
//! The generated `*_fmt2io` functions take a delimiter list; at each field
//! boundary the current delimiter is printed, at each nested-type boundary
//! the list advances (reusing its last entry when exhausted). A mask
//! suppresses fields, and dates can be rendered with a user format — the
//! configuration that turns Figure 2's records into Figure 8's
//! pipe-delimited output.

use pads::{BaseMask, Mask, Prim, Value};

/// Delimiter-list formatter.
///
/// # Examples
///
/// ```
/// use pads_tools::fmt::Formatter;
/// use pads::{Prim, Value};
///
/// let v = Value::Struct { fields: vec![
///     ("a".into(), Value::Prim(Prim::Uint(1))),
///     ("b".into(), Value::Struct { fields: vec![
///         ("c".into(), Value::Prim(Prim::Uint(2))),
///         ("d".into(), Value::Prim(Prim::Uint(3))),
///     ]}),
/// ]};
/// let fmt = Formatter::new(&["|"]);
/// assert_eq!(fmt.format(&v), "1|2|3");
/// ```
#[derive(Debug, Clone)]
pub struct Formatter {
    delims: Vec<String>,
    date_format: Option<String>,
    mask: Option<Mask>,
}

impl Formatter {
    /// Creates a formatter with the given delimiter list (must be
    /// non-empty).
    ///
    /// # Panics
    ///
    /// Panics when `delims` is empty.
    pub fn new(delims: &[&str]) -> Formatter {
        assert!(!delims.is_empty(), "formatter needs at least one delimiter");
        Formatter {
            delims: delims.iter().map(|s| s.to_string()).collect(),
            date_format: None,
            mask: None,
        }
    }

    /// Sets the output format for dates (e.g. `"%D:%T"` as in §5.3.1).
    pub fn with_date_format(mut self, fmt: &str) -> Formatter {
        self.date_format = Some(fmt.to_owned());
        self
    }

    /// Sets a mask; fields whose mask is [`BaseMask::Ignore`] are
    /// suppressed from the output.
    pub fn with_mask(mut self, mask: Mask) -> Formatter {
        self.mask = Some(mask);
        self
    }

    fn delim(&self, depth: usize) -> &str {
        &self.delims[depth.min(self.delims.len() - 1)]
    }

    /// Renders one value.
    pub fn format(&self, value: &Value) -> String {
        let mut leaves: Vec<(Vec<usize>, String)> = Vec::new();
        let mask = self.mask.clone().unwrap_or_else(|| Mask::all(BaseMask::CheckAndSet));
        self.collect(value, &mask, &mut Vec::new(), &mut leaves);
        // The delimiter between two adjacent leaves belongs to their lowest
        // common ancestor: two fields of the top-level struct are separated
        // by the first delimiter, fields of a nested struct by the next one,
        // and so on (reusing the last when the list is exhausted).
        let mut out = String::new();
        for (i, (chain, s)) in leaves.iter().enumerate() {
            if i > 0 {
                let prev = &leaves[i - 1].0;
                let diverge =
                    prev.iter().zip(chain.iter()).take_while(|(a, b)| a == b).count();
                out.push_str(self.delim(diverge));
            }
            out.push_str(s);
        }
        out
    }

    /// `chain` records the child index taken at each container level, so
    /// adjacent leaves can be compared for their divergence depth.
    fn collect(
        &self,
        value: &Value,
        mask: &Mask,
        chain: &mut Vec<usize>,
        out: &mut Vec<(Vec<usize>, String)>,
    ) {
        match value {
            Value::Prim(p) => out.push((chain.clone(), self.prim(p))),
            Value::Enum { variant, .. } => out.push((chain.clone(), variant.as_str().to_owned())),
            Value::Opt(None) => out.push((chain.clone(), String::new())),
            Value::Opt(Some(inner)) => self.collect(inner, mask, chain, out),
            Value::Union { branch, index, value } => {
                chain.push(*index);
                self.collect(value, &mask.child(branch), chain, out);
                chain.pop();
            }
            Value::Struct { fields } => {
                for (i, (name, v)) in fields.iter().enumerate() {
                    let child = mask.child(name);
                    if child.base() == BaseMask::Ignore {
                        continue;
                    }
                    chain.push(i);
                    self.collect(v, &child, chain, out);
                    chain.pop();
                }
            }
            Value::Array(elts) => {
                let child = mask.child(pads_runtime::mask::ELT);
                for (i, v) in elts.iter().enumerate() {
                    chain.push(i);
                    self.collect(v, &child, chain, out);
                    chain.pop();
                }
            }
        }
    }

    fn prim(&self, p: &Prim) -> String {
        match (p, &self.date_format) {
            (Prim::Date(d), Some(fmt)) => d.format(fmt),
            _ => p.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::date::PDate;

    fn record() -> Value {
        Value::Struct {
            fields: vec![
                ("client".into(), Value::Prim(Prim::Ip([207, 136, 97, 49]))),
                ("remoteID".into(), Value::Prim(Prim::Char(b'-'))),
                (
                    "date".into(),
                    Value::Prim(Prim::Date(
                        PDate::parse("15/Oct/1997:18:46:51 -0700").unwrap(),
                    )),
                ),
                ("length".into(), Value::Prim(Prim::Uint(30))),
            ],
        }
    }

    #[test]
    fn pipe_delimited_with_date_format() {
        let fmt = Formatter::new(&["|"]).with_date_format("%D:%T");
        assert_eq!(fmt.format(&record()), "207.136.97.49|-|10/16/97:01:46:51|30");
    }

    #[test]
    fn mask_suppresses_fields() {
        let mut mask = Mask::all(BaseMask::CheckAndSet);
        mask.set_at("date", BaseMask::Ignore);
        let fmt = Formatter::new(&["|"]).with_mask(mask);
        assert_eq!(fmt.format(&record()), "207.136.97.49|-|30");
    }

    #[test]
    fn multiple_delimiters_advance_by_depth() {
        let v = Value::Struct {
            fields: vec![
                ("a".into(), Value::Prim(Prim::Uint(1))),
                (
                    "b".into(),
                    Value::Struct {
                        fields: vec![
                            ("c".into(), Value::Prim(Prim::Uint(2))),
                            ("d".into(), Value::Prim(Prim::Uint(3))),
                        ],
                    },
                ),
                ("e".into(), Value::Prim(Prim::Uint(4))),
            ],
        };
        // Top-level boundaries use ";", nested ones use ",".
        let fmt = Formatter::new(&[";", ",", ","]);
        assert_eq!(fmt.format(&v), "1;2,3;4");
    }

    #[test]
    fn opt_none_renders_empty() {
        let v = Value::Struct {
            fields: vec![
                ("a".into(), Value::Prim(Prim::Uint(1))),
                ("b".into(), Value::Opt(None)),
                ("c".into(), Value::Prim(Prim::Uint(3))),
            ],
        };
        let fmt = Formatter::new(&["|"]);
        assert_eq!(fmt.format(&v), "1||3");
    }

    #[test]
    fn arrays_flatten() {
        let v = Value::Array(vec![
            Value::Prim(Prim::Uint(1)),
            Value::Prim(Prim::Uint(2)),
        ]);
        assert_eq!(Formatter::new(&["|"]).format(&v), "1|2");
    }
}
