//! Whole-program generation for header+records sources.
//!
//! §5.2 of the paper: "ad hoc sources are often simply a sequence of
//! records, perhaps prefixed by a header, so we can create a complete
//! accumulator program from minimal extra information … given only the
//! names of the optional header type and the record type". The same
//! pattern powers the generated formatting (§5.3.1) and XML-conversion
//! (§5.3.2) programs. These functions are those programs as library calls.

use pads::{BaseMask, Mask, PadsParser, ParseOptions, Registry, Schema};

use crate::acc::Accumulator;
use crate::fmt::Formatter;
use crate::xml::value_to_xml;

/// The minimal extra information the paper asks for: an optional header
/// type and the record type.
#[derive(Debug, Clone)]
pub struct SourceShape<'a> {
    /// Name of the header type parsed once at the start, if any.
    pub header: Option<&'a str>,
    /// Name of the record type repeated to end of input.
    pub record: &'a str,
}

impl<'a> SourceShape<'a> {
    /// A headerless source of repeated records.
    pub fn records(record: &'a str) -> SourceShape<'a> {
        SourceShape { header: None, record }
    }

    /// A header followed by repeated records.
    pub fn with_header(header: &'a str, record: &'a str) -> SourceShape<'a> {
        SourceShape { header: Some(header), record }
    }
}

fn skip_header(
    parser: &PadsParser<'_>,
    shape: &SourceShape<'_>,
    data: &[u8],
    mask: &Mask,
) -> usize {
    match shape.header {
        None => 0,
        Some(h) => {
            let mut cur = parser.open(data);
            let _ = parser.parse_named(&mut cur, h, &[], mask);
            cur.offset()
        }
    }
}

/// The generated accumulator program: parse the whole source record by
/// record, fold every record into a profile, and return the report (§5.2).
///
/// # Panics
///
/// Panics if the shape names types not declared in `schema`.
pub fn accumulator_program<'s>(
    schema: &'s Schema,
    registry: &Registry,
    options: ParseOptions,
    shape: &SourceShape<'_>,
    data: &[u8],
    tracked: usize,
    top_k: usize,
) -> (Accumulator<'s>, String) {
    let parser = PadsParser::new(schema, registry).with_options(options);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let start = skip_header(&parser, shape, data, &mask);
    let mut acc = Accumulator::with_limits(schema, shape.record, tracked, top_k);
    for (v, pd) in parser.records(&data[start..], shape.record, &mask) {
        acc.add(&v, &pd);
    }
    let report = acc.report("<top>");
    (acc, report)
}

/// The generated formatting program: one delimited line per record, with
/// an optional date output format and mask-based column suppression
/// (§5.3.1).
///
/// # Panics
///
/// Panics if the shape names types not declared in `schema`.
pub fn formatting_program(
    schema: &Schema,
    registry: &Registry,
    options: ParseOptions,
    shape: &SourceShape<'_>,
    data: &[u8],
    formatter: &Formatter,
) -> String {
    let parser = PadsParser::new(schema, registry).with_options(options);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let start = skip_header(&parser, shape, data, &mask);
    let mut out = String::new();
    for (v, _) in parser.records(&data[start..], shape.record, &mask) {
        out.push_str(&formatter.format(&v));
        out.push('\n');
    }
    out
}

/// The generated XML-conversion program: the whole source as one XML
/// document, parse descriptors embedded wherever the data was buggy
/// (§5.3.2).
///
/// # Panics
///
/// Panics if the shape names types not declared in `schema`.
pub fn xml_program(
    schema: &Schema,
    registry: &Registry,
    options: ParseOptions,
    shape: &SourceShape<'_>,
    data: &[u8],
    root_tag: &str,
) -> String {
    let parser = PadsParser::new(schema, registry).with_options(options);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let start = skip_header(&parser, shape, data, &mask);
    let mut out = format!("<{root_tag}>\n");
    for (v, pd) in parser.records(&data[start..], shape.record, &mask) {
        out.push_str(&value_to_xml(&v, Some(&pd), shape.record, 2));
    }
    out.push_str(&format!("</{root_tag}>\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads::descriptions;

    #[test]
    fn accumulator_program_over_sirius_with_header() {
        let registry = Registry::standard();
        let schema = descriptions::sirius();
        let (data, stats) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
            records: 300,
            syntax_errors: 4,
            sort_violations: 1,
            ..Default::default()
        });
        let shape = SourceShape::with_header("summary_header_t", "entry_t");
        let (acc, report) = accumulator_program(
            &schema,
            &registry,
            ParseOptions::default(),
            &shape,
            &data,
            1000,
            10,
        );
        assert_eq!(acc.records, 300);
        assert_eq!(acc.bad_records, 5);
        assert!(report.contains("<top>.header.order_num"), "{report}");
        let _ = stats;
    }

    #[test]
    fn formatting_program_produces_one_line_per_record() {
        let registry = Registry::standard();
        let schema = descriptions::clf();
        let (data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
            records: 25,
            dash_length_rate: 0.0,
            ..Default::default()
        });
        let fmt = Formatter::new(&["|"]).with_date_format("%D:%T");
        let out = formatting_program(
            &schema,
            &registry,
            ParseOptions::default(),
            &SourceShape::records("entry_t"),
            &data,
            &fmt,
        );
        assert_eq!(out.lines().count(), 25);
        assert!(out.lines().all(|l| l.matches('|').count() >= 9), "{out}");
    }

    #[test]
    fn xml_program_wraps_records_in_a_root() {
        let registry = Registry::standard();
        let schema = descriptions::sirius();
        let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
            records: 5,
            syntax_errors: 0,
            sort_violations: 0,
            ..Default::default()
        });
        let out = xml_program(
            &schema,
            &registry,
            ParseOptions::default(),
            &SourceShape::with_header("summary_header_t", "entry_t"),
            &data,
            "sirius",
        );
        assert!(out.starts_with("<sirius>\n"));
        assert!(out.ends_with("</sirius>\n"));
        assert_eq!(out.matches("<entry_t>").count(), 5);
    }
}
