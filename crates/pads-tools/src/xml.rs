//! XML conversion (§5.3.2): a canonical mapping from PADS values into XML,
//! and an XML Schema generator describing that embedding.
//!
//! Both PADS and XML describe semi-structured data, so the mapping is
//! natural. One deliberate choice from the paper is kept: when data is
//! buggy, the parse descriptor is embedded alongside the value (`<pd>`
//! elements), so the error portions of a source can be explored like any
//! other data.

use pads::{ParseDesc, Schema, Value};
use pads_check::ir::{MemberIr, TypeKind, TyUse};
use pads_runtime::PdKind;

/// Escapes text for XML content.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a parsed value as XML under `tag`, embedding parse descriptors
/// wherever the data was buggy (the paper's `write_xml_2io`).
pub fn value_to_xml(value: &Value, pd: Option<&ParseDesc>, tag: &str, indent: usize) -> String {
    let mut out = String::new();
    emit(value, pd, tag, indent, &mut out);
    out
}

fn pad(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push(' ');
    }
}

fn emit(value: &Value, pd: Option<&ParseDesc>, tag: &str, indent: usize, out: &mut String) {
    // The descriptor rides along only when it records an error.
    let bad_pd = pd.filter(|p| !p.is_ok());
    match value {
        Value::Prim(p) => {
            pad(indent, out);
            if let Some(d) = bad_pd {
                out.push_str(&format!("<{tag}>"));
                out.push('\n');
                pad(indent + 2, out);
                out.push_str(&format!("<val>{}</val>\n", escape(&p.to_string())));
                emit_pd(d, indent + 2, out);
                pad(indent, out);
                out.push_str(&format!("</{tag}>\n"));
            } else {
                out.push_str(&format!("<{tag}>{}</{tag}>\n", escape(&p.to_string())));
            }
        }
        Value::Enum { variant, .. } => {
            pad(indent, out);
            out.push_str(&format!("<{tag}>{}</{tag}>\n", escape(variant)));
        }
        Value::Opt(None) => {
            pad(indent, out);
            out.push_str(&format!("<{tag}/>\n"));
        }
        Value::Opt(Some(inner)) => {
            let ipd = pd.and_then(|p| match &p.kind {
                PdKind::Opt { inner: Some(i) } => Some(i.as_ref()),
                _ => None,
            });
            emit(inner, ipd, tag, indent, out);
        }
        Value::Struct { fields } => {
            pad(indent, out);
            out.push_str(&format!("<{tag}>\n"));
            for (name, v) in fields {
                let fpd = pd.and_then(|p| match &p.kind {
                    PdKind::Struct { fields } => {
                        fields.iter().find(|(n, _)| n == name).map(|(_, p)| p)
                    }
                    _ => None,
                });
                emit(v, fpd, name, indent + 2, out);
            }
            if let Some(d) = bad_pd {
                emit_pd(d, indent + 2, out);
            }
            pad(indent, out);
            out.push_str(&format!("</{tag}>\n"));
        }
        Value::Union { branch, value, .. } => {
            pad(indent, out);
            out.push_str(&format!("<{tag}>\n"));
            let bpd = pd.and_then(|p| match &p.kind {
                PdKind::Union { pd, .. } => pd.as_deref(),
                _ => None,
            });
            emit(value, bpd, branch, indent + 2, out);
            if let Some(d) = bad_pd {
                emit_pd(d, indent + 2, out);
            }
            pad(indent, out);
            out.push_str(&format!("</{tag}>\n"));
        }
        Value::Array(elts) => {
            pad(indent, out);
            out.push_str(&format!("<{tag}>\n"));
            for (i, v) in elts.iter().enumerate() {
                let epd = pd.and_then(|p| match &p.kind {
                    PdKind::Array { elts, .. } => elts.get(i),
                    _ => None,
                });
                emit(v, epd, "elt", indent + 2, out);
            }
            pad(indent + 2, out);
            out.push_str(&format!("<length>{}</length>\n", elts.len()));
            if let Some(d) = bad_pd {
                emit_pd(d, indent + 2, out);
            }
            pad(indent, out);
            out.push_str(&format!("</{tag}>\n"));
        }
    }
}

fn emit_pd(pd: &ParseDesc, indent: usize, out: &mut String) {
    pad(indent, out);
    out.push_str("<pd>\n");
    pad(indent + 2, out);
    out.push_str(&format!("<pstate>{}</pstate>\n", pd.state));
    pad(indent + 2, out);
    out.push_str(&format!("<nerr>{}</nerr>\n", pd.nerr));
    pad(indent + 2, out);
    out.push_str(&format!("<errCode>{:?}</errCode>\n", pd.err_code));
    if let Some(loc) = pd.loc {
        pad(indent + 2, out);
        out.push_str(&format!("<loc>{loc}</loc>\n"));
    }
    if let PdKind::Array { neerr, first_error, .. } = &pd.kind {
        pad(indent + 2, out);
        out.push_str(&format!("<neerr>{neerr}</neerr>\n"));
        if let Some(fe) = first_error {
            pad(indent + 2, out);
            out.push_str(&format!("<firstError>{fe}</firstError>\n"));
        }
    }
    pad(indent, out);
    out.push_str("</pd>\n");
}

/// Generates an XML Schema describing the canonical embedding of every
/// type in `schema` (the paper's generated XSD; compare its `eventSeq`
/// fragment).
pub fn schema_to_xsd(schema: &Schema) -> String {
    let mut out = String::new();
    out.push_str("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n");
    // Shared parse-descriptor type.
    out.push_str(
        "  <xs:complexType name=\"Ppd\">\n    <xs:sequence>\n      \
         <xs:element name=\"pstate\" type=\"xs:string\"/>\n      \
         <xs:element name=\"nerr\" type=\"xs:unsignedInt\"/>\n      \
         <xs:element name=\"errCode\" type=\"xs:string\"/>\n      \
         <xs:element name=\"loc\" type=\"xs:string\" minOccurs=\"0\"/>\n      \
         <xs:element name=\"neerr\" type=\"xs:unsignedInt\" minOccurs=\"0\"/>\n      \
         <xs:element name=\"firstError\" type=\"xs:unsignedInt\" minOccurs=\"0\"/>\n    \
         </xs:sequence>\n  </xs:complexType>\n",
    );
    for def in &schema.types {
        match &def.kind {
            TypeKind::Struct { members } => {
                out.push_str(&format!("  <xs:complexType name=\"{}\">\n", def.name));
                out.push_str("    <xs:sequence>\n");
                for m in members {
                    if let MemberIr::Field(f) = m {
                        out.push_str(&element_for(&f.name, &f.ty, schema));
                    }
                }
                out.push_str(
                    "      <xs:element name=\"pd\" type=\"Ppd\" minOccurs=\"0\" maxOccurs=\"1\"/>\n",
                );
                out.push_str("    </xs:sequence>\n  </xs:complexType>\n");
            }
            TypeKind::Union { branches, .. } => {
                out.push_str(&format!("  <xs:complexType name=\"{}\">\n", def.name));
                out.push_str("    <xs:choice>\n");
                for b in branches {
                    out.push_str(&element_for(&b.field.name, &b.field.ty, schema));
                }
                out.push_str("    </xs:choice>\n  </xs:complexType>\n");
            }
            TypeKind::Array { elem, .. } => {
                out.push_str(&format!("  <xs:complexType name=\"{}\">\n", def.name));
                out.push_str("    <xs:sequence>\n");
                out.push_str(&format!(
                    "      <xs:element name=\"elt\" type=\"{}\" minOccurs=\"0\" maxOccurs=\"unbounded\"/>\n",
                    ty_name(elem, schema)
                ));
                out.push_str("      <xs:element name=\"length\" type=\"xs:unsignedInt\"/>\n");
                out.push_str(
                    "      <xs:element name=\"pd\" type=\"Ppd\" minOccurs=\"0\" maxOccurs=\"1\"/>\n",
                );
                out.push_str("    </xs:sequence>\n  </xs:complexType>\n");
            }
            TypeKind::Enum { variants } => {
                out.push_str(&format!(
                    "  <xs:simpleType name=\"{}\">\n    <xs:restriction base=\"xs:string\">\n",
                    def.name
                ));
                for v in variants {
                    out.push_str(&format!("      <xs:enumeration value=\"{v}\"/>\n"));
                }
                out.push_str("    </xs:restriction>\n  </xs:simpleType>\n");
            }
            TypeKind::Typedef { base, .. } => {
                out.push_str(&format!(
                    "  <xs:simpleType name=\"{}\">\n    <xs:restriction base=\"{}\"/>\n  </xs:simpleType>\n",
                    def.name,
                    ty_name(base, schema)
                ));
            }
        }
    }
    let src = schema.source_def();
    out.push_str(&format!(
        "  <xs:element name=\"{0}\" type=\"{0}\"/>\n",
        src.name
    ));
    out.push_str("</xs:schema>\n");
    out
}

fn element_for(name: &str, ty: &TyUse, schema: &Schema) -> String {
    match ty {
        TyUse::Opt(inner) => format!(
            "      <xs:element name=\"{}\" type=\"{}\" minOccurs=\"0\"/>\n",
            name,
            ty_name(inner, schema)
        ),
        _ => format!(
            "      <xs:element name=\"{}\" type=\"{}\"/>\n",
            name,
            ty_name(ty, schema)
        ),
    }
}

fn ty_name(ty: &TyUse, schema: &Schema) -> String {
    match ty {
        TyUse::Base { name, .. } => xsd_base(name),
        TyUse::Named { id, .. } => schema.def(*id).name.clone(),
        TyUse::Opt(inner) => ty_name(inner, schema),
    }
}

/// XSD scalar for a base-type name.
fn xsd_base(name: &str) -> String {
    let n = name.strip_prefix("Pa_").or_else(|| name.strip_prefix("Pe_"))
        .or_else(|| name.strip_prefix("Pb_")).or_else(|| name.strip_prefix("P"))
        .unwrap_or(name);
    let n = n.strip_suffix("_FW").unwrap_or(n);
    match n {
        "int8" => "xs:byte".into(),
        "int16" => "xs:short".into(),
        "int32" => "xs:int".into(),
        "int64" => "xs:long".into(),
        "uint8" => "xs:unsignedByte".into(),
        "uint16" => "xs:unsignedShort".into(),
        "uint32" => "xs:unsignedInt".into(),
        "uint64" => "xs:unsignedLong".into(),
        "float32" => "xs:float".into(),
        "float64" => "xs:double".into(),
        "char" => "xs:string".into(),
        "date" => "xs:dateTime".into(),
        _ => "xs:string".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads::{compile, PadsParser};
    use pads_runtime::{BaseMask, Mask, Registry};

    fn setup() -> (Schema, Registry) {
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Pstruct ev_t { Pstring(:'|':) state; '|'; Puint32 ts; };
            Parray seq_t { ev_t[] : Psep('|') && Pterm(Peor); };
            Precord Pstruct rec_t { Puint32 id : id > 0; '|'; seq_t events; };
            Psource Parray recs_t { rec_t[]; };
            "#,
            &registry,
        )
        .unwrap();
        (schema, registry)
    }

    #[test]
    fn clean_value_has_no_pd_elements() {
        let (schema, registry) = setup();
        let parser = PadsParser::new(&schema, &registry);
        let (v, pd) = parser.parse_source(b"7|A|10\n", &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok());
        let xml = value_to_xml(&v, Some(&pd), "recs_t", 0);
        assert!(xml.contains("<id>7</id>"));
        assert!(xml.contains("<state>A</state>"));
        assert!(xml.contains("<length>1</length>"));
        assert!(!xml.contains("<pd>"));
    }

    #[test]
    fn buggy_value_embeds_parse_descriptor() {
        let (schema, registry) = setup();
        let parser = PadsParser::new(&schema, &registry);
        // id = 0 violates the constraint.
        let (v, pd) = parser.parse_source(b"0|A|10\n", &Mask::all(BaseMask::CheckAndSet));
        assert!(!pd.is_ok());
        let xml = value_to_xml(&v, Some(&pd), "recs_t", 0);
        assert!(xml.contains("<pd>"), "{xml}");
        assert!(xml.contains("<errCode>"));
        assert!(xml.contains("<nerr>"));
    }

    #[test]
    fn escaping() {
        let v = Value::Prim(pads::Prim::String("a<b&c>\"d\"".into()));
        let xml = value_to_xml(&v, None, "s", 0);
        assert_eq!(xml, "<s>a&lt;b&amp;c&gt;&quot;d&quot;</s>\n");
    }

    #[test]
    fn xsd_has_paper_array_shape() {
        let (schema, _) = setup();
        let xsd = schema_to_xsd(&schema);
        // The eventSeq-style embedding from §5.3.2: elt*, length, optional pd.
        assert!(xsd.contains("<xs:complexType name=\"seq_t\">"));
        assert!(xsd.contains(
            "<xs:element name=\"elt\" type=\"ev_t\" minOccurs=\"0\" maxOccurs=\"unbounded\"/>"
        ));
        assert!(xsd.contains("<xs:element name=\"length\" type=\"xs:unsignedInt\"/>"));
        assert!(xsd.contains("<xs:element name=\"pd\" type=\"Ppd\" minOccurs=\"0\" maxOccurs=\"1\"/>"));
        assert!(xsd.contains("<xs:element name=\"recs_t\" type=\"recs_t\"/>"));
    }

    #[test]
    fn xsd_scalars() {
        assert_eq!(xsd_base("Puint32"), "xs:unsignedInt");
        assert_eq!(xsd_base("Pb_int16"), "xs:short");
        assert_eq!(xsd_base("Puint16_FW"), "xs:unsignedShort");
        assert_eq!(xsd_base("Pstring"), "xs:string");
        assert_eq!(xsd_base("Pdate"), "xs:dateTime");
    }
}
