//! Accumulators: per-type statistical profiles (§5.2 of the paper).
//!
//! For every type in a description an accumulator tracks the number of good
//! values, the number of bad values, and the distribution of legal values —
//! by default the first 1000 distinct values, reporting the top 10. The
//! report format follows the paper's `<top>.length` sample closely,
//! including the `tracked %` line and the `SUMMING` row.

use std::collections::HashMap;

use pads::{ColTree, PdKind, Prim, PrimColView, Schema, Value};
use pads_check::ir::{MemberIr, TypeId, TypeKind, TyUse};
use pads_runtime::ParseDesc;

use crate::summary::{Histogram, Quantiles};

/// Accumulator construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccConfig {
    /// Distinct values tracked per field (paper default: 1000).
    pub tracked: usize,
    /// Top values printed per field (paper default: 10).
    pub top_k: usize,
    /// When set, numeric leaves also maintain the §9 small-space summaries:
    /// `(histogram_buckets, quantile_sample_size)`.
    pub summaries: Option<(usize, usize)>,
}

impl Default for AccConfig {
    fn default() -> AccConfig {
        AccConfig { tracked: DEFAULT_TRACKED, top_k: DEFAULT_TOP, summaries: None }
    }
}

/// Default number of distinct values tracked per field.
pub const DEFAULT_TRACKED: usize = 1000;
/// Default number of top values printed per field.
pub const DEFAULT_TOP: usize = 10;

/// Numeric running statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NumStats {
    /// Smallest good value.
    pub min: f64,
    /// Largest good value.
    pub max: f64,
    /// Sum of good values.
    pub sum: f64,
    /// Number of good values folded in.
    pub count: u64,
}

impl NumStats {
    fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += v;
        self.count += 1;
    }

    /// Mean of the folded values.
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Statistics for one base-type (or enum/union-tag/array-length) node.
#[derive(Debug, Clone)]
pub struct BaseAcc {
    /// Values whose subtree parsed without error.
    pub good: u64,
    /// Values whose subtree contained at least one error.
    pub bad: u64,
    /// Numeric stats, when the values are numeric.
    pub num: NumStats,
    tracked: HashMap<String, u64>,
    tracked_count: u64,
    limit: usize,
    type_label: String,
    summary: Option<Box<(Histogram, Quantiles)>>,
}

impl BaseAcc {
    fn new(cfg: &AccConfig, type_label: impl Into<String>) -> BaseAcc {
        BaseAcc {
            good: 0,
            bad: 0,
            num: NumStats::default(),
            tracked: HashMap::new(),
            tracked_count: 0,
            limit: cfg.tracked,
            type_label: type_label.into(),
            summary: cfg
                .summaries
                .map(|(bins, cap)| Box::new((Histogram::new(bins), Quantiles::new(cap, 0x5EED)))),
        }
    }

    /// The §9 histogram summary, when enabled and the field is numeric.
    pub fn histogram(&self) -> Option<&Histogram> {
        self.summary.as_ref().map(|s| &s.0)
    }

    /// The §9 quantile summary, when enabled and the field is numeric.
    pub fn quantiles(&self) -> Option<&Quantiles> {
        self.summary.as_ref().map(|s| &s.1)
    }

    fn add_good(&mut self, rendered: String, numeric: Option<f64>) {
        self.add_good_str(&rendered, numeric);
    }

    /// Borrowing twin of [`add_good`](Self::add_good): the columnar fold
    /// renders into a reused buffer, so the value only becomes a `String`
    /// on its first-seen insert into the tracked map.
    fn add_good_str(&mut self, rendered: &str, numeric: Option<f64>) {
        self.good += 1;
        if let Some(v) = numeric {
            self.num.add(v);
            if let Some(s) = &mut self.summary {
                s.0.add(v);
                s.1.add(v);
            }
        }
        if let Some(count) = self.tracked.get_mut(rendered) {
            *count += 1;
            self.tracked_count += 1;
        } else if self.tracked.len() < self.limit {
            self.tracked.insert(rendered.to_owned(), 1);
            self.tracked_count += 1;
        }
    }

    fn add_bad(&mut self) {
        self.bad += 1;
    }

    /// Fraction of values that were bad, as a percentage.
    pub fn pcnt_bad(&self) -> f64 {
        let total = self.good + self.bad;
        if total == 0 {
            0.0
        } else {
            self.bad as f64 * 100.0 / total as f64
        }
    }

    /// Number of distinct values tracked.
    pub fn distinct(&self) -> usize {
        self.tracked.len()
    }

    /// The `k` most frequent tracked values, most frequent first (ties
    /// broken by value for determinism).
    pub fn top(&self, k: usize) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.tracked.iter().map(|(s, &c)| (s.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v.truncate(k);
        v
    }

    fn report(&self, path: &str, top_k: usize, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "{path} : {}", self.type_label);
        let _ = writeln!(out, "+++++++++++++++++++++++++++++++++++++++++++");
        let _ = writeln!(
            out,
            "good: {} bad: {} pcnt-bad: {:.3}",
            self.good,
            self.bad,
            self.pcnt_bad()
        );
        if self.num.count > 0 {
            let _ = writeln!(
                out,
                "min: {} max: {} avg: {:.3}",
                fmt_num(self.num.min),
                fmt_num(self.num.max),
                self.num.avg()
            );
            if let Some(s) = &self.summary {
                if let (Some(p25), Some(p50), Some(p75), Some(p95)) = (
                    s.1.quantile(0.25),
                    s.1.quantile(0.5),
                    s.1.quantile(0.75),
                    s.1.quantile(0.95),
                ) {
                    let _ = writeln!(
                        out,
                        "p25: {} p50: {} p75: {} p95: {}",
                        fmt_num(p25),
                        fmt_num(p50),
                        fmt_num(p75),
                        fmt_num(p95)
                    );
                }
                out.push_str(&s.0.render());
            }
        }
        let top = self.top(top_k);
        let _ = writeln!(
            out,
            "top {} values out of {} distinct values:",
            top.len(),
            self.distinct()
        );
        if self.good > 0 {
            let _ = writeln!(
                out,
                "tracked {:.3}% of values",
                self.tracked_count as f64 * 100.0 / self.good as f64
            );
        }
        let mut summing = 0u64;
        for (val, count) in &top {
            summing += count;
            let _ = writeln!(
                out,
                " val: {:>12} count: {:>8} %-of-good: {:.3}",
                val,
                count,
                *count as f64 * 100.0 / self.good.max(1) as f64
            );
        }
        let _ = writeln!(out, " . . . . . . . . . . . . . . . . . . . . . .");
        let _ = writeln!(
            out,
            " SUMMING count: {:>8} %-of-good: {:.3}",
            summing,
            summing as f64 * 100.0 / self.good.max(1) as f64
        );
        let _ = writeln!(out);
    }
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// One node of the accumulator tree.
#[derive(Debug, Clone)]
enum Node {
    Base(BaseAcc),
    Struct { fields: Vec<(String, Node)> },
    Union { tag: BaseAcc, branches: Vec<(String, Node)> },
    Array { length: BaseAcc, elem: Box<Node> },
    Enum(BaseAcc),
    Opt { presence: BaseAcc, inner: Box<Node> },
    Typedef(Box<Node>),
}

/// A structure-mirroring statistical accumulator for one described type.
///
/// # Examples
///
/// ```
/// use pads::{compile, PadsParser};
/// use pads_runtime::{BaseMask, Mask, Registry};
/// use pads_tools::acc::Accumulator;
///
/// let registry = Registry::standard();
/// let schema = compile(
///     "Precord Pstruct r_t { Puint32 n; };",
///     &registry,
/// ).unwrap();
/// let parser = PadsParser::new(&schema, &registry);
/// let mask = Mask::all(BaseMask::CheckAndSet);
/// let mut acc = Accumulator::new(&schema, "r_t");
/// for (value, pd) in parser.records(b"1\n2\n2\n", "r_t", &mask) {
///     acc.add(&value, &pd);
/// }
/// let report = acc.report("<top>");
/// assert!(report.contains("good: 3 bad: 0"));
/// ```
#[derive(Debug, Clone)]
pub struct Accumulator<'s> {
    schema: &'s Schema,
    root: Node,
    top_k: usize,
    /// Total records added.
    pub records: u64,
    /// Records containing at least one error.
    pub bad_records: u64,
    /// Records skipped wholesale because the error budget was exhausted
    /// (their values are defaults, not data — see
    /// [`RecoveryPolicy`](pads_runtime::RecoveryPolicy)).
    pub skipped_records: u64,
    /// Records where panic-mode recovery skipped bytes to resynchronise.
    pub panicked_records: u64,
}

impl<'s> Accumulator<'s> {
    /// Creates an accumulator for the named type with default tracking
    /// limits.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not declared in `schema`.
    pub fn new(schema: &'s Schema, name: &str) -> Accumulator<'s> {
        Accumulator::with_config(schema, name, AccConfig::default())
    }

    /// Creates an accumulator tracking up to `tracked` distinct values and
    /// reporting the top `top_k` (§5.2: both are user-settable).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not declared in `schema`.
    pub fn with_limits(
        schema: &'s Schema,
        name: &str,
        tracked: usize,
        top_k: usize,
    ) -> Accumulator<'s> {
        Accumulator::with_config(schema, name, AccConfig { tracked, top_k, summaries: None })
    }

    /// Creates an accumulator with full configuration, including the §9
    /// histogram/quantile summaries on numeric fields.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not declared in `schema`.
    #[allow(clippy::expect_used)] // the documented contract: callers validate the name
    pub fn with_config(schema: &'s Schema, name: &str, cfg: AccConfig) -> Accumulator<'s> {
        let id = schema.type_id(name).expect("type not declared in schema");
        let root = build_def(schema, id, &cfg);
        Accumulator {
            schema,
            root,
            top_k: cfg.top_k,
            records: 0,
            bad_records: 0,
            skipped_records: 0,
            panicked_records: 0,
        }
    }

    /// Folds one parsed value (with its parse descriptor) into the profile.
    /// Budget-skipped records carry default values, not data, so they count
    /// in [`skipped_records`](Accumulator::skipped_records) but do not
    /// pollute the per-field distributions.
    pub fn add(&mut self, value: &Value, pd: &ParseDesc) {
        self.records += 1;
        if !pd.is_ok() {
            self.bad_records += 1;
        }
        if pd.err_code == pads_runtime::ErrorCode::BudgetExhausted {
            // Budget-skipped records are framed in panic mode too; count
            // them once, as skipped, not also as resynchronised.
            self.skipped_records += 1;
            return;
        }
        if pd.state == pads_runtime::ParseState::Panic {
            self.panicked_records += 1;
        }
        add_node(&mut self.root, value, Some(pd));
    }

    /// Folds every row of a columnar batch into the profile, producing
    /// exactly the statistics [`add`](Accumulator::add) would have for
    /// the same record stream.
    ///
    /// Clean batches (no error rows) whose column tree matches the
    /// accumulator tree fold column-at-a-time: each leaf's statistics
    /// are updated by streaming its contiguous column vector, never
    /// materialising row [`Value`] trees. This is exact, not
    /// approximate — dense union/optional children and flattened array
    /// elements are stored in row order, so every per-leaf statistic
    /// (including float summation order and which values the
    /// first-`tracked`-distinct map admits) sees its values in the same
    /// order a row-wise walk would. Batches with error rows, spilled
    /// (`Mixed`) columns, or shape drift fall back to the row-wise walk.
    pub fn add_batch(&mut self, batch: &pads::RecordBatch) {
        if batch.error_rows() == 0 {
            let tree = batch.column_tree();
            if col_supported(&self.root, &tree) {
                self.records += batch.len() as u64;
                let mut buf = String::new();
                fold_col(&mut self.root, &tree, &mut buf);
                return;
            }
        }
        for i in 0..batch.len() {
            self.add(&batch.row(i), &batch.pd(i));
        }
    }

    /// Renders the full report, one section per leaf, with paths prefixed
    /// by `prefix` (the paper uses `<top>`).
    pub fn report(&self, prefix: &str) -> String {
        let mut out = String::new();
        if self.skipped_records > 0 || self.panicked_records > 0 {
            out.push_str(&format!(
                "{prefix} : recovery: {} record(s) skipped on exhausted error budget, \
                 {} record(s) resynchronised in panic mode\n",
                self.skipped_records, self.panicked_records
            ));
        }
        report_node(&self.root, prefix, self.top_k, &mut out);
        out
    }

    /// Looks up the leaf statistics at a dotted path (e.g. `"length"`,
    /// `"request.meth"`, array elements as `"events.elt.tstamp"`).
    /// Typedef and `Popt` layers are transparent; an option's inner value
    /// statistics are returned.
    pub fn stats_at(&self, path: &str) -> Option<&BaseAcc> {
        fn unwrap_transparent(mut node: &Node) -> &Node {
            loop {
                match node {
                    Node::Typedef(inner) => node = inner,
                    Node::Opt { inner, .. } => node = inner,
                    other => return other,
                }
            }
        }
        let mut node = &self.root;
        for part in path.split('.').filter(|p| !p.is_empty()) {
            node = match unwrap_transparent(node) {
                Node::Struct { fields } => &fields.iter().find(|(n, _)| n == part)?.1,
                Node::Union { branches, .. } => {
                    &branches.iter().find(|(n, _)| n == part)?.1
                }
                Node::Array { elem, .. } if part == pads_runtime::mask::ELT => elem,
                _ => return None,
            };
        }
        match unwrap_transparent(node) {
            Node::Base(b) | Node::Enum(b) => Some(b),
            _ => None,
        }
    }

    /// The schema this accumulator profiles.
    pub fn schema(&self) -> &'s Schema {
        self.schema
    }
}

fn build_def(schema: &Schema, id: TypeId, cfg: &AccConfig) -> Node {
    let def = schema.def(id);
    match &def.kind {
        TypeKind::Struct { members } => Node::Struct {
            fields: members
                .iter()
                .filter_map(|m| match m {
                    MemberIr::Field(f) => {
                        Some((f.name.clone(), build_tyuse(schema, &f.ty, cfg)))
                    }
                    MemberIr::Lit(_) => None,
                })
                .collect(),
        },
        TypeKind::Union { branches, .. } => Node::Union {
            tag: BaseAcc::new(cfg, "union tag"),
            branches: branches
                .iter()
                .map(|b| (b.field.name.clone(), build_tyuse(schema, &b.field.ty, cfg)))
                .collect(),
        },
        TypeKind::Array { elem, .. } => Node::Array {
            length: BaseAcc::new(cfg, "array length"),
            elem: Box::new(build_tyuse(schema, elem, cfg)),
        },
        TypeKind::Enum { .. } => Node::Enum(BaseAcc::new(cfg, format!("enum {}", def.name))),
        TypeKind::Typedef { base, .. } => {
            Node::Typedef(Box::new(build_tyuse(schema, base, cfg)))
        }
    }
}

fn build_tyuse(schema: &Schema, ty: &TyUse, cfg: &AccConfig) -> Node {
    match ty {
        TyUse::Base { name, .. } => Node::Base(BaseAcc::new(cfg, base_label(name))),
        TyUse::Named { id, .. } => build_def(schema, *id, cfg),
        TyUse::Opt(inner) => Node::Opt {
            presence: BaseAcc::new(cfg, "opt presence"),
            inner: Box::new(build_tyuse(schema, inner, cfg)),
        },
    }
}

/// Paper-style type labels: `Puint32` reports as `uint32`.
fn base_label(name: &str) -> String {
    name.strip_prefix('P').unwrap_or(name).to_string()
}

fn child_pd<'p>(pd: Option<&'p ParseDesc>, name: &str) -> Option<&'p ParseDesc> {
    pd.and_then(|pd| match &pd.kind {
        PdKind::Struct { fields } => fields.iter().find(|(n, _)| n == name).map(|(_, p)| p),
        PdKind::Typedef { inner } => child_pd(inner.as_deref(), name),
        _ => None,
    })
}

fn add_node(node: &mut Node, value: &Value, pd: Option<&ParseDesc>) {
    let bad = pd.is_some_and(|p| !p.is_ok());
    match (node, value) {
        (Node::Base(acc), Value::Prim(p)) => {
            if bad {
                acc.add_bad();
            } else {
                acc.add_good(p.to_string(), numeric(p));
            }
        }
        (Node::Enum(acc), Value::Enum { variant, .. }) => {
            if bad {
                acc.add_bad();
            } else {
                acc.add_good(variant.as_str().to_owned(), None);
            }
        }
        (Node::Struct { fields }, Value::Struct { fields: vfields }) => {
            for (name, child) in fields {
                if let Some((_, v)) = vfields.iter().find(|(n, _)| n == name) {
                    add_node(child, v, child_pd(pd, name));
                }
            }
        }
        (Node::Union { tag, branches }, Value::Union { branch, value, .. }) => {
            if bad {
                tag.add_bad();
            } else {
                tag.add_good(branch.as_str().to_owned(), None);
            }
            if let Some((_, child)) = branches.iter_mut().find(|(n, _)| n == branch) {
                let bpd = pd.and_then(|p| match &p.kind {
                    PdKind::Union { pd, .. } => pd.as_deref(),
                    _ => None,
                });
                add_node(child, value, bpd);
            }
        }
        (Node::Array { length, elem }, Value::Array(elts)) => {
            if bad {
                length.add_bad();
            } else {
                length.add_good(elts.len().to_string(), Some(elts.len() as f64));
            }
            for (i, v) in elts.iter().enumerate() {
                let epd = pd.and_then(|p| match &p.kind {
                    PdKind::Array { elts, .. } => elts.get(i),
                    _ => None,
                });
                add_node(elem, v, epd);
            }
        }
        (Node::Opt { presence, inner }, Value::Opt(opt)) => {
            if bad {
                presence.add_bad();
            } else {
                presence.add_good(
                    if opt.is_some() { "SOME" } else { "NONE" }.to_string(),
                    None,
                );
            }
            if let Some(v) = opt {
                let ipd = pd.and_then(|p| match &p.kind {
                    PdKind::Opt { inner: Some(i) } => Some(i.as_ref()),
                    _ => None,
                });
                add_node(inner, v, ipd);
            }
        }
        (Node::Typedef(inner), v) => add_node(inner, v, pd),
        _ => {}
    }
}

fn numeric(p: &Prim) -> Option<f64> {
    match p {
        Prim::Int(_) | Prim::Uint(_) | Prim::Float(_) => p.as_f64(),
        Prim::Date(d) => Some(d.epoch as f64),
        _ => None,
    }
}

/// Whether the columnar fold can process `col` into `node` with
/// semantics identical to the row-wise walk. `false` forces the
/// row-wise fallback — checked for the whole tree *before* any
/// statistic is mutated, so a mid-tree mismatch never leaves the
/// accumulator half-folded.
fn col_supported(node: &Node, col: &ColTree<'_>) -> bool {
    match (node, col) {
        // Nothing to fold: an empty batch, or a never-taken branch.
        (_, ColTree::Empty) => true,
        (Node::Typedef(inner), c) => col_supported(inner, c),
        // Leaf-level kind drift (PrimColView::Mixed) is still row-order
        // prims, so every prim leaf folds.
        (Node::Base(_), ColTree::Prim(_)) => true,
        (Node::Enum(_), ColTree::Enum { .. }) => true,
        (Node::Struct { fields }, ColTree::Struct { fields: cols, .. }) => {
            // A node field absent from the columns is skipped by both
            // walks; a present one must fold.
            fields.iter().all(|(name, child)| {
                cols.iter()
                    .find(|(n, _)| n.as_str() == name.as_str())
                    .is_none_or(|(_, c)| col_supported(child, c))
            })
        }
        (Node::Union { branches, .. }, ColTree::Union { names, children, .. }) => {
            children.iter().enumerate().all(|(i, c)| {
                matches!(c, ColTree::Empty)
                    || branches
                        .iter()
                        .find(|(n, _)| names.get(i).is_some_and(|bn| bn.as_str() == n.as_str()))
                        .is_none_or(|(_, b)| col_supported(b, c))
            })
        }
        (Node::Array { elem, .. }, ColTree::Array { elem: e, .. }) => col_supported(elem, e),
        (Node::Opt { inner, .. }, ColTree::Opt { inner: i, .. }) => col_supported(inner, i),
        // Shape-drift spills and node/column kind mismatches: fall back.
        _ => false,
    }
}

/// Streams one primitive leaf column into its accumulator. `buf` is the
/// shared render buffer: values are formatted through the same `Display`
/// the row-wise walk's `to_string` uses, but the text only becomes an
/// owned `String` on first-seen tracked-map inserts.
fn fold_prims(acc: &mut BaseAcc, col: &PrimColView<'_>, buf: &mut String) {
    use std::fmt::Write;
    let scalar = |acc: &mut BaseAcc, buf: &mut String, p: Prim| {
        buf.clear();
        let _ = write!(buf, "{p}");
        acc.add_good_str(buf, numeric(&p));
    };
    match col {
        PrimColView::Unit(n) => {
            for _ in 0..*n {
                acc.add_good_str("", None);
            }
        }
        PrimColView::Bool(v) => v.iter().for_each(|&b| scalar(acc, buf, Prim::Bool(b))),
        PrimColView::Char(v) => v.iter().for_each(|&c| scalar(acc, buf, Prim::Char(c))),
        PrimColView::Int(v) => v.iter().for_each(|&i| scalar(acc, buf, Prim::Int(i))),
        PrimColView::Uint(v) => v.iter().for_each(|&u| scalar(acc, buf, Prim::Uint(u))),
        PrimColView::Float(v) => v.iter().for_each(|&f| scalar(acc, buf, Prim::Float(f))),
        PrimColView::Ip(v) => v.iter().for_each(|&ip| scalar(acc, buf, Prim::Ip(ip))),
        PrimColView::Date(v) => v.iter().for_each(|&d| scalar(acc, buf, Prim::Date(d))),
        PrimColView::Str { offsets, heap } => {
            let mut start = 0usize;
            for &end in *offsets {
                acc.add_good_str(&heap[start..end as usize], None);
                start = end as usize;
            }
        }
        PrimColView::Bytes { offsets, heap } => {
            let mut start = 0usize;
            for &end in *offsets {
                buf.clear();
                // Mirrors `Prim::Bytes`'s `Display` without building the
                // owned `Prim` (which would copy the slice).
                for b in &heap[start..end as usize] {
                    let _ = write!(buf, "\\x{b:02x}");
                }
                acc.add_good_str(buf, None);
                start = end as usize;
            }
        }
        PrimColView::Mixed(prims) => {
            for p in *prims {
                buf.clear();
                let _ = write!(buf, "{p}");
                acc.add_good_str(buf, numeric(p));
            }
        }
    }
}

/// The column-at-a-time fold: every slot of `col` lands in `node` in
/// row order, exactly as the row-wise walk over clean rows would (see
/// [`Accumulator::add_batch`]). Only called after [`col_supported`].
fn fold_col(node: &mut Node, col: &ColTree<'_>, buf: &mut String) {
    use std::fmt::Write;
    match (node, col) {
        (_, ColTree::Empty) => {}
        (Node::Typedef(inner), c) => fold_col(inner, c, buf),
        (Node::Base(acc), ColTree::Prim(pv)) => fold_prims(acc, pv, buf),
        (Node::Enum(acc), ColTree::Enum { indices, names }) => {
            for &idx in *indices {
                acc.add_good_str(names[idx as usize].as_str(), None);
            }
        }
        (Node::Struct { fields }, ColTree::Struct { fields: cols, .. }) => {
            for (name, child) in fields {
                if let Some((_, c)) =
                    cols.iter().find(|(n, _)| n.as_str() == name.as_str())
                {
                    fold_col(child, c, buf);
                }
            }
        }
        (Node::Union { tag, branches }, ColTree::Union { tags, names, children, .. }) => {
            for &t in *tags {
                tag.add_good_str(names[t as usize].as_str(), None);
            }
            for (i, c) in children.iter().enumerate() {
                if matches!(c, ColTree::Empty) {
                    continue;
                }
                if let Some((_, branch)) = branches
                    .iter_mut()
                    .find(|(n, _)| names.get(i).is_some_and(|bn| bn.as_str() == n.as_str()))
                {
                    fold_col(branch, c, buf);
                }
            }
        }
        (Node::Array { length, elem }, ColTree::Array { offsets, elem: e }) => {
            let mut start = 0u32;
            for &end in *offsets {
                let len = (end - start) as usize;
                buf.clear();
                let _ = write!(buf, "{len}");
                length.add_good_str(buf, Some(len as f64));
                start = end;
            }
            fold_col(elem, e, buf);
        }
        (Node::Opt { presence, inner }, ColTree::Opt { validity, inner: i }) => {
            for slot in 0..validity.len() {
                presence.add_good_str(if validity.get(slot) { "SOME" } else { "NONE" }, None);
            }
            fold_col(inner, i, buf);
        }
        // col_supported has excluded every other pairing.
        _ => {}
    }
}

fn report_node(node: &Node, path: &str, top_k: usize, out: &mut String) {
    match node {
        Node::Base(acc) | Node::Enum(acc) => acc.report(path, top_k, out),
        Node::Struct { fields } => {
            for (name, child) in fields {
                report_node(child, &format!("{path}.{name}"), top_k, out);
            }
        }
        Node::Union { tag, branches } => {
            tag.report(&format!("{path}.<tag>"), top_k, out);
            for (name, child) in branches {
                report_node(child, &format!("{path}.{name}"), top_k, out);
            }
        }
        Node::Array { length, elem } => {
            length.report(&format!("{path}.<length>"), top_k, out);
            report_node(elem, &format!("{path}.elt"), top_k, out);
        }
        Node::Opt { presence, inner } => {
            presence.report(&format!("{path}.<opt>"), top_k, out);
            report_node(inner, path, top_k, out);
        }
        Node::Typedef(inner) => report_node(inner, path, top_k, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Guards the clean-batch fast path against silently degrading to
    /// row-wise: the bundled descriptions (every composite kind between
    /// them) must be recognised as foldable.
    #[test]
    fn columnar_fold_engages_on_bundled_descriptions() {
        use pads::{descriptions, PadsParser};
        use pads_runtime::{BaseMask, Mask, Registry};
        let registry = Registry::standard();
        let m = Mask::all(BaseMask::CheckAndSet);

        let sirius = descriptions::sirius();
        let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
            records: 40,
            syntax_errors: 0,
            sort_violations: 0,
            ..Default::default()
        });
        let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        let (batch, _) = PadsParser::new(&sirius, &registry).records_batched(
            &data[body_start..],
            "entry_t",
            &m,
        );
        assert_eq!(batch.error_rows(), 0);
        let acc = Accumulator::new(&sirius, "entry_t");
        assert!(col_supported(&acc.root, &batch.column_tree()), "sirius must fold columnar");

        let clf = descriptions::clf();
        let (data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
            records: 40,
            dash_length_rate: 0.0,
            ..Default::default()
        });
        let (batch, _) = PadsParser::new(&clf, &registry).records_batched(&data, "entry_t", &m);
        assert_eq!(batch.error_rows(), 0);
        let acc = Accumulator::new(&clf, "entry_t");
        assert!(col_supported(&acc.root, &batch.column_tree()), "clf must fold columnar");
    }

    /// The bytes fast path mirrors `Prim::Bytes`'s `Display` by hand (to
    /// avoid copying the slice into an owned `Prim`); pin them together.
    #[test]
    fn bytes_column_renders_like_prim_display() {
        let cfg = AccConfig::default();
        let mut folded = BaseAcc::new(&cfg, "bytes");
        let mut rendered = BaseAcc::new(&cfg, "bytes");
        let slots: &[&[u8]] = &[b"\x00\x7f", b"", b"abc\xff"];
        let mut offsets = Vec::new();
        let mut heap = Vec::new();
        for s in slots {
            heap.extend_from_slice(s);
            offsets.push(heap.len() as u32);
            rendered.add_good(Prim::Bytes(s.to_vec()).to_string(), None);
        }
        let mut buf = String::new();
        fold_prims(
            &mut folded,
            &PrimColView::Bytes { offsets: &offsets, heap: &heap },
            &mut buf,
        );
        assert_eq!(folded.top(10), rendered.top(10));
    }

    /// Ties must break by value (ascending) so reports are deterministic —
    /// `tracked` is a `HashMap` and would otherwise leak iteration order.
    #[test]
    fn top_breaks_count_ties_by_value_regardless_of_insertion_order() {
        let cfg = AccConfig::default();
        let mut fwd = BaseAcc::new(&cfg, "Puint32");
        let mut rev = BaseAcc::new(&cfg, "Puint32");
        let vals = ["delta", "alpha", "charlie", "bravo"];
        for v in vals {
            fwd.add_good(v.to_owned(), None);
        }
        for v in vals.iter().rev() {
            rev.add_good((*v).to_owned(), None);
        }
        // Everything ties at count 1: the order is value-ascending however
        // the values arrived.
        let want = vec![("alpha", 1), ("bravo", 1), ("charlie", 1), ("delta", 1)];
        assert_eq!(fwd.top(10), want);
        assert_eq!(rev.top(10), want);
        // Higher counts still dominate the tie-broken tail.
        fwd.add_good("delta".to_owned(), None);
        assert_eq!(fwd.top(2), vec![("delta", 2), ("alpha", 1)]);
        // The rendered report is byte-identical across insertion orders.
        let (mut a, mut b) = (String::new(), String::new());
        rev.report("x", 10, &mut a);
        let mut rev2 = BaseAcc::new(&cfg, "Puint32");
        for v in vals {
            rev2.add_good(v.to_owned(), None);
        }
        rev2.report("x", 10, &mut b);
        assert_eq!(a, b);
    }
}
