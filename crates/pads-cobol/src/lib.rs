//! Cobol copybook → PADS description translation.
//!
//! AT&T's Altair project receives ~4000 Cobol-format files per day; §5.2 of
//! the paper mentions "a tool that automatically translates Cobol copybooks
//! into PADS descriptions" so accumulator profiles can watch every feed.
//! This crate is that tool: it parses a useful subset of copybook syntax
//! and emits a PADS description (via the `pads-syntax` pretty-printer) that
//! parses the corresponding EBCDIC records.
//!
//! Supported subset:
//!
//! * level numbers 01–49 and 77; level 66/88 entries are skipped;
//! * `PIC X(n)`/`PIC A(n)` (also repeated-letter forms `XXX`),
//!   `PIC 9(n)`, `PIC S9(n)`, implied decimals `9(n)V9(m)`;
//! * `USAGE DISPLAY` (default) → zoned decimal / fixed-width strings,
//!   `COMP`/`COMP-4`/`BINARY` → binary integers, `COMP-3` → packed decimal;
//! * `OCCURS n TIMES` → fixed-size `Parray`;
//! * `REDEFINES` → `Punion` of the original and redefining layouts;
//! * `FILLER` → synthesised field names.
//!
//! # Examples
//!
//! ```
//! let copybook = "
//!     01 CUSTOMER-REC.
//!        05 CUST-ID      PIC 9(6).
//!        05 CUST-NAME    PIC X(20).
//!        05 BALANCE      PIC S9(7)V99 COMP-3.
//! ";
//! let description = pads_cobol::translate(copybook)?;
//! assert!(description.contains("Pstruct customer_rec_t"));
//! assert!(description.contains("Pebc_zoned(:6:) cust_id"));
//! assert!(description.contains("Ppacked(:9:) balance"));
//! # Ok::<(), pads_cobol::CobolError>(())
//! ```

use pads_syntax::ast::{
    ArrayCond, Decl, DeclKind, Expr, Member, Program, TyApp, TyExpr,
};
use pads_syntax::Span;

/// Error translating a copybook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CobolError {
    msg: String,
    line: usize,
}

impl CobolError {
    fn new(msg: impl Into<String>, line: usize) -> CobolError {
        CobolError { msg: msg.into(), line }
    }

    /// 1-based line the error was found on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for CobolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "copybook error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CobolError {}

/// How a picture clause is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Usage {
    Display,
    Comp3,
    Binary,
}

/// A parsed picture clause.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pic {
    /// `X(n)` / `A(n)`: character data.
    Text(usize),
    /// `9(n)` with optional sign and implied decimals (total digit count).
    Num { digits: usize, signed: bool },
}

#[derive(Debug, Clone)]
struct Item {
    level: u32,
    name: String,
    pic: Option<Pic>,
    usage: Usage,
    occurs: Option<usize>,
    redefines: Option<String>,
    children: Vec<Item>,
}

/// Translates copybook text into PADS description text.
///
/// The emitted description uses one `Pstruct` per group item (named
/// `<item>_t` in snake case), `Parray` declarations for `OCCURS`, and
/// `Punion` declarations for `REDEFINES`. The 01-level record is annotated
/// `Precord`; parse it with the EBCDIC charset and a fixed-width or
/// length-prefixed record discipline.
///
/// # Errors
///
/// [`CobolError`] when the copybook uses syntax outside the supported
/// subset.
pub fn translate(copybook: &str) -> Result<String, CobolError> {
    let program = translate_to_ast(copybook)?;
    Ok(pads_syntax::pretty::program(&program))
}

/// Translates copybook text into a PADS syntax tree (for callers that want
/// to compile it directly).
///
/// # Errors
///
/// See [`translate`].
pub fn translate_to_ast(copybook: &str) -> Result<Program, CobolError> {
    let items = parse_items(copybook)?;
    if items.is_empty() {
        return Err(CobolError::new("copybook defines no items", 1));
    }
    let mut out = Program::default();
    let mut used_names = Vec::new();
    let mut record_tys = Vec::new();
    for item in &items {
        record_tys.push(emit_item(item, &mut out, &mut used_names)?);
    }
    // A copybook describes one record layout; a data file is a sequence of
    // such records, so the source type is an array over the last (usually
    // only) 01-level record.
    if let Some(last_ty) = record_tys.pop() {
        let file_name = unique("copybook_file_t", &mut used_names);
        out.decls.push(Decl {
            name: file_name,
            params: vec![],
            is_record: false,
            is_source: true,
            kind: DeclKind::Array { elem: last_ty, cond: ArrayCond::default() },
            where_clause: None,
            span: span(),
        });
    }
    Ok(out)
}

// ---- copybook parsing ------------------------------------------------------

fn parse_items(copybook: &str) -> Result<Vec<Item>, CobolError> {
    // Sentences end with '.'; gather tokens per sentence with line numbers.
    let mut sentences: Vec<(usize, Vec<String>)> = Vec::new();
    let mut current: Vec<String> = Vec::new();
    let mut current_line = 1;
    for (i, line) in copybook.lines().enumerate() {
        let line = line.trim();
        // Fixed-format comment lines start with '*' in column 7; free
        // format uses '*>' — accept both, plus blank lines.
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        for raw in line.split_whitespace() {
            let (tok, ends) = match raw.strip_suffix('.') {
                Some(t) => (t, true),
                None => (raw, false),
            };
            if !tok.is_empty() {
                if current.is_empty() {
                    current_line = i + 1;
                }
                current.push(tok.to_uppercase());
            }
            if ends && !current.is_empty() {
                sentences.push((current_line, std::mem::take(&mut current)));
            }
        }
    }
    if !current.is_empty() {
        sentences.push((current_line, current));
    }

    // Parse each sentence into a flat item, then nest by level number.
    let mut flat: Vec<Item> = Vec::new();
    let mut filler = 0usize;
    for (line, toks) in sentences {
        let mut it = toks.into_iter().peekable();
        let level_tok = it.next().expect("sentence is non-empty");
        let Ok(level) = level_tok.parse::<u32>() else {
            return Err(CobolError::new(
                format!("expected a level number, found `{level_tok}`"),
                line,
            ));
        };
        if level == 66 || level == 88 {
            continue; // RENAMES / condition names: no storage
        }
        let raw_name = it.next().unwrap_or_else(|| "FILLER".to_owned());
        let name = if raw_name == "FILLER" {
            filler += 1;
            format!("filler_{filler}")
        } else {
            snake(&raw_name)
        };
        let mut item = Item {
            level,
            name,
            pic: None,
            usage: Usage::Display,
            occurs: None,
            redefines: None,
            children: Vec::new(),
        };
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "PIC" | "PICTURE" => {
                    let spec = it
                        .next()
                        .ok_or_else(|| CobolError::new("PIC without a picture", line))?;
                    item.pic = Some(parse_pic(&spec, line)?);
                }
                "USAGE" | "IS" => {}
                "COMP" | "COMP-4" | "COMPUTATIONAL" | "BINARY" => item.usage = Usage::Binary,
                "COMP-3" | "COMPUTATIONAL-3" | "PACKED-DECIMAL" => item.usage = Usage::Comp3,
                "DISPLAY" => item.usage = Usage::Display,
                "OCCURS" => {
                    let n = it
                        .next()
                        .and_then(|t| t.parse::<usize>().ok())
                        .ok_or_else(|| CobolError::new("OCCURS without a count", line))?;
                    item.occurs = Some(n);
                    // Optional "TIMES".
                    if it.peek().is_some_and(|t| t == "TIMES") {
                        it.next();
                    }
                }
                "REDEFINES" => {
                    let target = it
                        .next()
                        .ok_or_else(|| CobolError::new("REDEFINES without a target", line))?;
                    item.redefines = Some(snake(&target));
                }
                "VALUE" | "VALUES" => {
                    // Initial values do not affect layout; swallow one token.
                    it.next();
                }
                "SYNC" | "SYNCHRONIZED" | "JUST" | "JUSTIFIED" | "RIGHT" | "LEFT" => {}
                other => {
                    return Err(CobolError::new(
                        format!("unsupported clause `{other}`"),
                        line,
                    ))
                }
            }
        }
        flat.push(item);
    }

    // Nest by level numbers.
    let mut roots: Vec<Item> = Vec::new();
    let mut stack: Vec<Item> = Vec::new();
    for item in flat {
        while stack.last().is_some_and(|top| top.level >= item.level) {
            let done = stack.pop().expect("stack non-empty");
            attach(&mut roots, &mut stack, done);
        }
        stack.push(item);
    }
    while let Some(done) = stack.pop() {
        attach(&mut roots, &mut stack, done);
    }
    Ok(roots)
}

fn attach(roots: &mut Vec<Item>, stack: &mut [Item], done: Item) {
    match stack.last_mut() {
        Some(parent) => parent.children.push(done),
        None => roots.push(done),
    }
}

fn parse_pic(spec: &str, line: usize) -> Result<Pic, CobolError> {
    let bytes = spec.as_bytes();
    let mut signed = false;
    let mut digits = 0usize;
    let mut text = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Count with optional (n) repetition.
        let mut count = 1usize;
        if bytes.get(i + 1) == Some(&b'(') {
            let close = spec[i + 2..]
                .find(')')
                .ok_or_else(|| CobolError::new("unclosed `(` in picture", line))?;
            count = spec[i + 2..i + 2 + close]
                .parse()
                .map_err(|_| CobolError::new("bad repetition in picture", line))?;
            i += close + 2;
        }
        match c {
            'S' => signed = true,
            '9' => digits += count,
            'X' | 'A' => text += count,
            'V' => {} // implied decimal point: no storage
            '.' | ',' => {} // insertion characters (rare in our subset)
            other => {
                return Err(CobolError::new(
                    format!("unsupported picture character `{other}`"),
                    line,
                ))
            }
        }
        i += 1;
    }
    if text > 0 && digits == 0 {
        Ok(Pic::Text(text))
    } else if digits > 0 && text == 0 {
        Ok(Pic::Num { digits, signed })
    } else {
        Err(CobolError::new("mixed or empty picture", line))
    }
}

fn snake(name: &str) -> String {
    name.to_lowercase().replace('-', "_")
}

// ---- emission ----------------------------------------------------------------

fn span() -> Span {
    Span::default()
}

fn ty_app(name: &str, args: Vec<Expr>) -> TyExpr {
    TyExpr::App(TyApp { name: name.to_owned(), args, span: span() })
}

/// Base type for an elementary item.
fn elementary_ty(item: &Item) -> Result<TyExpr, CobolError> {
    let pic = item.pic.as_ref().expect("elementary items have a PIC");
    match (pic, item.usage) {
        (Pic::Text(n), _) => Ok(ty_app("Pstring_FW", vec![Expr::Int(*n as i64)])),
        (Pic::Num { digits, .. }, Usage::Display) => {
            Ok(ty_app("Pebc_zoned", vec![Expr::Int(*digits as i64)]))
        }
        (Pic::Num { digits, .. }, Usage::Comp3) => {
            Ok(ty_app("Ppacked", vec![Expr::Int(*digits as i64)]))
        }
        (Pic::Num { digits, signed }, Usage::Binary) => {
            // Standard Cobol binary sizes by digit count.
            let bits = match digits {
                0..=4 => 16,
                5..=9 => 32,
                _ => 64,
            };
            let name =
                if *signed { format!("Pb_int{bits}") } else { format!("Pb_uint{bits}") };
            Ok(ty_app(&name, vec![]))
        }
    }
}

/// Emits declarations for `item` (bottom-up) and returns the type name (or
/// base type) to reference it by.
fn emit_item(
    item: &Item,
    out: &mut Program,
    used: &mut Vec<String>,
) -> Result<TyExpr, CobolError> {
    if item.children.is_empty() {
        let base = elementary_ty(item)?;
        return wrap_occurs(item, base, out, used);
    }
    // Group item: fields, with REDEFINES folded into unions.
    let mut members: Vec<Member> = Vec::new();
    let mut i = 0usize;
    while i < item.children.len() {
        let child = &item.children[i];
        // Collect any following siblings that REDEFINE this child.
        let mut alts = vec![child];
        let mut j = i + 1;
        while j < item.children.len() {
            let sib = &item.children[j];
            if sib.redefines.as_deref() == Some(child.name.as_str()) {
                alts.push(sib);
                j += 1;
            } else {
                break;
            }
        }
        let ty = if alts.len() == 1 {
            emit_item(child, out, used)?
        } else {
            // Build a union declaration over the alternative layouts.
            let union_name = unique(&format!("{}_layout_t", child.name), used);
            let mut branches = Vec::new();
            for alt in &alts {
                let bty = emit_item(alt, out, used)?;
                branches.push(pads_syntax::ast::Branch {
                    case: None,
                    field: pads_syntax::ast::Field {
                        name: alt.name.clone(),
                        ty: bty,
                        constraint: None,
                        span: span(),
                    },
                });
            }
            out.decls.push(Decl {
                name: union_name.clone(),
                params: vec![],
                is_record: false,
                is_source: false,
                kind: DeclKind::Union { switch: None, branches },
                where_clause: None,
                span: span(),
            });
            ty_app(&union_name, vec![])
        };
        members.push(Member::Field(pads_syntax::ast::Field {
            name: child.name.clone(),
            ty,
            constraint: None,
            span: span(),
        }));
        i += alts.len();
    }
    let struct_name = unique(&format!("{}_t", item.name), used);
    out.decls.push(Decl {
        name: struct_name.clone(),
        params: vec![],
        is_record: item.level == 1,
        is_source: false,
        kind: DeclKind::Struct { members },
        where_clause: None,
        span: span(),
    });
    wrap_occurs(item, ty_app(&struct_name, vec![]), out, used)
}

/// Wraps a type in a fixed-size `Parray` when the item has `OCCURS`.
fn wrap_occurs(
    item: &Item,
    base: TyExpr,
    out: &mut Program,
    used: &mut Vec<String>,
) -> Result<TyExpr, CobolError> {
    let Some(n) = item.occurs else { return Ok(base) };
    let arr_name = unique(&format!("{}_seq_t", item.name), used);
    out.decls.push(Decl {
        name: arr_name.clone(),
        params: vec![],
        is_record: false,
        is_source: false,
        kind: DeclKind::Array {
            elem: base,
            cond: ArrayCond { size: Some(Expr::Int(n as i64)), ..ArrayCond::default() },
        },
        where_clause: None,
        span: span(),
    });
    Ok(ty_app(&arr_name, vec![]))
}

fn unique(want: &str, used: &mut Vec<String>) -> String {
    let mut name = want.to_owned();
    let mut n = 1;
    while used.iter().any(|u| u == &name) {
        n += 1;
        name = format!("{want}{n}");
    }
    used.push(name.clone());
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
       01 BILLING-REC.
          05 ACCOUNT-ID       PIC 9(8).
          05 CUST-NAME        PIC X(12).
          05 BALANCE          PIC S9(5)V99 COMP-3.
          05 USAGE-COUNT      PIC 9(4) COMP.
          05 HISTORY OCCURS 3 TIMES.
             10 HIST-CODE     PIC X(2).
             10 HIST-AMT      PIC S9(5) COMP-3.
    ";

    #[test]
    fn translates_the_sample_copybook() {
        let desc = translate(SAMPLE).unwrap();
        assert!(desc.contains("Pebc_zoned(:8:) account_id"), "{desc}");
        assert!(desc.contains("Pstring_FW(:12:) cust_name"));
        assert!(desc.contains("Ppacked(:7:) balance"));
        assert!(desc.contains("Pb_uint16 usage_count"));
        assert!(desc.contains("Parray history_seq_t"));
        assert!(desc.contains("history_t[3]"));
        assert!(desc.contains("Precord Pstruct billing_rec_t"));
        assert!(desc.contains("Psource Parray copybook_file_t"));
    }

    #[test]
    fn translation_compiles_as_a_pads_description() {
        let desc = translate(SAMPLE).unwrap();
        let registry = pads_runtime::Registry::standard();
        pads_check::compile(&desc, &registry)
            .unwrap_or_else(|e| panic!("translated description must compile:\n{e}\n{desc}"));
    }

    #[test]
    fn redefines_becomes_a_union() {
        let src = "
           01 REC.
              05 RAW-DATE       PIC X(8).
              05 NUM-DATE REDEFINES RAW-DATE PIC 9(8).
        ";
        let desc = translate(src).unwrap();
        assert!(desc.contains("Punion raw_date_layout_t"), "{desc}");
        assert!(desc.contains("Pstring_FW(:8:) raw_date"));
        assert!(desc.contains("Pebc_zoned(:8:) num_date"));
        let registry = pads_runtime::Registry::standard();
        pads_check::compile(&desc, &registry).unwrap();
    }

    #[test]
    fn repeated_letter_pictures() {
        let src = "
           01 R.
              05 A PIC XXX.
              05 B PIC S999V99.
        ";
        let desc = translate(src).unwrap();
        assert!(desc.contains("Pstring_FW(:3:) a"));
        assert!(desc.contains("Pebc_zoned(:5:) b"));
    }

    #[test]
    fn fillers_get_fresh_names() {
        let src = "
           01 R.
              05 FILLER PIC X(2).
              05 FILLER PIC X(3).
        ";
        let desc = translate(src).unwrap();
        assert!(desc.contains("filler_1"));
        assert!(desc.contains("filler_2"));
    }

    #[test]
    fn level_88_condition_names_are_skipped() {
        let src = "
           01 R.
              05 STATUS-CODE PIC X.
                 88 IS-ACTIVE VALUE 'A'.
              05 AMOUNT PIC 9(3).
        ";
        let desc = translate(src).unwrap();
        assert!(desc.contains("status_code"));
        assert!(!desc.contains("is_active"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = translate("01 R.\n   05 F PIC Q(3).").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unsupported picture"));
    }

    #[test]
    fn round_trip_parse_of_generated_ebcdic_record() {
        use pads::PadsParser;
        use pads_runtime::{BaseMask, Charset, Mask, RecordDiscipline, Registry};

        let src = "
           01 TINY.
              05 CODE PIC X(2).
              05 QTY  PIC 9(3).
        ";
        let desc = translate(src).unwrap();
        let registry = Registry::standard();
        let schema = pads_check::compile(&desc, &registry).unwrap();
        // Record bytes: "AB" in EBCDIC followed by zoned 042.
        let e = |b: u8| Charset::Ebcdic.encode(b);
        let data = [e(b'A'), e(b'B'), 0xF0, 0xF4, 0xF2];
        let parser = PadsParser::new(&schema, &registry).with_options(pads::ParseOptions {
            charset: Charset::Ebcdic,
            discipline: RecordDiscipline::FixedWidth(5),
            ..Default::default()
        });
        let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok(), "{pd:?}");
        assert_eq!(v.at_path("[0].code").and_then(pads::Value::as_str), Some("AB"));
        assert_eq!(v.at_path("[0].qty").and_then(pads::Value::as_u64), Some(42));
    }
}

