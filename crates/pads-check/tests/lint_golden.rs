//! Golden lint fixtures: every `PLxxx` code has a minimal `tests/lint/`
//! description that triggers it, paired with a `.expected` file listing
//! the `code level` lines the lint suite must produce (in order).

use std::path::PathBuf;

use pads_runtime::Registry;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint")
}

fn lint_lines(src: &str) -> Vec<String> {
    let (_, diags) =
        pads_check::compile_with_lints(src, &Registry::standard()).expect("fixture compiles");
    diags.iter_all().map(|d| format!("{} {}", d.code, d.level)).collect()
}

#[test]
fn every_fixture_matches_its_expected_diagnostics() {
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(fixture_dir())
        .expect("tests/lint exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "pads"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let expected_path = path.with_extension("expected");
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("{} missing", expected_path.display()));
        let got = lint_lines(&src).join("\n");
        let want = expected.trim();
        assert_eq!(
            got,
            want,
            "fixture {} produced different diagnostics",
            path.display()
        );
        // The fixture file is named after the code it demonstrates.
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("utf8 stem");
        let code = stem.to_uppercase();
        assert!(
            got.contains(&code),
            "fixture {} does not trigger {code}: got {got:?}",
            path.display()
        );
        checked += 1;
    }
    // One fixture per registered lint code, no strays.
    assert_eq!(checked, pads_check::lint::CODES.len(), "one fixture per code");
}

#[test]
fn fixture_levels_match_the_registry() {
    for (code, level, _) in pads_check::lint::CODES {
        assert_eq!(*level, pads_check::lint::default_level(code));
    }
}

#[test]
fn bundled_descriptions_are_deny_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../descriptions");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("descriptions dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|x| x != "pads") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("description readable");
        let (_, diags) = pads_check::compile_with_lints(&src, &Registry::standard())
            .unwrap_or_else(|e| panic!("{} fails to compile: {e}", path.display()));
        assert!(
            !diags.any_at(pads_check::lint::Level::Deny),
            "{} has deny-level lints: {:?}",
            path.display(),
            diags.iter().collect::<Vec<_>>()
        );
        seen += 1;
    }
    assert_eq!(seen, 3, "clf, sirius, mixed");
}
