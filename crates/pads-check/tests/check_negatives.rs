//! Negative-path coverage for the checker: error variants the unit tests
//! in `lib.rs` do not reach, plus the deterministic-ordering contract on
//! the returned error list.

use pads_runtime::Registry;

fn errs(src: &str) -> Vec<pads_check::CheckError> {
    match pads_check::compile(src, &Registry::standard()) {
        Err(pads_check::CompileError::Check(e)) => e,
        Err(pads_check::CompileError::Syntax(e)) => panic!("syntax error, not check error: {e}"),
        Ok(_) => panic!("expected check errors"),
    }
}

#[test]
fn empty_description_is_rejected() {
    let e = errs("");
    assert!(e[0].to_string().contains("declares no types"), "{e:?}");
    let e = errs("// only a comment\n");
    assert!(e[0].to_string().contains("declares no types"), "{e:?}");
}

#[test]
fn duplicate_function_is_rejected() {
    let e = errs(
        r#"
        bool f(int a) { return a == 1; };
        bool f(int a) { return a == 2; };
        Pstruct t { Puint8 x : f(x); };
        "#,
    );
    assert!(e.iter().any(|e| e.to_string().contains("duplicate function `f`")), "{e:?}");
}

#[test]
fn multiple_psource_declarations_are_rejected() {
    let e = errs(
        r#"
        Psource Pstruct a_t { Puint8 x; };
        Psource Pstruct b_t { Puint8 y; };
        "#,
    );
    assert!(e.iter().any(|e| e.to_string().contains("multiple Psource")), "{e:?}");
}

#[test]
fn empty_bodies_are_rejected() {
    // The parser already refuses `Punion u_t { };`, so drive `check`
    // directly with a constructed AST to reach the checker's own guard.
    use pads_syntax::ast::{Decl, DeclKind, Program};
    let decl = |name: &str, kind: DeclKind| Decl {
        name: name.to_owned(),
        params: Vec::new(),
        is_record: false,
        is_source: false,
        kind,
        where_clause: None,
        span: pads_syntax::Span::default(),
    };
    let mut prog = Program::default();
    prog.decls.push(decl("u_t", DeclKind::Union { switch: None, branches: Vec::new() }));
    prog.decls.push(decl("e_t", DeclKind::Enum { variants: Vec::new() }));
    let e = pads_check::check(&prog, &Registry::standard()).expect_err("must fail");
    assert!(e.iter().any(|e| e.to_string().contains("union has no branches")), "{e:?}");
    assert!(e.iter().any(|e| e.to_string().contains("enum has no variants")), "{e:?}");
}

#[test]
fn empty_string_literal_is_rejected() {
    let e = errs(r#"Pstruct t { ""; Puint8 x; };"#);
    assert!(
        e.iter().any(|e| e.to_string().contains("empty string literal")),
        "{e:?}"
    );
}

#[test]
fn duplicate_parameters_are_rejected() {
    let e = errs("Pstruct t (:Puint8 n, Puint8 n:) { Puint8 x : x <= n; };");
    assert!(e.iter().any(|e| e.to_string().contains("duplicate parameter `n`")), "{e:?}");
    let e = errs(
        r#"
        bool f(int a, int a) { return a == 1; };
        Pstruct t { Puint8 x : f(x, x); };
        "#,
    );
    assert!(e.iter().any(|e| e.to_string().contains("duplicate parameter `a`")), "{e:?}");
}

#[test]
fn unknown_parameter_type_is_rejected() {
    let e = errs("Pstruct t (:Nosuch n:) { Puint8 x : x <= n; };");
    assert!(e.iter().any(|e| e.to_string().contains("unknown parameter type")), "{e:?}");
}

#[test]
fn errors_are_sorted_by_position() {
    // Two errors introduced in reverse source order by checking phases
    // must still come back sorted by span.
    let e = errs(
        r#"
        Pstruct a_t { Puint8 x : x < zzz; };
        Pstruct b_t { nosuch_t y; };
        "#,
    );
    assert!(e.len() >= 2, "{e:?}");
    let spans: Vec<usize> = e.iter().map(|e| e.span().start).collect();
    let mut sorted = spans.clone();
    sorted.sort_unstable();
    assert_eq!(spans, sorted, "errors must be ordered by span start");
}
