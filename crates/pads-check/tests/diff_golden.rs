//! Golden `pads diff` fixtures: every `tests/diff/<name>.old.pads` /
//! `<name>.new.pads` pair has a `<name>.expected` file holding the exact
//! [`pads_check::diff::DiffReport::render`] output (findings plus the
//! final `verdict:` line).

use std::path::PathBuf;

use pads_check::diff::{diff_schemas, Verdict};
use pads_runtime::Registry;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/diff")
}

fn diff_files(old: &PathBuf, new: &PathBuf) -> pads_check::diff::DiffReport {
    let reg = Registry::standard();
    let old_src = std::fs::read_to_string(old).expect("old fixture readable");
    let new_src = std::fs::read_to_string(new).expect("new fixture readable");
    let old = pads_check::compile(&old_src, &reg).expect("old fixture compiles");
    let new = pads_check::compile(&new_src, &reg).expect("new fixture compiles");
    diff_schemas(&old, &new)
}

#[test]
fn every_fixture_pair_matches_its_expected_report() {
    let mut stems: Vec<String> = std::fs::read_dir(fixture_dir())
        .expect("tests/diff exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter_map(|p| {
            let name = p.file_name()?.to_str()?;
            name.strip_suffix(".old.pads").map(str::to_owned)
        })
        .collect();
    stems.sort();
    assert!(!stems.is_empty(), "no diff fixtures found");
    for stem in &stems {
        let dir = fixture_dir();
        let report =
            diff_files(&dir.join(format!("{stem}.old.pads")), &dir.join(format!("{stem}.new.pads")));
        let expected_path = dir.join(format!("{stem}.expected"));
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("{} missing", expected_path.display()));
        assert_eq!(
            report.render().trim(),
            expected.trim(),
            "fixture {stem} produced a different report"
        );
    }
}

#[test]
fn required_scenarios_have_the_required_verdicts() {
    let dir = fixture_dir();
    let verdict = |stem: &str| {
        diff_files(&dir.join(format!("{stem}.old.pads")), &dir.join(format!("{stem}.new.pads")))
            .verdict()
    };
    assert_eq!(verdict("add_opt_field"), Verdict::Compatible);
    assert_eq!(verdict("widen_range"), Verdict::Widens);
    assert_eq!(verdict("remove_union_arm"), Verdict::Breaks);
    assert_eq!(verdict("reorder_fields"), Verdict::Breaks);
}

#[test]
fn bundled_descriptions_are_self_compatible() {
    // The hot-reload contract's identity case: every shipped description
    // diffed against itself is finding-free. CI runs the same loop through
    // the CLI (`pads diff d d`).
    let reg = Registry::standard();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../descriptions");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("descriptions dir exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|x| x != "pads") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("description readable");
        let schema = pads_check::compile(&src, &reg).expect("description compiles");
        let report = diff_schemas(&schema, &schema);
        assert!(
            report.findings.is_empty(),
            "{} is not self-compatible: {:?}",
            path.display(),
            report.findings
        );
        assert_eq!(report.verdict(), Verdict::Compatible);
        seen += 1;
    }
    assert_eq!(seen, 3, "clf, sirius, mixed");
}
