//! First-set and nullability analysis, plus the ambiguity lints built on
//! it (`PL001`–`PL004`).
//!
//! For every type in a checked schema the pass computes [`TypeFacts`]:
//!
//! * `first` — a superset of the bytes a successful non-empty match can
//!   start with (in the decoded/logical byte domain);
//! * `precise` — whether `first` is *exactly* the admissible set, which is
//!   what lets a shadowing claim be sound at the first-byte level;
//! * `null` — whether the type can succeed without consuming input;
//! * `may_reject` — whether a semantic constraint anywhere inside the type
//!   can reject a syntactically valid match.
//!
//! Types are declared before use, so one bottom-up sweep in declaration
//! order suffices (the language has no recursion to fix-point over).

use pads_syntax::ast::{CaseLabel, Expr, Literal};

use crate::ir::{BranchIr, MemberIr, Schema, TypeId, TypeKind, TyUse};
use crate::lint::{const_fold, Const, Diagnostics};

/// A set of byte values, one bit per value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteSet([u64; 4]);

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet([0; 4]);
    /// Every byte value.
    pub const ALL: ByteSet = ByteSet([u64::MAX; 4]);

    /// Inserts one byte.
    pub fn insert(&mut self, b: u8) {
        self.0[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Whether `b` is in the set.
    pub fn contains(self, b: u8) -> bool {
        self.0[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Set union.
    pub fn union(self, other: ByteSet) -> ByteSet {
        ByteSet([
            self.0[0] | other.0[0],
            self.0[1] | other.0[1],
            self.0[2] | other.0[2],
            self.0[3] | other.0[3],
        ])
    }

    /// Whether the sets share any byte.
    pub fn intersects(self, other: ByteSet) -> bool {
        (0..4).any(|i| self.0[i] & other.0[i] != 0)
    }

    /// Whether every byte of `self` is in `other`.
    pub fn is_subset(self, other: ByteSet) -> bool {
        (0..4).all(|i| self.0[i] & !other.0[i] == 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == [0; 4]
    }

    /// A set from explicit byte values.
    pub fn of(bytes: &[u8]) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        for &b in bytes {
            s.insert(b);
        }
        s
    }

    /// ASCII decimal digits.
    pub fn digits() -> ByteSet {
        ByteSet::of(b"0123456789")
    }

    /// ASCII letters, digits, and `-` (hostname label bytes).
    pub fn alnum_dash() -> ByteSet {
        let mut s = ByteSet::digits();
        for b in b'a'..=b'z' {
            s.insert(b);
        }
        for b in b'A'..=b'Z' {
            s.insert(b);
        }
        s.insert(b'-');
        s
    }

    /// All bytes except `b`.
    pub fn all_except(b: u8) -> ByteSet {
        let mut s = ByteSet::ALL;
        s.0[(b >> 6) as usize] &= !(1u64 << (b & 63));
        s
    }

    /// A short human-readable description of the set for diagnostics.
    pub fn describe(self) -> String {
        if self == ByteSet::ALL {
            return "any byte".to_owned();
        }
        if self.is_empty() {
            return "no byte".to_owned();
        }
        let listed: Vec<u8> = (0u16..=255).map(|b| b as u8).filter(|&b| self.contains(b)).collect();
        if listed.len() > 12 {
            return format!("{} byte values", listed.len());
        }
        let parts: Vec<String> = listed
            .iter()
            .map(|&b| match b {
                0x21..=0x7E => format!("'{}'", b as char),
                b' ' => "' '".to_owned(),
                other => format!("0x{other:02x}"),
            })
            .collect();
        parts.join(", ")
    }
}

/// Whether a type can succeed without consuming any input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullability {
    /// Every successful match consumes at least one byte.
    NonEmpty,
    /// The type provably accepts the empty input.
    MaybeEmpty,
    /// The analysis cannot tell (opaque base type, non-constant width, …).
    Unknown,
}

/// The analysis result for one type (or type use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeFacts {
    /// Superset of admissible first bytes of non-empty matches.
    pub first: ByteSet,
    /// Whether `first` is exact rather than an over-approximation.
    pub precise: bool,
    /// Whether the type can match empty input.
    pub null: Nullability,
    /// Whether a constraint inside the type can reject a syntactic match.
    pub may_reject: bool,
}

impl TypeFacts {
    fn unknown() -> TypeFacts {
        TypeFacts {
            first: ByteSet::ALL,
            precise: false,
            null: Nullability::Unknown,
            may_reject: true,
        }
    }

    fn non_empty(first: ByteSet, precise: bool) -> TypeFacts {
        TypeFacts { first, precise, null: Nullability::NonEmpty, may_reject: false }
    }

    /// An always-succeeding, nothing-consuming match (`Pvoid`).
    fn void() -> TypeFacts {
        TypeFacts {
            first: ByteSet::EMPTY,
            precise: true,
            null: Nullability::MaybeEmpty,
            may_reject: false,
        }
    }
}

/// Per-[`TypeId`] facts for a whole schema.
#[derive(Debug, Clone)]
pub struct Facts {
    by_id: Vec<TypeFacts>,
}

impl Facts {
    /// Runs the analysis over every declaration, in order.
    pub fn compute(schema: &Schema) -> Facts {
        let mut by_id: Vec<TypeFacts> = Vec::with_capacity(schema.types.len());
        for def in &schema.types {
            let mut f = kind_facts(schema, &by_id, &def.kind);
            if def.where_clause.is_some() {
                f.may_reject = true;
                f.precise = false;
            }
            by_id.push(f);
        }
        Facts { by_id }
    }

    /// Facts for a declared type.
    pub fn of(&self, id: TypeId) -> TypeFacts {
        self.by_id.get(id).copied().unwrap_or_else(TypeFacts::unknown)
    }

    /// Facts for a resolved type use.
    pub fn of_tyuse(&self, ty: &TyUse) -> TypeFacts {
        tyuse_facts(&self.by_id, ty)
    }
}

/// The first byte of a literal match, and whether matching it consumes
/// input.
pub(crate) fn literal_facts(lit: &Literal) -> TypeFacts {
    match lit {
        Literal::Char(b) => TypeFacts::non_empty(ByteSet::of(&[*b]), true),
        Literal::Str(s) => match s.as_bytes().first() {
            Some(&b) => TypeFacts::non_empty(ByteSet::of(&[b]), true),
            None => TypeFacts::unknown(), // rejected by the checker anyway
        },
        Literal::Regex(pat) => {
            let nullable = pads_regex::Regex::new(pat)
                .map(|re| re.match_at(b"", 0).is_some())
                .unwrap_or(true);
            TypeFacts {
                first: ByteSet::ALL,
                precise: false,
                null: if nullable { Nullability::MaybeEmpty } else { Nullability::NonEmpty },
                may_reject: false,
            }
        }
        // Peor consumes the record boundary in most disciplines but can
        // match zero-width at end of input; Peof is always zero-width.
        Literal::Eor => TypeFacts {
            first: ByteSet::ALL,
            precise: false,
            null: Nullability::Unknown,
            may_reject: false,
        },
        Literal::Eof => TypeFacts::void(),
    }
}

/// A type argument folded to a constant integer, if it is one.
fn const_arg(args: &[Expr], i: usize) -> Option<i64> {
    args.get(i).and_then(const_fold).and_then(Const::as_int)
}

/// Facts for a base-type reference, keyed on the standard registry's
/// names. Unknown (user-registered) names get fully conservative facts.
pub(crate) fn base_facts(name: &str, args: &[Expr]) -> TypeFacts {
    // The integer families share shapes across coding prefixes.
    if let Some(rest) = name.strip_prefix("Pb_") {
        // Binary integers: fixed byte width, any first byte.
        if rest.starts_with("int") || rest.starts_with("uint") {
            return TypeFacts::non_empty(ByteSet::ALL, true);
        }
    }
    for prefix in ["Pa_", "Pe_", "P"] {
        if let Some(rest) = name.strip_prefix(prefix) {
            let (signed, rest) = match rest.strip_prefix("uint") {
                Some(r) => (false, r),
                None => match rest.strip_prefix("int") {
                    Some(r) => (true, r),
                    None => continue,
                },
            };
            let (bits, fixed) = match rest.strip_suffix("_FW") {
                Some(b) => (b, true),
                None => (rest, false),
            };
            if !matches!(bits, "8" | "16" | "32" | "64") {
                continue;
            }
            if fixed {
                // Fixed-width text ints consume exactly `width` bytes;
                // zoned/padded forms make the first byte hard to pin down.
                return match const_arg(args, 0) {
                    Some(w) if w > 0 => TypeFacts::non_empty(ByteSet::ALL, false),
                    Some(_) => TypeFacts::unknown(),
                    None => TypeFacts {
                        first: ByteSet::ALL,
                        precise: false,
                        null: Nullability::Unknown,
                        may_reject: false,
                    },
                };
            }
            // Variable-width ASCII ints start with a digit (or sign).
            // EBCDIC digits live at different byte values; stay imprecise
            // there but keep the progress guarantee.
            let ascii = prefix != "Pe_";
            let mut first = ByteSet::digits();
            if signed {
                first.insert(b'-');
                first.insert(b'+');
            }
            return if ascii {
                TypeFacts::non_empty(first, true)
            } else {
                TypeFacts::non_empty(ByteSet::ALL, false)
            };
        }
    }
    match name {
        "Pvoid" => TypeFacts::void(),
        "Pchar" | "Pa_char" | "Pe_char" => TypeFacts::non_empty(ByteSet::ALL, true),
        "Pip" => TypeFacts::non_empty(ByteSet::digits(), true),
        "Phostname" => TypeFacts::non_empty(ByteSet::alnum_dash(), true),
        "Pzip" => TypeFacts::non_empty(ByteSet::digits(), true),
        "Pdate" => TypeFacts::non_empty(ByteSet::ALL, false),
        "Pfloat32" | "Pfloat64" => TypeFacts::non_empty(ByteSet::ALL, false),
        "Pstring" => {
            // Terminated string: may be empty; a non-empty match cannot
            // start with its (constant) terminator.
            let first = match args.first() {
                Some(Expr::Char(c)) => ByteSet::all_except(*c),
                _ => ByteSet::ALL,
            };
            TypeFacts {
                first,
                precise: matches!(args.first(), Some(Expr::Char(_))),
                null: Nullability::MaybeEmpty,
                may_reject: false,
            }
        }
        "Pstring_FW" => match const_arg(args, 0) {
            Some(w) if w > 0 => TypeFacts::non_empty(ByteSet::ALL, false),
            Some(_) => TypeFacts {
                first: ByteSet::EMPTY,
                precise: false,
                null: Nullability::MaybeEmpty,
                may_reject: false,
            },
            None => TypeFacts {
                first: ByteSet::ALL,
                precise: false,
                null: Nullability::Unknown,
                may_reject: false,
            },
        },
        "Pstring_ME" | "Pstring_SE" => {
            let nullable = match args.first() {
                Some(Expr::Str(pat)) => pads_regex::Regex::new(pat)
                    .map(|re| re.match_at(b"", 0).is_some())
                    .unwrap_or(true),
                _ => true,
            };
            TypeFacts {
                first: ByteSet::ALL,
                precise: false,
                null: if nullable { Nullability::MaybeEmpty } else { Nullability::NonEmpty },
                may_reject: false,
            }
        }
        "Pbits" | "Pebc_zoned" | "Ppacked" => match const_arg(args, 0) {
            Some(w) if w > 0 => TypeFacts::non_empty(ByteSet::ALL, false),
            _ => TypeFacts {
                first: ByteSet::ALL,
                precise: false,
                null: Nullability::Unknown,
                may_reject: false,
            },
        },
        _ => TypeFacts::unknown(),
    }
}

fn tyuse_facts(by_id: &[TypeFacts], ty: &TyUse) -> TypeFacts {
    match ty {
        TyUse::Base { name, args } => base_facts(name, args),
        TyUse::Named { id, .. } => {
            by_id.get(*id).copied().unwrap_or_else(TypeFacts::unknown)
        }
        TyUse::Opt(inner) => {
            let f = tyuse_facts(by_id, inner);
            // `Popt T` succeeds with nothing when T fails.
            TypeFacts { null: Nullability::MaybeEmpty, may_reject: false, ..f }
        }
    }
}

fn kind_facts(schema: &Schema, by_id: &[TypeFacts], kind: &TypeKind) -> TypeFacts {
    match kind {
        TypeKind::Struct { members } => {
            let mut first = ByteSet::EMPTY;
            let mut precise = true;
            let mut null = Nullability::MaybeEmpty; // empty struct so far
            let mut may_reject = false;
            for m in members {
                let f = match m {
                    MemberIr::Lit(l) => literal_facts(l),
                    MemberIr::Field(fl) => {
                        let mut f = tyuse_facts(by_id, &fl.ty);
                        if fl.constraint.is_some() {
                            f.may_reject = true;
                        }
                        f
                    }
                };
                may_reject |= f.may_reject;
                if null != Nullability::NonEmpty {
                    // This member can still supply the struct's first byte.
                    first = first.union(f.first);
                    precise &= f.precise;
                }
                null = match (null, f.null) {
                    (Nullability::NonEmpty, _) | (_, Nullability::NonEmpty) => {
                        Nullability::NonEmpty
                    }
                    (Nullability::MaybeEmpty, Nullability::MaybeEmpty) => Nullability::MaybeEmpty,
                    _ => Nullability::Unknown,
                };
            }
            TypeFacts { first, precise, null, may_reject }
        }
        TypeKind::Union { branches, .. } => {
            let mut first = ByteSet::EMPTY;
            let mut precise = true;
            let mut null = Nullability::NonEmpty;
            let mut may_reject = false;
            for b in branches {
                let f = branch_facts(by_id, b);
                first = first.union(f.first);
                precise &= f.precise;
                may_reject |= f.may_reject;
                null = match (null, f.null) {
                    (Nullability::MaybeEmpty, _) | (_, Nullability::MaybeEmpty) => {
                        Nullability::MaybeEmpty
                    }
                    (Nullability::Unknown, _) | (_, Nullability::Unknown) => Nullability::Unknown,
                    _ => Nullability::NonEmpty,
                };
            }
            TypeFacts { first, precise, null, may_reject }
        }
        TypeKind::Array { elem, term, size, .. } => {
            let ef = tyuse_facts(by_id, elem);
            let mut first = ef.first;
            let mut precise = ef.precise;
            // A literal terminator is consumed even by an empty sequence,
            // so it both contributes first bytes and — when it cannot match
            // empty input — forces consumption. A nullable regex terminator
            // (`Pre "a*"`) consumes nothing on empty sequences, so it must
            // not promote the array to `NonEmpty`.
            let term_lit = matches!(term, Some(Literal::Char(_) | Literal::Str(_) | Literal::Regex(_)));
            let mut term_null = Nullability::MaybeEmpty;
            if term_lit {
                if let Some(t) = term {
                    let tf = literal_facts(t);
                    first = first.union(tf.first);
                    precise &= tf.precise;
                    term_null = tf.null;
                }
            }
            let min_size = size.as_ref().and_then(const_fold).and_then(Const::as_int);
            let null = if term_null == Nullability::NonEmpty {
                Nullability::NonEmpty
            } else {
                match (min_size, ef.null) {
                    (Some(n), Nullability::NonEmpty) if n > 0 => Nullability::NonEmpty,
                    _ => Nullability::MaybeEmpty,
                }
            };
            TypeFacts { first, precise, null, may_reject: ef.may_reject }
        }
        TypeKind::Enum { variants } => {
            let mut first = ByteSet::EMPTY;
            for v in variants {
                if let Some(&b) = v.as_bytes().first() {
                    first.insert(b);
                }
            }
            TypeFacts::non_empty(first, true)
        }
        TypeKind::Typedef { base, pred, .. } => {
            let mut f = tyuse_facts(by_id, base);
            if pred.is_some() {
                f.may_reject = true;
                // The predicate may exclude some first bytes, so the set
                // is no longer exact.
                f.precise = false;
            }
            let _ = schema;
            f
        }
    }
}

fn branch_facts(by_id: &[TypeFacts], b: &BranchIr) -> TypeFacts {
    let mut f = tyuse_facts(by_id, &b.field.ty);
    if b.field.constraint.is_some() {
        f.may_reject = true;
        f.precise = false;
    }
    f
}

/// Whether an arm always succeeds: it can match empty input and nothing
/// inside it can semantically reject.
fn always_succeeds(f: TypeFacts) -> bool {
    f.null == Nullability::MaybeEmpty && !f.may_reject
}

/// The ambiguity lints: `PL001` (shadowed arm), `PL002` (duplicate case),
/// `PL003` (missing default), `PL004` (`Popt` that is always present).
pub(crate) fn lint_ambiguity(schema: &Schema, facts: &Facts, diags: &mut Diagnostics) {
    for def in &schema.types {
        match &def.kind {
            TypeKind::Union { switch: None, branches } => {
                lint_ordered_union(schema, facts, &def.name, branches, diags);
            }
            TypeKind::Union { switch: Some(_), branches } => {
                lint_switched_union(&def.name, branches, def.span, diags);
            }
            _ => {}
        }
        // Popt uses anywhere in the body.
        for (ty, span) in opt_uses(def) {
            let inner = facts.of_tyuse(ty);
            if always_succeeds(inner) {
                diags.push(
                    "PL004",
                    span,
                    "`Popt` of a type that can match empty input is always present",
                    Some(
                        "the absent case can never be taken; drop the `Popt` or constrain \
                         the inner type"
                            .to_owned(),
                    ),
                );
            }
        }
    }
}

/// Every `Popt`-wrapped inner type use in a definition, with a span.
fn opt_uses(def: &crate::ir::TypeDef) -> Vec<(&TyUse, pads_syntax::Span)> {
    fn visit<'a>(
        ty: &'a TyUse,
        span: pads_syntax::Span,
        out: &mut Vec<(&'a TyUse, pads_syntax::Span)>,
    ) {
        if let TyUse::Opt(inner) = ty {
            out.push((unbox_opt(inner), span));
        }
    }
    let mut out = Vec::new();
    match &def.kind {
        TypeKind::Struct { members } => {
            for m in members {
                if let MemberIr::Field(f) = m {
                    visit(&f.ty, f.span, &mut out);
                }
            }
        }
        TypeKind::Union { branches, .. } => {
            for b in branches {
                visit(&b.field.ty, b.field.span, &mut out);
            }
        }
        TypeKind::Array { elem, .. } => visit(elem, def.span, &mut out),
        TypeKind::Typedef { base, .. } => visit(base, def.span, &mut out),
        TypeKind::Enum { .. } => {}
    }
    out
}

/// Strips nested `Popt` layers to the innermost use.
fn unbox_opt(ty: &TyUse) -> &TyUse {
    match ty {
        TyUse::Opt(inner) => unbox_opt(inner),
        other => other,
    }
}

fn lint_ordered_union(
    schema: &Schema,
    facts: &Facts,
    union_name: &str,
    branches: &[BranchIr],
    diags: &mut Diagnostics,
) {
    let _ = schema;
    let branch_facts: Vec<TypeFacts> =
        branches.iter().map(|b| branch_facts(&facts.by_id, b)).collect();
    for (i, (bi, fi)) in branches.iter().zip(&branch_facts).enumerate() {
        // PL201 handles always-succeeding earlier arms; here we only look
        // at first-byte shadowing of specific later arms.
        if bi.field.constraint.is_some() || !fi.precise || fi.null != Nullability::NonEmpty {
            continue;
        }
        for (bj, fj) in branches.iter().zip(&branch_facts).skip(i + 1) {
            if fj.first.is_empty() || !fj.first.is_subset(fi.first) {
                continue;
            }
            diags.push(
                "PL001",
                bj.field.span,
                format!(
                    "arm `{}` of union `{union_name}` is shadowed by earlier arm `{}`: \
                     every input it accepts starts with {} already admissible there",
                    bj.field.name,
                    bi.field.name,
                    fj.first.describe(),
                ),
                Some(format!(
                    "move `{}` before `{}`, or add a constraint that distinguishes them",
                    bj.field.name, bi.field.name
                )),
            );
            break; // one shadow report per arm is enough
        }
    }
}

fn lint_switched_union(
    union_name: &str,
    branches: &[BranchIr],
    union_span: pads_syntax::Span,
    diags: &mut Diagnostics,
) {
    let mut seen: Vec<(i64, &str)> = Vec::new();
    let mut has_default = false;
    for b in branches {
        match &b.case {
            Some(CaseLabel::Default) => has_default = true,
            Some(CaseLabel::Expr(e)) => {
                if let Some(v) = const_fold(e).and_then(Const::as_int) {
                    if let Some((_, prev)) = seen.iter().find(|(x, _)| *x == v) {
                        diags.push(
                            "PL002",
                            b.field.span,
                            format!(
                                "duplicate `Pcase {v}` in union `{union_name}`: \
                                 already handled by arm `{prev}`"
                            ),
                            Some(format!(
                                "remove arm `{}` or change its case value",
                                b.field.name
                            )),
                        );
                    } else {
                        seen.push((v, &b.field.name));
                    }
                }
            }
            None => {}
        }
    }
    if !has_default {
        diags.push(
            "PL003",
            union_span,
            format!(
                "switched union `{union_name}` has no `Pdefault` arm: selector values \
                 outside its cases make the whole union fail"
            ),
            Some("add a `Pdefault: Pvoid other;` arm (or cover every selector value)".to_owned()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::Registry;

    fn facts_for(src: &str) -> (Schema, Facts) {
        let schema = crate::compile(src, &Registry::standard()).expect("compiles");
        let facts = Facts::compute(&schema);
        (schema, facts)
    }

    #[test]
    fn byteset_basics() {
        let d = ByteSet::digits();
        assert!(d.contains(b'0') && d.contains(b'9') && !d.contains(b'a'));
        assert!(d.is_subset(ByteSet::alnum_dash()));
        assert!(!ByteSet::alnum_dash().is_subset(d));
        assert!(d.intersects(ByteSet::alnum_dash()));
        assert!(!d.intersects(ByteSet::of(b" |")));
        assert_eq!(ByteSet::of(b"ab").describe(), "'a', 'b'");
        assert_eq!(ByteSet::ALL.describe(), "any byte");
    }

    #[test]
    fn struct_facts_chain_through_nullable_members() {
        // Pstring can be empty, so the literal supplies progress and the
        // first set unions both.
        let (schema, facts) = facts_for(
            "Pstruct t { Pstring(:'|':) s; '|'; Puint8 n; };",
        );
        let f = facts.of(schema.source());
        assert_eq!(f.null, Nullability::NonEmpty);
        assert!(f.first.contains(b'a') && f.first.contains(b'|'));
    }

    #[test]
    fn int_first_sets_are_signed_aware() {
        let u = base_facts("Puint32", &[]);
        assert!(u.precise && !u.first.contains(b'-'));
        let i = base_facts("Pint32", &[]);
        assert!(i.precise && i.first.contains(b'-'));
        assert_eq!(u.null, Nullability::NonEmpty);
    }

    #[test]
    fn shadowed_arm_is_flagged() {
        let (schema, facts) = facts_for(
            "Punion u_t { Phostname host; Pip ip; };",
        );
        let mut diags = Diagnostics::default();
        lint_ambiguity(&schema, &facts, &mut diags);
        let d: Vec<_> = diags.iter().collect();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "PL001");
        assert!(d[0].message.contains("`ip`"));
    }

    #[test]
    fn clf_style_unions_are_clean() {
        // ip-before-hostname (the paper's order) and a constrained first
        // arm must not warn.
        let (schema, facts) = facts_for(
            r#"
            Punion client_t { Pip ip; Phostname host; };
            Punion auth_id_t {
                Pchar unauthorized : unauthorized == '-';
                Pstring(:' ':) id;
            };
            Pstruct t { client_t c; ' '; auth_id_t a; };
            "#,
        );
        let mut diags = Diagnostics::default();
        lint_ambiguity(&schema, &facts, &mut diags);
        assert_eq!(diags.iter().count(), 0, "{:?}", diags.iter().collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_case_and_missing_default() {
        let (schema, facts) = facts_for(
            r#"
            Punion u_t (:Puint8 k:) Pswitch(k) {
                Pcase 1: Puint32 a;
                Pcase 1: Pstring(:'|':) b;
            };
            Pstruct t { Puint8 k; u_t(:k:) u; };
            "#,
        );
        let mut diags = Diagnostics::default();
        lint_ambiguity(&schema, &facts, &mut diags);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"PL002"), "{codes:?}");
        assert!(codes.contains(&"PL003"), "{codes:?}");
    }

    #[test]
    fn popt_of_nullable_type_is_flagged() {
        let (schema, facts) = facts_for(
            "Pstruct t { Popt Pstring(:'|':) s; '|'; Puint8 n; };",
        );
        let mut diags = Diagnostics::default();
        lint_ambiguity(&schema, &facts, &mut diags);
        assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["PL004"]);
    }
}
