//! Abstract interpretation over checked schemas: byte-width intervals,
//! integer value-range intervals, and follow sets.
//!
//! Where [`super::firstset`] answers "which byte can a match *start*
//! with", this pass answers three complementary questions for every
//! declared type:
//!
//! * **Width** ([`WidthInterval`]) — how many bytes can a *successful*
//!   parse consume, as a `[min, max]` interval with `max = None` meaning
//!   unbounded (⊤). Record framing (the trailing record boundary) is not
//!   counted; the interval describes the type's body.
//! * **Value** ([`ValueInterval`]) — for integer-valued types, which
//!   values can a successful parse produce, refined through `Pwhere` and
//!   typedef constraints. `exact` records whether every conjunct of the
//!   constraint was understood; emptiness claims stay sound either way
//!   because refinement only ever intersects with *recognised* conjuncts
//!   (a superset of the satisfiable set).
//! * **Follow** ([`FollowFacts`]) — which bytes may legally appear right
//!   after the type, gathered from every use site. The complement of the
//!   first-set machinery: first sets look into a type, follow sets look
//!   past it.
//!
//! Types are declared before use, so widths and values need one forward
//! sweep and follow sets one reverse sweep — no fixpoint iteration.
//!
//! Consumers: the `PL3xx` lints ([`super::width`]), the schema-evolution
//! checker ([`crate::diff`]), and the code generator's fixed-width-prefix
//! fast path.

use pads_syntax::ast::{BinOp, Expr, Literal};

use crate::ir::{MemberIr, Schema, TypeId, TypeKind, TyUse};
use crate::lint::firstset::{self, ByteSet, Facts, Nullability};
use crate::lint::{const_fold, Const};

/// How many bytes a successful parse consumes: `[min, max]`, with
/// `max = None` for unbounded (⊤).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthInterval {
    /// Fewest bytes any successful parse consumes.
    pub min: u64,
    /// Most bytes any successful parse consumes; `None` is unbounded.
    pub max: Option<u64>,
}

impl WidthInterval {
    /// The unbounded interval `[0, ⊤]`.
    pub const TOP: WidthInterval = WidthInterval { min: 0, max: None };

    /// Exactly `n` bytes.
    pub fn exact(n: u64) -> WidthInterval {
        WidthInterval { min: n, max: Some(n) }
    }

    /// `[min, max]` with both bounds known.
    pub fn new(min: u64, max: u64) -> WidthInterval {
        WidthInterval { min, max: Some(max) }
    }

    /// `[min, ⊤]`.
    pub fn at_least(min: u64) -> WidthInterval {
        WidthInterval { min, max: None }
    }

    /// The fixed width, when `min == max`.
    pub fn as_fixed(self) -> Option<u64> {
        match self.max {
            Some(mx) if mx == self.min => Some(mx),
            _ => None,
        }
    }

    /// Sequential composition: widths add.
    pub fn then(self, other: WidthInterval) -> WidthInterval {
        WidthInterval {
            min: self.min.saturating_add(other.min),
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            },
        }
    }

    /// Alternation: the interval hull.
    pub fn hull(self, other: WidthInterval) -> WidthInterval {
        WidthInterval {
            min: self.min.min(other.min),
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// `n` repetitions.
    pub fn repeat(self, n: u64) -> WidthInterval {
        WidthInterval {
            min: self.min.saturating_mul(n),
            max: self.max.and_then(|m| m.checked_mul(n)),
        }
    }

    /// Whether every successful parse consumes at least one byte.
    pub fn nonzero(self) -> bool {
        self.min >= 1
    }

    /// Renders as `[min, max]` or `[min, ⊤]`.
    pub fn describe(self) -> String {
        match self.max {
            Some(mx) => format!("[{}, {}]", self.min, mx),
            None => format!("[{}, ⊤]", self.min),
        }
    }
}

/// An inclusive integer value range, with a flag recording whether the
/// refinement understood every conjunct of the constraint it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueInterval {
    /// Smallest producible value.
    pub lo: i128,
    /// Largest producible value.
    pub hi: i128,
    /// Whether every constraint conjunct was recognised (interval is the
    /// true range, not just a sound superset).
    pub exact: bool,
}

impl ValueInterval {
    /// `[lo, hi]`, exact.
    pub fn new(lo: i128, hi: i128) -> ValueInterval {
        ValueInterval { lo, hi, exact: true }
    }

    /// Whether no value satisfies the interval.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether `self` contains every value of `other`.
    pub fn contains(self, other: ValueInterval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection (exactness intersects too).
    pub fn intersect(self, other: ValueInterval) -> ValueInterval {
        ValueInterval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
            exact: self.exact && other.exact,
        }
    }

    /// Renders as `[lo, hi]` (with `~` marking inexact refinements).
    pub fn describe(self) -> String {
        let approx = if self.exact { "" } else { "~" };
        format!("{approx}[{}, {}]", self.lo, self.hi)
    }
}

/// Bytes that may legally follow a type, unioned over its use sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowFacts {
    /// Superset of bytes that can appear immediately after the type.
    pub set: ByteSet,
    /// Whether `set` is exact rather than an over-approximation.
    pub precise: bool,
    /// Whether the type can be followed by a record/source boundary.
    pub at_end: bool,
}

impl FollowFacts {
    fn empty() -> FollowFacts {
        FollowFacts { set: ByteSet::EMPTY, precise: true, at_end: false }
    }

    fn merge(&mut self, other: FollowFacts) {
        self.set = self.set.union(other.set);
        self.precise &= other.precise;
        self.at_end |= other.at_end;
    }
}

/// The per-type fact database: widths, value ranges, and follow sets.
#[derive(Debug, Clone)]
pub struct SemFacts {
    widths: Vec<WidthInterval>,
    values: Vec<Option<ValueInterval>>,
    follows: Vec<FollowFacts>,
}

impl SemFacts {
    /// Computes every fact for a checked schema: one forward sweep for
    /// widths and values, one reverse sweep for follow sets.
    pub fn compute(schema: &Schema, firsts: &Facts) -> SemFacts {
        let mut widths: Vec<WidthInterval> = Vec::with_capacity(schema.types.len());
        let mut values: Vec<Option<ValueInterval>> = Vec::with_capacity(schema.types.len());
        for def in &schema.types {
            let w = kind_width(&widths, &def.kind);
            let v = kind_value(&values, &def.kind);
            widths.push(w);
            values.push(v);
        }
        let follows = compute_follows(schema, firsts);
        SemFacts { widths, values, follows }
    }

    /// Width interval of a declared type.
    pub fn width_of(&self, id: TypeId) -> WidthInterval {
        self.widths.get(id).copied().unwrap_or(WidthInterval::TOP)
    }

    /// Width interval of a resolved type use.
    pub fn width_of_tyuse(&self, ty: &TyUse) -> WidthInterval {
        tyuse_width(&self.widths, ty)
    }

    /// Value interval of a declared type (integer-valued types only).
    pub fn value_of(&self, id: TypeId) -> Option<ValueInterval> {
        self.values.get(id).copied().flatten()
    }

    /// Value interval of a resolved type use.
    pub fn value_of_tyuse(&self, ty: &TyUse) -> Option<ValueInterval> {
        tyuse_value(&self.values, ty)
    }

    /// Follow facts of a declared type.
    pub fn follow_of(&self, id: TypeId) -> FollowFacts {
        self.follows
            .get(id)
            .copied()
            .unwrap_or(FollowFacts { set: ByteSet::ALL, precise: false, at_end: true })
    }
}

/// A type argument folded to a constant integer, if it is one.
fn const_arg(args: &[Expr], i: usize) -> Option<i64> {
    args.get(i).and_then(const_fold).and_then(Const::as_int)
}

/// Width of a data literal match.
pub(crate) fn lit_width(lit: &Literal) -> WidthInterval {
    match lit {
        Literal::Char(_) => WidthInterval::exact(1),
        Literal::Str(s) => WidthInterval::exact(s.len() as u64),
        Literal::Regex(pat) => {
            let nullable = pads_regex::Regex::new(pat)
                .map(|re| re.match_at(b"", 0).is_some())
                .unwrap_or(true);
            WidthInterval::at_least(u64::from(!nullable))
        }
        // Peor consumes the boundary byte except at end of input.
        Literal::Eor => WidthInterval::new(0, 1),
        Literal::Eof => WidthInterval::exact(0),
    }
}

/// Width of a base-type reference, keyed on the standard registry names.
pub(crate) fn base_width(name: &str, args: &[Expr]) -> WidthInterval {
    if let Some(rest) = name.strip_prefix("Pb_") {
        // Binary integers: exactly bits/8 bytes.
        for (bits, bytes) in [("8", 1u64), ("16", 2), ("32", 4), ("64", 8)] {
            if rest == format!("int{bits}") || rest == format!("uint{bits}") {
                return WidthInterval::exact(bytes);
            }
        }
    }
    for prefix in ["Pa_", "Pe_", "P"] {
        if let Some(rest) = name.strip_prefix(prefix) {
            let (signed, rest) = match rest.strip_prefix("uint") {
                Some(r) => (false, r),
                None => match rest.strip_prefix("int") {
                    Some(r) => (true, r),
                    None => continue,
                },
            };
            let (bits, fixed) = match rest.strip_suffix("_FW") {
                Some(b) => (b, true),
                None => (rest, false),
            };
            if !matches!(bits, "8" | "16" | "32" | "64") {
                continue;
            }
            if fixed {
                return match const_arg(args, 0) {
                    Some(w) if w >= 0 => WidthInterval::exact(w as u64),
                    _ => WidthInterval::TOP,
                };
            }
            // Variable-width text ints: at least one digit, but leading
            // zeros make the maximum unbounded.
            let _ = signed;
            return WidthInterval::at_least(1);
        }
    }
    match name {
        "Pvoid" => WidthInterval::exact(0),
        "Pchar" | "Pa_char" | "Pe_char" => WidthInterval::exact(1),
        // "0.0.0.0" through "255.255.255.255".
        "Pip" => WidthInterval::new(7, 15),
        "Phostname" | "Pdate" | "Pfloat32" | "Pfloat64" => WidthInterval::at_least(1),
        "Pzip" => WidthInterval::at_least(1),
        // Terminated string: anything up to the terminator, possibly empty.
        "Pstring" => WidthInterval::TOP,
        "Pstring_FW" => match const_arg(args, 0) {
            Some(w) if w >= 0 => WidthInterval::exact(w as u64),
            _ => WidthInterval::TOP,
        },
        "Pstring_ME" | "Pstring_SE" => {
            let nullable = match args.first() {
                Some(Expr::Str(pat)) => pads_regex::Regex::new(pat)
                    .map(|re| re.match_at(b"", 0).is_some())
                    .unwrap_or(true),
                _ => true,
            };
            WidthInterval::at_least(u64::from(!nullable))
        }
        _ => WidthInterval::TOP,
    }
}

fn tyuse_width(widths: &[WidthInterval], ty: &TyUse) -> WidthInterval {
    match ty {
        TyUse::Base { name, args } => base_width(name, args),
        TyUse::Named { id, .. } => widths.get(*id).copied().unwrap_or(WidthInterval::TOP),
        TyUse::Opt(inner) => {
            let w = tyuse_width(widths, inner);
            WidthInterval { min: 0, max: w.max }
        }
    }
}

fn kind_width(widths: &[WidthInterval], kind: &TypeKind) -> WidthInterval {
    match kind {
        TypeKind::Struct { members } => {
            let mut w = WidthInterval::exact(0);
            for m in members {
                let mw = match m {
                    MemberIr::Lit(l) => lit_width(l),
                    MemberIr::Field(f) => tyuse_width(widths, &f.ty),
                };
                w = w.then(mw);
            }
            w
        }
        TypeKind::Union { branches, .. } => {
            let mut w: Option<WidthInterval> = None;
            for b in branches {
                let bw = tyuse_width(widths, &b.field.ty);
                w = Some(match w {
                    Some(acc) => acc.hull(bw),
                    None => bw,
                });
            }
            w.unwrap_or(WidthInterval::TOP)
        }
        TypeKind::Array { elem, sep, term, ended, size } => {
            let ew = tyuse_width(widths, elem);
            let sw = sep.as_ref().map(lit_width).unwrap_or(WidthInterval::exact(0));
            let tw = term.as_ref().map(lit_width).unwrap_or(WidthInterval::exact(0));
            match size.as_ref().and_then(const_fold).and_then(Const::as_int) {
                Some(n) if n >= 0 && ended.is_none() => {
                    let n = n as u64;
                    let body = if n == 0 {
                        WidthInterval::exact(0)
                    } else {
                        ew.repeat(n).then(sw.repeat(n - 1))
                    };
                    body.then(tw)
                }
                // An `ended` predicate or an unknown size leaves only the
                // terminator as a lower bound (a literal terminator is
                // consumed even by an empty sequence).
                _ => WidthInterval { min: tw.min, max: None },
            }
        }
        TypeKind::Enum { variants } => {
            let mut w: Option<WidthInterval> = None;
            for v in variants {
                let vw = WidthInterval::exact(v.len() as u64);
                w = Some(match w {
                    Some(acc) => acc.hull(vw),
                    None => vw,
                });
            }
            w.unwrap_or(WidthInterval::exact(0))
        }
        TypeKind::Typedef { base, var, pred } => {
            let mut w = tyuse_width(widths, base);
            // `x != ""` on a string typedef proves non-empty successful
            // matches: a zero-width parse only happens on the error path.
            if let (Some(v), Some(p)) = (var, pred) {
                if w.min == 0 && pred_implies_nonempty(v, p) {
                    w.min = 1;
                }
            }
            w
        }
    }
}

/// Whether a constraint conjunction implies the bound string is non-empty
/// (a `var != ""` conjunct).
fn pred_implies_nonempty(var: &str, pred: &Expr) -> bool {
    match pred {
        Expr::Binary(BinOp::And, a, b) => {
            pred_implies_nonempty(var, a) || pred_implies_nonempty(var, b)
        }
        Expr::Binary(BinOp::Ne, a, b) => {
            matches!((a.as_ref(), b.as_ref()),
                (Expr::Ident(v), Expr::Str(s)) | (Expr::Str(s), Expr::Ident(v))
                    if v == var && s.is_empty())
        }
        _ => false,
    }
}

/// Value range of an integer base type, `None` for non-integer types.
pub(crate) fn base_value(name: &str, args: &[Expr]) -> Option<ValueInterval> {
    if name == "Pchar" || name == "Pa_char" || name == "Pe_char" {
        return Some(ValueInterval::new(0, 255));
    }
    if let Some(rest) = name.strip_prefix("Pb_") {
        return int_family_value(rest, None);
    }
    for prefix in ["Pa_", "Pe_", "P"] {
        if let Some(rest) = name.strip_prefix(prefix) {
            let (bare, fixed) = match rest.strip_suffix("_FW") {
                Some(b) => (b, true),
                None => (rest, false),
            };
            if let Some(iv) = int_family_value(bare, fixed.then(|| const_arg(args, 0)).flatten()) {
                return Some(iv);
            }
        }
    }
    None
}

/// Range of `intN`/`uintN` (optionally fixed-width with `digits` chars).
fn int_family_value(rest: &str, digits: Option<i64>) -> Option<ValueInterval> {
    let (signed, bits) = match rest.strip_prefix("uint") {
        Some(b) => (false, b),
        None => (true, rest.strip_prefix("int")?),
    };
    let bits: u32 = match bits {
        "8" => 8,
        "16" => 16,
        "32" => 32,
        "64" => 64,
        _ => return None,
    };
    let mut iv = if signed {
        ValueInterval::new(-(1i128 << (bits - 1)), (1i128 << (bits - 1)) - 1)
    } else {
        ValueInterval::new(0, (1i128 << bits) - 1)
    };
    // A w-character fixed-width field holds at most w digits, so the
    // magnitude is below 10^w.
    if let Some(w) = digits {
        if (0..=19).contains(&w) {
            let mag = 10i128.pow(w as u32) - 1;
            iv = iv.intersect(ValueInterval::new(if signed { -mag } else { 0 }, mag));
        }
    }
    Some(iv)
}

fn tyuse_value(values: &[Option<ValueInterval>], ty: &TyUse) -> Option<ValueInterval> {
    match ty {
        TyUse::Base { name, args } => base_value(name, args),
        TyUse::Named { id, .. } => values.get(*id).copied().flatten(),
        TyUse::Opt(_) => None,
    }
}

fn kind_value(values: &[Option<ValueInterval>], kind: &TypeKind) -> Option<ValueInterval> {
    match kind {
        TypeKind::Typedef { base, var, pred } => {
            let mut iv = tyuse_value(values, base)?;
            if let Some(p) = pred {
                iv = refine_value(iv, var.as_deref(), p);
            }
            Some(iv)
        }
        // Enums parse to a variant index.
        TypeKind::Enum { variants } => {
            Some(ValueInterval::new(0, variants.len().saturating_sub(1) as i128))
        }
        _ => None,
    }
}

/// Intersects `iv` with every recognised conjunct of `pred` comparing
/// `var` against a constant. Unrecognised conjuncts clear `exact` but are
/// otherwise ignored — sound for emptiness, since dropping a conjunct only
/// widens the result.
pub(crate) fn refine_value(iv: ValueInterval, var: Option<&str>, pred: &Expr) -> ValueInterval {
    let mut out = iv;
    refine_walk(&mut out, var, pred);
    out
}

fn refine_walk(iv: &mut ValueInterval, var: Option<&str>, e: &Expr) {
    match e {
        Expr::Binary(BinOp::And, a, b) => {
            refine_walk(iv, var, a);
            refine_walk(iv, var, b);
        }
        Expr::Binary(op, a, b) => {
            let (cmp, k, flipped) = match (var_side(a, var), var_side(b, var)) {
                (true, false) => match const_fold(b).and_then(Const::as_int) {
                    Some(k) => (*op, k as i128, false),
                    None => return mark_inexact(iv),
                },
                (false, true) => match const_fold(a).and_then(Const::as_int) {
                    Some(k) => (*op, k as i128, true),
                    None => return mark_inexact(iv),
                },
                _ => return mark_inexact(iv),
            };
            // Normalise `k op var` to `var op' k`.
            let cmp = if flipped {
                match cmp {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => other,
                }
            } else {
                cmp
            };
            match cmp {
                BinOp::Eq => *iv = iv.intersect(ValueInterval::new(k, k)),
                BinOp::Lt => *iv = iv.intersect(ValueInterval::new(i128::MIN, k - 1)),
                BinOp::Le => *iv = iv.intersect(ValueInterval::new(i128::MIN, k)),
                BinOp::Gt => *iv = iv.intersect(ValueInterval::new(k + 1, i128::MAX)),
                BinOp::Ge => *iv = iv.intersect(ValueInterval::new(k, i128::MAX)),
                // `!=` punches a hole an interval cannot represent.
                _ => mark_inexact(iv),
            }
        }
        _ => mark_inexact(iv),
    }
}

fn mark_inexact(iv: &mut ValueInterval) {
    iv.exact = false;
}

/// Whether `e` is a bare reference to the constrained value: the bound
/// variable itself, or (when the typedef binds no name) any single
/// identifier.
fn var_side(e: &Expr, var: Option<&str>) -> bool {
    match (e, var) {
        (Expr::Ident(n), Some(v)) => n == v,
        (Expr::Ident(_), None) => true,
        _ => false,
    }
}

/// One reverse sweep: containers are declared after their members, so by
/// the time a definition is visited every one of its use sites has already
/// contributed.
fn compute_follows(schema: &Schema, firsts: &Facts) -> Vec<FollowFacts> {
    let mut follows: Vec<FollowFacts> = vec![FollowFacts::empty(); schema.types.len()];
    // The source type (and every record) ends at a record/source boundary.
    let src = schema.source();
    follows[src].at_end = true;
    for (id, def) in schema.types.iter().enumerate() {
        if def.is_record {
            follows[id].at_end = true;
        }
    }
    for id in (0..schema.types.len()).rev() {
        let here = follows[id];
        let def = schema.def(id);
        match &def.kind {
            TypeKind::Struct { members } => {
                for (i, m) in members.iter().enumerate() {
                    let MemberIr::Field(f) = m else { continue };
                    let Some(target) = named_target(&f.ty) else { continue };
                    let fol = follow_after(schema, firsts, &members[i + 1..], here);
                    follows[target].merge(fol);
                }
            }
            TypeKind::Union { branches, .. } => {
                for b in branches {
                    if let Some(target) = named_target(&b.field.ty) {
                        follows[target].merge(here);
                    }
                }
            }
            TypeKind::Array { elem, sep, term, .. } => {
                if let Some(target) = named_target(elem) {
                    // An element may be followed by the separator, the
                    // terminator, the next element, or whatever follows
                    // the array.
                    let mut fol = here;
                    let ef = firsts.of_tyuse(elem);
                    fol.set = fol.set.union(ef.first);
                    fol.precise &= ef.precise;
                    for l in [sep, term].into_iter().flatten() {
                        let lf = firstset::literal_facts(l);
                        fol.set = fol.set.union(lf.first);
                        fol.precise &= lf.precise;
                        if matches!(l, Literal::Eor | Literal::Eof) {
                            fol.at_end = true;
                        }
                    }
                    follows[target].merge(fol);
                }
            }
            TypeKind::Typedef { base, .. } => {
                if let Some(target) = named_target(base) {
                    follows[target].merge(here);
                }
            }
            TypeKind::Enum { .. } => {}
        }
    }
    follows
}

/// The declared type a use resolves to, looking through `Popt`.
fn named_target(ty: &TyUse) -> Option<TypeId> {
    match ty {
        TyUse::Named { id, .. } => Some(*id),
        TyUse::Opt(inner) => named_target(inner),
        TyUse::Base { .. } => None,
    }
}

/// First bytes of the member chain after an occurrence; falls back to the
/// container's own follow facts when every remaining member can be empty.
pub(crate) fn follow_after(
    schema: &Schema,
    firsts: &Facts,
    rest: &[MemberIr],
    container: FollowFacts,
) -> FollowFacts {
    let _ = schema;
    let mut fol = FollowFacts::empty();
    for m in rest {
        let f = match m {
            MemberIr::Lit(Literal::Eor) => {
                fol.at_end = true;
                return fol;
            }
            MemberIr::Lit(Literal::Eof) => {
                fol.at_end = true;
                return fol;
            }
            MemberIr::Lit(l) => firstset::literal_facts(l),
            MemberIr::Field(f) => firsts.of_tyuse(&f.ty),
        };
        fol.set = fol.set.union(f.first);
        fol.precise &= f.precise;
        match f.null {
            Nullability::NonEmpty => return fol,
            Nullability::MaybeEmpty => {}
            Nullability::Unknown => fol.precise = false,
        }
    }
    fol.merge(container);
    fol
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::Registry;

    fn facts_for(src: &str) -> (Schema, SemFacts) {
        let schema = crate::compile(src, &Registry::standard()).expect("compiles");
        let firsts = Facts::compute(&schema);
        let sem = SemFacts::compute(&schema, &firsts);
        (schema, sem)
    }

    #[test]
    fn width_interval_algebra() {
        let a = WidthInterval::exact(3);
        let b = WidthInterval::new(1, 5);
        assert_eq!(a.then(b), WidthInterval::new(4, 8));
        assert_eq!(a.hull(b), WidthInterval::new(1, 5));
        assert_eq!(b.repeat(3), WidthInterval::new(3, 15));
        assert_eq!(a.then(WidthInterval::TOP), WidthInterval::at_least(3));
        assert_eq!(WidthInterval::exact(4).as_fixed(), Some(4));
        assert_eq!(b.as_fixed(), None);
        assert_eq!(WidthInterval::TOP.describe(), "[0, ⊤]");
    }

    #[test]
    fn fixed_width_struct_is_fixed() {
        let (schema, sem) = facts_for(
            "Psource Pstruct t { Puint16_FW(:4:) code; '|'; Pb_uint32 n; };",
        );
        assert_eq!(sem.width_of(schema.source()).as_fixed(), Some(9));
    }

    #[test]
    fn variable_members_make_width_top() {
        let (schema, sem) = facts_for("Psource Pstruct t { Puint32 n; ' '; Pstring(:'|':) s; };");
        let w = sem.width_of(schema.source());
        assert_eq!(w.min, 2); // one digit + the space
        assert_eq!(w.max, None);
    }

    #[test]
    fn value_ranges_refine_through_typedefs() {
        let (schema, sem) = facts_for(
            "Ptypedef Puint16_FW(:3:) response_t : response_t x => { 100 <= x && x < 600 };\n\
             Psource Pstruct t { response_t r; };",
        );
        let id = schema.type_id("response_t").expect("declared");
        let iv = sem.value_of(id).expect("int-valued");
        assert_eq!((iv.lo, iv.hi, iv.exact), (100, 599, true));
    }

    #[test]
    fn unsatisfiable_constraint_yields_empty_interval() {
        let (schema, sem) =
            facts_for("Ptypedef Puint8 odd_t : odd_t x => { x > 300 };\nPsource Pstruct t { odd_t o; };");
        let id = schema.type_id("odd_t").expect("declared");
        let iv = sem.value_of(id).expect("int-valued");
        assert!(iv.is_empty());
    }

    #[test]
    fn unrecognised_conjuncts_stay_sound() {
        let (schema, sem) = facts_for(
            "Ptypedef Puint8 t_t : t_t x => { x >= 10 && x % 2 == 0 };\n\
             Psource Pstruct t { t_t f; };",
        );
        // The arithmetic conjunct is unknown: the interval keeps the
        // recognised bound but is marked inexact.
        let id = schema.type_id("t_t").expect("declared");
        let iv = sem.value_of(id).expect("int-valued");
        assert_eq!((iv.lo, iv.hi, iv.exact), (10, 255, false));
    }

    #[test]
    fn nonempty_string_constraint_bumps_min_width() {
        let (schema, sem) = facts_for(
            "Ptypedef Pstring(:'|':) word_t : word_t w => { w != \"\" };\n\
             Psource Pstruct t { word_t w; };",
        );
        let id = schema.type_id("word_t").expect("declared");
        assert_eq!(sem.width_of(id).min, 1);
        assert_eq!(sem.width_of(id).max, None);
    }

    #[test]
    fn follow_sets_cross_member_boundaries() {
        let (schema, sem) = facts_for(
            "Pstruct inner_t { Puint8 n; };\n\
             Psource Pstruct t { inner_t i; ';'; Puint8 k; };",
        );
        let id = schema.type_id("inner_t").expect("declared");
        let fol = sem.follow_of(id);
        assert!(fol.set.contains(b';'));
        assert!(fol.precise);
        assert!(!fol.at_end);
    }

    #[test]
    fn follow_of_last_member_inherits_container_end() {
        let (schema, sem) = facts_for(
            "Pstruct inner_t { Puint8 n; };\n\
             Precord Pstruct rec_t { ':'; inner_t i; };\n\
             Psource Parray t { rec_t[] : Pterm(Peof); };",
        );
        let id = schema.type_id("inner_t").expect("declared");
        assert!(sem.follow_of(id).at_end);
    }
}
