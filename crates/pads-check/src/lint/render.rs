//! Rustc-style text rendering of lint diagnostics.
//!
//! Produces blocks like:
//!
//! ```text
//! error[PL201]: arm `num` of union `u_t` is unreachable: …
//!   --> web.pads:3:5
//!    |
//!  3 |     Puint32 num;
//!    |     ^^^^^^^^^^^^
//!    = help: move `text` last or constrain it so it can fail
//! ```
//!
//! The renderer is pure string formatting so the CLI, tests, and any other
//! consumer produce byte-identical output.

use std::fmt::Write as _;

use crate::lint::{Diagnostic, Diagnostics, Level};

/// Renders one diagnostic against the description source.
///
/// `file` is the display name used in the `-->` line. Diagnostics with a
/// dummy span render headline and hint only.
pub fn render_diagnostic(d: &Diagnostic, src: &str, file: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.level, d.code, d.message);
    if !d.span.is_dummy() {
        let (line, col) = d.span.line_col(src);
        let (text, line_start) = d.span.line_text(src);
        let gutter = line.to_string().len();
        let _ = writeln!(out, "{:gutter$}--> {file}:{line}:{col}", "");
        let _ = writeln!(out, "{:gutter$} |", "");
        let _ = writeln!(out, "{line} | {text}");
        // Underline the span's portion of this line (spans may run past
        // the line end; clamp the carets to the visible text).
        let from = d.span.start.saturating_sub(line_start);
        let upto = (d.span.end.saturating_sub(line_start)).clamp(from + 1, text.len().max(from + 1));
        let _ = writeln!(
            out,
            "{:gutter$} | {:from$}{}",
            "",
            "",
            "^".repeat(upto - from),
        );
    }
    if let Some(hint) = &d.hint {
        let _ = writeln!(out, " = help: {hint}");
    }
    out
}

/// Renders every diagnostic at `min_level` or above, with a trailing
/// summary line when anything was printed.
pub fn render_all(diags: &Diagnostics, src: &str, file: &str, min_level: Level) -> String {
    let mut out = String::new();
    let mut warns = 0usize;
    let mut denies = 0usize;
    for d in diags.iter_all().filter(|d| d.level >= min_level) {
        match d.level {
            Level::Deny => denies += 1,
            Level::Warn => warns += 1,
            Level::Allow => {}
        }
        out.push_str(&render_diagnostic(d, src, file));
        out.push('\n');
    }
    if denies > 0 || warns > 0 {
        let _ = writeln!(
            out,
            "lint: {denies} error(s), {warns} warning(s) in {file}"
        );
    }
    out
}

/// Escapes a string for embedding inside a JSON double-quoted literal
/// (the workspace deliberately carries no serde dependency).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders *every* finding (including `Allow` notes) as one deterministic
/// JSON array — the machine format behind `pads check --lint-format=json`.
/// Each element carries the code, level, file, span (byte offsets plus
/// 1-based line/column), message, and fix hint (`null` when the lint has
/// none). Ordering follows [`Diagnostics`]' stable (span, code) sort, so
/// byte-identical inputs produce byte-identical output.
pub fn render_json(diags: &Diagnostics, src: &str, file: &str) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter_all().enumerate() {
        out.push_str(if i > 0 { ",\n  " } else { "\n  " });
        let span = if d.span.is_dummy() {
            "null".to_owned()
        } else {
            let (line, col) = d.span.line_col(src);
            format!(
                "{{\"start\":{},\"end\":{},\"line\":{line},\"col\":{col}}}",
                d.span.start, d.span.end
            )
        };
        let hint = match &d.hint {
            Some(h) => format!("\"{}\"", esc(h)),
            None => "null".to_owned(),
        };
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"level\":\"{}\",\"file\":\"{}\",\"span\":{span},\
             \"message\":\"{}\",\"hint\":{hint}}}",
            d.code,
            d.level,
            esc(file),
            esc(&d.message)
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::Registry;

    #[test]
    fn renders_span_line_and_carets() {
        let src = "Punion u_t { Pstring(:'|':) text; Puint32 num; };";
        let (_, diags) =
            crate::compile_with_lints(src, &Registry::standard()).expect("compiles");
        let d = diags.iter().find(|d| d.code == "PL201").expect("PL201 fires");
        let text = render_diagnostic(d, src, "web.pads");
        assert!(text.starts_with("error[PL201]:"), "{text}");
        assert!(text.contains("--> web.pads:1:35"), "{text}");
        assert!(text.contains("^^^"), "{text}");
        assert!(text.contains(" = help: "), "{text}");
    }

    #[test]
    fn dummy_span_renders_headline_only() {
        let d = Diagnostic {
            code: "PL202",
            level: Level::Warn,
            span: pads_syntax::Span::default(),
            message: "dangling".to_owned(),
            hint: None,
        };
        let text = render_diagnostic(&d, "", "x.pads");
        assert_eq!(text, "warning[PL202]: dangling\n");
    }

    #[test]
    fn render_all_counts_by_level() {
        let src = "Punion u_t { Pstring(:'|':) text; Puint32 num; };";
        let (_, diags) =
            crate::compile_with_lints(src, &Registry::standard()).expect("compiles");
        let text = render_all(&diags, src, "u.pads", Level::Warn);
        assert!(text.contains("error(s)"), "{text}");
    }

    #[test]
    fn render_all_threshold_reveals_allow_notes() {
        let src = "Psource Pstruct t { Puint8 a; ','; Puint8 b; };";
        let (_, diags) =
            crate::compile_with_lints(src, &Registry::standard()).expect("compiles");
        // Unconstrained fields only produce PL206 notes …
        assert!(render_all(&diags, src, "t.pads", Level::Warn).is_empty());
        // … which the Allow threshold reveals.
        let text = render_all(&diags, src, "t.pads", Level::Allow);
        assert!(text.contains("note[PL206]:"), "{text}");
    }

    #[test]
    fn json_rendering_is_deterministic_and_escaped() {
        let src = "Punion u_t { Pstring(:'|':) text; Puint32 num; };";
        let (_, diags) =
            crate::compile_with_lints(src, &Registry::standard()).expect("compiles");
        let a = render_json(&diags, src, "a \"quoted\".pads");
        assert_eq!(a, render_json(&diags, src, "a \"quoted\".pads"));
        assert!(a.contains("\"code\":\"PL201\""), "{a}");
        assert!(a.contains("\"level\":\"error\""), "{a}");
        assert!(a.contains("a \\\"quoted\\\".pads"), "{a}");
        assert!(a.contains("\"span\":{\"start\":"), "{a}");
        // Clean input renders an empty array, not nothing.
        let (_, clean) = crate::compile_with_lints(
            "Psource Pstruct t { Puint8 a : a < 9; };",
            &Registry::standard(),
        )
        .expect("compiles");
        assert_eq!(render_json(&clean, "", "c.pads"), "[\n]\n");
    }
}
