//! Static-analysis lints over checked schemas.
//!
//! The checker ([`crate::check`]) rejects ill-formed descriptions; these
//! passes go further and flag descriptions that are *well-formed but
//! operationally suspect* — the mistakes that otherwise only surface at
//! parse time on real data:
//!
//! * **Ambiguity** ([`firstset`]): union arms shadowed by an earlier arm
//!   whose admissible first bytes cover them, `Pswitch` unions with
//!   duplicate case values or no `Pdefault`, and `Popt` wrappers whose
//!   inner type always succeeds.
//! * **Progress** ([`progress`]): arrays whose element can match empty
//!   input with nothing else forcing consumption — the potential infinite
//!   loops the runtime only escapes via its zero-width guard.
//! * **Reachability** ([`reach`]): unreachable union arms, type
//!   declarations never reached from the source type, unused parameters,
//!   and constraints that constant-fold to `true`/`false`.
//! * **Width/value** ([`width`], over the [`facts`] database): union arms
//!   indistinguishable within any finite lookahead, string terminators
//!   the following data can never produce, and constraints whose value
//!   interval is empty over the base type's range.
//!
//! Every finding is a [`Diagnostic`] with a stable `PLxxx` code, a default
//! [`Level`], a source span, and a fix hint; [`render`] prints them in
//! rustc style with underlined source snippets. Run everything with
//! [`lint_schema`] (or [`crate::compile_with_lints`]).
//!
//! # Examples
//!
//! ```
//! use pads_runtime::Registry;
//!
//! let (schema, diags) = pads_check::compile_with_lints(
//!     "Punion u_t { Pstring(:'|':) text; Puint32 num; };",
//!     &Registry::standard(),
//! )?;
//! assert_eq!(schema.source_def().name, "u_t");
//! // `text` can match the empty string, so `num` is unreachable.
//! assert!(diags.iter().any(|d| d.code == "PL201"));
//! # Ok::<(), pads_check::CompileError>(())
//! ```

pub mod facts;
pub mod firstset;
pub mod progress;
pub mod reach;
pub mod render;
pub mod width;

use pads_syntax::ast::{BinOp, Expr, UnOp};
use pads_syntax::Span;

use crate::ir::Schema;

/// Severity a lint fires at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Informational; suppressed unless explicitly requested.
    Allow,
    /// Suspicious but plausibly intentional.
    Warn,
    /// Almost certainly a bug in the description.
    Deny,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::Allow => f.write_str("note"),
            Level::Warn => f.write_str("warning"),
            Level::Deny => f.write_str("error"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`"PL001"`, …).
    pub code: &'static str,
    /// Severity.
    pub level: Level,
    /// Where in the description the finding anchors.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the lint knows.
    pub hint: Option<String>,
}

/// The catalogue of lint codes: `(code, default level, summary)`.
/// `docs/LINTS.md` documents each with a triggering example.
pub const CODES: &[(&str, Level, &str)] = &[
    ("PL001", Level::Warn, "union arm shadowed by an earlier arm's first-set"),
    ("PL002", Level::Deny, "duplicate Pswitch case value"),
    ("PL003", Level::Warn, "Pswitch union without a Pdefault arm"),
    ("PL004", Level::Warn, "Popt of a type that always succeeds"),
    ("PL101", Level::Deny, "array over a possibly-empty element cannot make progress"),
    ("PL102", Level::Warn, "array progress depends on unprovable element consumption"),
    ("PL103", Level::Warn, "Pforall range is vacuously empty"),
    ("PL201", Level::Deny, "union arm unreachable after an always-succeeding arm"),
    ("PL202", Level::Warn, "type declaration never reached from the source type"),
    ("PL203", Level::Warn, "unused type parameter"),
    ("PL204", Level::Warn, "constraint is trivially true"),
    ("PL205", Level::Deny, "constraint is trivially false"),
    ("PL206", Level::Allow, "field referenced by no constraint"),
    ("PL301", Level::Warn, "union arms indistinguishable within any finite lookahead"),
    ("PL302", Level::Warn, "field terminator capturable by the field's own content"),
    ("PL303", Level::Deny, "constraint value interval is unsatisfiable"),
    ("PL304", Level::Allow, "array element width is zero only on the error path"),
];

/// The default level of a lint code.
///
/// # Panics
///
/// Panics if `code` is not in [`CODES`] (lint passes only emit registered
/// codes; this is checked by tests).
#[allow(clippy::expect_used)]
pub fn default_level(code: &str) -> Level {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, l, _)| *l)
        .expect("lint code is registered in CODES")
}

/// An ordered collection of lint findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Adds a finding at its code's default level.
    pub(crate) fn push(
        &mut self,
        code: &'static str,
        span: Span,
        message: impl Into<String>,
        hint: Option<String>,
    ) {
        self.diags.push(Diagnostic {
            code,
            level: default_level(code),
            span,
            message: message.into(),
            hint,
        });
    }

    /// Sorts findings by (span start, code) for stable output.
    pub(crate) fn sort(&mut self) {
        self.diags
            .sort_by(|a, b| (a.span.start, a.code, a.span.end).cmp(&(b.span.start, b.code, b.span.end)));
    }

    /// Iterates over findings at [`Level::Warn`] and above.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.level > Level::Allow)
    }

    /// Iterates over every finding, including [`Level::Allow`] notes.
    pub fn iter_all(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Number of findings at `level` or above.
    pub fn count_at(&self, level: Level) -> usize {
        self.diags.iter().filter(|d| d.level >= level).count()
    }

    /// Whether any finding reaches `level`.
    pub fn any_at(&self, level: Level) -> bool {
        self.count_at(level) > 0
    }

    /// Whether no findings above [`Level::Allow`] were produced.
    pub fn is_clean(&self) -> bool {
        !self.any_at(Level::Warn)
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

/// Runs every lint pass over a checked schema.
pub fn lint_schema(schema: &Schema) -> Diagnostics {
    let facts = firstset::Facts::compute(schema);
    let sem = facts::SemFacts::compute(schema, &facts);
    let mut diags = Diagnostics::default();
    firstset::lint_ambiguity(schema, &facts, &mut diags);
    progress::lint_progress(schema, &facts, &sem, &mut diags);
    reach::lint_reachability(schema, &facts, &mut diags);
    width::lint_width(schema, &facts, &sem, &mut diags);
    diags.sort();
    diags
}

/// A constant an expression folds to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Const {
    /// Integer (also chars and folded comparisons of numbers).
    Int(i64),
    /// Boolean.
    Bool(bool),
}

impl Const {
    pub(crate) fn as_int(self) -> Option<i64> {
        match self {
            Const::Int(v) => Some(v),
            Const::Bool(_) => None,
        }
    }

    pub(crate) fn as_bool(self) -> Option<bool> {
        match self {
            Const::Bool(v) => Some(v),
            Const::Int(_) => None,
        }
    }
}

/// Best-effort constant folding over the constraint language: literals and
/// arithmetic/logic over them. Anything touching parsed data, parameters,
/// floats, or strings folds to `None`.
pub(crate) fn const_fold(e: &Expr) -> Option<Const> {
    match e {
        Expr::Int(v) => Some(Const::Int(*v)),
        Expr::Char(c) => Some(Const::Int(*c as i64)),
        Expr::Bool(b) => Some(Const::Bool(*b)),
        Expr::Unary(UnOp::Not, a) => Some(Const::Bool(!const_fold(a)?.as_bool()?)),
        Expr::Unary(UnOp::Neg, a) => Some(Const::Int(const_fold(a)?.as_int()?.checked_neg()?)),
        Expr::Binary(op, a, b) => {
            // Short-circuit forms first: `false && x` folds without `x`.
            if let BinOp::And | BinOp::Or = op {
                let la = const_fold(a).and_then(Const::as_bool);
                let lb = const_fold(b).and_then(Const::as_bool);
                return match (op, la, lb) {
                    (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => {
                        Some(Const::Bool(false))
                    }
                    (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => {
                        Some(Const::Bool(true))
                    }
                    (_, Some(x), Some(y)) => Some(Const::Bool(match op {
                        BinOp::And => x && y,
                        _ => x || y,
                    })),
                    _ => None,
                };
            }
            let ca = const_fold(a)?;
            let cb = const_fold(b)?;
            if let (BinOp::Eq | BinOp::Ne, Some(x), Some(y)) = (*op, ca.as_bool(), cb.as_bool()) {
                return Some(Const::Bool(if *op == BinOp::Eq { x == y } else { x != y }));
            }
            let x = ca.as_int()?;
            let y = cb.as_int()?;
            Some(match op {
                BinOp::Add => Const::Int(x.checked_add(y)?),
                BinOp::Sub => Const::Int(x.checked_sub(y)?),
                BinOp::Mul => Const::Int(x.checked_mul(y)?),
                BinOp::Div => Const::Int(x.checked_div(y)?),
                BinOp::Rem => Const::Int(x.checked_rem(y)?),
                BinOp::Eq => Const::Bool(x == y),
                BinOp::Ne => Const::Bool(x != y),
                BinOp::Lt => Const::Bool(x < y),
                BinOp::Le => Const::Bool(x <= y),
                BinOp::Gt => Const::Bool(x > y),
                BinOp::Ge => Const::Bool(x >= y),
                BinOp::And | BinOp::Or => return None, // handled above
            })
        }
        Expr::Ternary(c, t, f) => {
            let cond = const_fold(c)?.as_bool()?;
            const_fold(if cond { t } else { f })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_syntax::parse_expr;

    fn fold_src(src: &str) -> Option<Const> {
        const_fold(&parse_expr(src).expect("parses"))
    }

    #[test]
    fn folds_arithmetic_and_logic() {
        assert_eq!(fold_src("1 + 2 * 3"), Some(Const::Int(7)));
        assert_eq!(fold_src("1 < 2 && 3 != 3"), Some(Const::Bool(false)));
        assert_eq!(fold_src("false && nosuch"), Some(Const::Bool(false)));
        assert_eq!(fold_src("true || nosuch"), Some(Const::Bool(true)));
        assert_eq!(fold_src("'a' == 97"), Some(Const::Bool(true)));
        assert_eq!(fold_src("1 ? 2 : x"), None); // non-bool condition
        assert_eq!(fold_src("x + 1"), None);
    }

    #[test]
    fn every_emitted_code_is_registered() {
        // `default_level` panics on unregistered codes; exercise the table.
        for (code, _, _) in CODES {
            let _ = default_level(code);
        }
    }

    #[test]
    fn division_by_zero_does_not_fold() {
        assert_eq!(fold_src("1 / 0"), None);
        assert_eq!(fold_src("1 % 0"), None);
    }
}
