//! Reachability and dead-description analysis (`PL201`–`PL206`).
//!
//! Finds description text that can never matter at parse time: union arms
//! behind an arm that always succeeds, declarations no path from the
//! `Psource` type reaches, parameters nothing reads, and constraints that
//! constant-fold to `true` or `false`.

use std::collections::HashSet;

use pads_syntax::ast::Expr;

use crate::ir::{MemberIr, Schema, TypeId, TypeKind, TyUse};
use crate::lint::firstset::{Facts, Nullability, TypeFacts};
use crate::lint::{const_fold, Const, Diagnostics};

/// The reachability lints.
pub(crate) fn lint_reachability(schema: &Schema, facts: &Facts, diags: &mut Diagnostics) {
    lint_unreachable_arms(schema, facts, diags);
    lint_unreachable_types(schema, diags);
    lint_unused_params(schema, diags);
    lint_trivial_constraints(schema, diags);
    lint_unconstrained_fields(schema, diags);
}

/// Whether a union arm always succeeds: no constraint, can match empty
/// input, and nothing inside can semantically reject.
fn arm_always_succeeds(f: TypeFacts, constrained: bool) -> bool {
    !constrained && f.null == Nullability::MaybeEmpty && !f.may_reject
}

/// `PL201`: arms after an always-succeeding arm in an ordered union.
fn lint_unreachable_arms(schema: &Schema, facts: &Facts, diags: &mut Diagnostics) {
    for def in &schema.types {
        let TypeKind::Union { switch: None, branches } = &def.kind else { continue };
        let Some(catch_all) = branches.iter().position(|b| {
            arm_always_succeeds(facts.of_tyuse(&b.field.ty), b.field.constraint.is_some())
        }) else {
            continue;
        };
        for dead in &branches[catch_all + 1..] {
            diags.push(
                "PL201",
                dead.field.span,
                format!(
                    "arm `{}` of union `{}` is unreachable: earlier arm `{}` always \
                     succeeds (it can match empty input and has no constraint)",
                    dead.field.name,
                    def.name,
                    branches[catch_all].field.name
                ),
                Some(format!(
                    "move `{}` last or constrain it so it can fail",
                    branches[catch_all].field.name
                )),
            );
        }
    }
}

/// Type ids referenced by a type use, innermost included.
fn tyuse_refs(ty: &TyUse, out: &mut Vec<TypeId>, exprs: &mut Vec<Expr>) {
    match ty {
        TyUse::Base { args, .. } => exprs.extend(args.iter().cloned()),
        TyUse::Named { id, args } => {
            out.push(*id);
            exprs.extend(args.iter().cloned());
        }
        TyUse::Opt(inner) => tyuse_refs(inner, out, exprs),
    }
}

/// Direct type references and the expressions of a definition body.
fn def_refs(schema: &Schema, id: TypeId) -> (Vec<TypeId>, Vec<Expr>) {
    let def = schema.def(id);
    let mut ids = Vec::new();
    let mut exprs = Vec::new();
    match &def.kind {
        TypeKind::Struct { members } => {
            for m in members {
                if let MemberIr::Field(f) = m {
                    tyuse_refs(&f.ty, &mut ids, &mut exprs);
                    exprs.extend(f.constraint.iter().cloned());
                }
            }
        }
        TypeKind::Union { switch, branches } => {
            exprs.extend(switch.iter().cloned());
            for b in branches {
                tyuse_refs(&b.field.ty, &mut ids, &mut exprs);
                exprs.extend(b.field.constraint.iter().cloned());
                if let Some(pads_syntax::ast::CaseLabel::Expr(e)) = &b.case {
                    exprs.push(e.clone());
                }
            }
        }
        TypeKind::Array { elem, size, ended, .. } => {
            tyuse_refs(elem, &mut ids, &mut exprs);
            exprs.extend(size.iter().cloned());
            exprs.extend(ended.iter().cloned());
        }
        TypeKind::Enum { .. } => {}
        TypeKind::Typedef { base, pred, .. } => {
            tyuse_refs(base, &mut ids, &mut exprs);
            exprs.extend(pred.iter().cloned());
        }
    }
    exprs.extend(def.where_clause.iter().cloned());
    // Enum variants are global names: a constraint mentioning one keeps
    // its enum alive even without a field of that type.
    for e in &exprs {
        for name in e.free_idents() {
            if let Some((enum_id, _)) = schema.enum_variants.get(name) {
                ids.push(*enum_id);
            }
        }
    }
    (ids, exprs)
}

/// `PL202`: declarations not reachable from the `Psource` type.
fn lint_unreachable_types(schema: &Schema, diags: &mut Diagnostics) {
    let mut reachable: HashSet<TypeId> = HashSet::new();
    let mut stack = vec![schema.source()];
    while let Some(id) = stack.pop() {
        if !reachable.insert(id) {
            continue;
        }
        let (ids, _) = def_refs(schema, id);
        stack.extend(ids);
    }
    for (id, def) in schema.types.iter().enumerate() {
        if !reachable.contains(&id) {
            diags.push(
                "PL202",
                def.span,
                format!(
                    "type `{}` is never reached from source type `{}`",
                    def.name,
                    schema.source_def().name
                ),
                Some("remove the declaration or reference it from a reachable type".to_owned()),
            );
        }
    }
}

/// `PL203`: declaration parameters no expression reads.
fn lint_unused_params(schema: &Schema, diags: &mut Diagnostics) {
    for (id, def) in schema.types.iter().enumerate() {
        if def.params.is_empty() {
            continue;
        }
        let (_, exprs) = def_refs(schema, id);
        let used: HashSet<&str> =
            exprs.iter().flat_map(Expr::free_idents).collect();
        for p in &def.params {
            if !used.contains(p.name.as_str()) {
                diags.push(
                    "PL203",
                    def.span,
                    format!("parameter `{}` of `{}` is never used", p.name, def.name),
                    Some("remove the parameter (and the argument at every use site)".to_owned()),
                );
            }
        }
    }
}

/// `PL204`/`PL205`: constraints that constant-fold.
fn lint_trivial_constraints(schema: &Schema, diags: &mut Diagnostics) {
    let check = |e: &Expr, span: pads_syntax::Span, what: &str, diags: &mut Diagnostics| {
        match const_fold(e).and_then(Const::as_bool) {
            Some(true) => diags.push(
                "PL204",
                span,
                format!("{what} is always true: it never rejects anything"),
                Some("remove the constraint or reference the parsed value".to_owned()),
            ),
            Some(false) => diags.push(
                "PL205",
                span,
                format!("{what} is always false: no input can ever satisfy it"),
                Some("fix the condition; as written every parse fails here".to_owned()),
            ),
            None => {}
        }
    };
    for def in &schema.types {
        match &def.kind {
            TypeKind::Struct { members } => {
                for m in members {
                    if let MemberIr::Field(f) = m {
                        if let Some(c) = &f.constraint {
                            check(c, f.span, &format!("constraint on field `{}`", f.name), diags);
                        }
                    }
                }
            }
            TypeKind::Union { branches, .. } => {
                for b in branches {
                    if let Some(c) = &b.field.constraint {
                        check(
                            c,
                            b.field.span,
                            &format!("constraint on arm `{}`", b.field.name),
                            diags,
                        );
                    }
                }
            }
            TypeKind::Array { ended: Some(e), .. } => {
                check(e, def.span, &format!("`Pended` predicate of `{}`", def.name), diags);
            }
            TypeKind::Typedef { pred: Some(p), .. } => {
                check(p, def.span, &format!("predicate of typedef `{}`", def.name), diags);
            }
            _ => {}
        }
        if let Some(w) = &def.where_clause {
            check(w, def.span, &format!("`Pwhere` clause of `{}`", def.name), diags);
        }
    }
}

/// `PL206` (allow-level): struct fields no constraint anywhere mentions.
fn lint_unconstrained_fields(schema: &Schema, diags: &mut Diagnostics) {
    // Any expression in the schema may reference a field by name (scoping
    // rules keep this sound enough for an allow-level note).
    let mut mentioned: HashSet<String> = HashSet::new();
    for id in 0..schema.types.len() {
        let (_, exprs) = def_refs(schema, id);
        for e in &exprs {
            mentioned.extend(e.free_idents().into_iter().map(str::to_owned));
        }
    }
    for def in &schema.types {
        let TypeKind::Struct { members } = &def.kind else { continue };
        for m in members {
            let MemberIr::Field(f) = m else { continue };
            if f.constraint.is_none() && !mentioned.contains(&f.name) {
                diags.push(
                    "PL206",
                    f.span,
                    format!(
                        "field `{}` of `{}` is referenced by no constraint",
                        f.name, def.name
                    ),
                    None,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Level;
    use pads_runtime::Registry;

    fn reach_lints(src: &str) -> Vec<(String, Level)> {
        let schema = crate::compile(src, &Registry::standard()).expect("compiles");
        let facts = Facts::compute(&schema);
        let mut diags = Diagnostics::default();
        lint_reachability(&schema, &facts, &mut diags);
        diags.iter().map(|d| (d.code.to_owned(), d.level)).collect()
    }

    #[test]
    fn arm_after_always_succeeding_arm_is_dead() {
        let lints = reach_lints("Punion u_t { Pstring(:'|':) text; Puint32 num; };");
        assert_eq!(lints, vec![("PL201".to_owned(), Level::Deny)]);
    }

    #[test]
    fn constrained_nullable_arm_keeps_later_arms_alive() {
        let lints =
            reach_lints("Punion u_t { Pstring(:'|':) text : text != \"\"; Puint32 num; };");
        assert!(lints.is_empty(), "{lints:?}");
    }

    #[test]
    fn unreachable_type_and_unused_param() {
        let lints = reach_lints(
            r#"
            Pstruct orphan_t { Puint8 x; };
            Pstruct keep_t (:Puint8 n:) { Puint8 y; };
            Psource Pstruct top_t { keep_t(:3:) k; };
            "#,
        );
        assert!(lints.contains(&("PL202".to_owned(), Level::Warn)), "{lints:?}");
        assert!(lints.contains(&("PL203".to_owned(), Level::Warn)), "{lints:?}");
    }

    #[test]
    fn enum_used_only_in_constraint_is_reachable() {
        let lints = reach_lints(
            r#"
            Penum sev_t { LOW, MED, HIGH };
            Psource Pstruct t { Puint8 code : code != LOW; };
            "#,
        );
        assert!(lints.is_empty(), "{lints:?}");
    }

    #[test]
    fn trivial_constraints_fold_both_ways() {
        let lints = reach_lints("Pstruct t { Puint8 a : 1 < 2; Puint8 b : 2 < 1; };");
        assert!(lints.contains(&("PL204".to_owned(), Level::Warn)), "{lints:?}");
        assert!(lints.contains(&("PL205".to_owned(), Level::Deny)), "{lints:?}");
    }

    #[test]
    fn unconstrained_field_note_is_allow_level() {
        let schema =
            crate::compile("Pstruct t { Puint8 a; };", &Registry::standard()).expect("compiles");
        let facts = Facts::compute(&schema);
        let mut diags = Diagnostics::default();
        lint_reachability(&schema, &facts, &mut diags);
        // Not in the default iteration…
        assert_eq!(diags.iter().count(), 0);
        // …but present for explicit consumers.
        assert!(diags.iter_all().any(|d| d.code == "PL206"));
    }
}
