//! Width/value lints over the semantic fact database (`PL301`–`PL303`).
//!
//! These consume [`super::facts::SemFacts`] — byte-width intervals, value
//! ranges, and follow sets — and flag problems the purely syntactic
//! passes cannot see:
//!
//! * **PL301** — ordered union arms that overlap on their admissible
//!   first bytes while *both* have unbounded width: no finite lookahead
//!   separates them, so arm order silently decides every ambiguous input.
//! * **PL302** — a terminated string whose terminator byte can never
//!   occur where the field ends: the scan runs past the intended
//!   boundary and captures the real delimiter as content.
//! * **PL303** — a constraint whose value interval is empty over the base
//!   type's range: no parseable value can ever satisfy it. The semantic
//!   sharpening of `PL205` (which only catches constraints that
//!   constant-fold to `false`).
//!
//! `PL304` (array progress proven by width analysis) lives in
//! [`super::progress`], next to the `PL101`/`PL102` logic it refines.

use pads_syntax::ast::Expr;

use crate::ir::{MemberIr, Schema, TypeKind, TyUse};
use crate::lint::facts::{self, SemFacts, ValueInterval};
use crate::lint::firstset::{ByteSet, Facts, Nullability, TypeFacts};
use crate::lint::Diagnostics;

/// The width/value lints: `PL301`–`PL303`.
pub(crate) fn lint_width(
    schema: &Schema,
    firsts: &Facts,
    sem: &SemFacts,
    diags: &mut Diagnostics,
) {
    for (id, def) in schema.types.iter().enumerate() {
        match &def.kind {
            TypeKind::Union { switch: None, branches } => {
                lint_unbounded_overlap(schema, firsts, sem, &def.name, branches, diags);
            }
            TypeKind::Struct { members } => {
                lint_uncapturable_terminator(schema, firsts, sem, id, members, diags);
                for m in members {
                    if let MemberIr::Field(f) = m {
                        if let Some(c) = &f.constraint {
                            lint_unsat_constraint(
                                sem,
                                sem.value_of_tyuse(&f.ty),
                                Some(&f.name),
                                c,
                                f.span,
                                &format!("field `{}`", f.name),
                                diags,
                            );
                        }
                    }
                }
            }
            TypeKind::Typedef { base, var, pred: Some(p) } => {
                lint_unsat_constraint(
                    sem,
                    sem.value_of_tyuse(base),
                    var.as_deref(),
                    p,
                    def.span,
                    &format!("typedef `{}`", def.name),
                    diags,
                );
            }
            _ => {}
        }
    }
}

/// PL301: union arms whose first-byte sets overlap while both widths are
/// unbounded. Pairs already covered by `PL001` (first-set shadowing) or
/// `PL201` (always-succeeding earlier arm) are skipped.
fn lint_unbounded_overlap(
    schema: &Schema,
    firsts: &Facts,
    sem: &SemFacts,
    union_name: &str,
    branches: &[crate::ir::BranchIr],
    diags: &mut Diagnostics,
) {
    let _ = schema;
    let bf: Vec<TypeFacts> = branches
        .iter()
        .map(|b| {
            let mut f = firsts.of_tyuse(&b.field.ty);
            if b.field.constraint.is_some() {
                f.may_reject = true;
                f.precise = false;
            }
            f
        })
        .collect();
    for (i, (bi, fi)) in branches.iter().zip(&bf).enumerate() {
        // An always-succeeding earlier arm is PL201's finding.
        if fi.null == Nullability::MaybeEmpty && !fi.may_reject {
            continue;
        }
        let wi = sem.width_of_tyuse(&bi.field.ty);
        if wi.max.is_some() {
            continue;
        }
        for (bj, fj) in branches.iter().zip(&bf).skip(i + 1) {
            let wj = sem.width_of_tyuse(&bj.field.ty);
            if wj.max.is_some() {
                continue;
            }
            // Opaque ALL-byte sets would fire on everything; require real
            // first-byte evidence of the overlap.
            if fi.first == ByteSet::ALL || fj.first == ByteSet::ALL {
                continue;
            }
            if !fi.first.intersects(fj.first) {
                continue;
            }
            // First-byte shadowing is PL001's finding.
            let shadowed = bi.field.constraint.is_none()
                && fi.precise
                && fi.null == Nullability::NonEmpty
                && !fj.first.is_empty()
                && fj.first.is_subset(fi.first);
            if shadowed {
                continue;
            }
            diags.push(
                "PL301",
                bj.field.span,
                format!(
                    "arms `{}` and `{}` of union `{union_name}` are indistinguishable \
                     within any finite lookahead: their first bytes overlap and both \
                     widths are unbounded ({} vs {})",
                    bi.field.name,
                    bj.field.name,
                    wi.describe(),
                    wj.describe(),
                ),
                Some(format!(
                    "arm order silently decides every overlapping input; bound one arm's \
                     width, or add a constraint or leading literal that separates \
                     `{}` from `{}`",
                    bi.field.name, bj.field.name
                )),
            );
            break; // one report per later arm is enough
        }
    }
}

/// PL302: a terminated string field whose terminator byte is not in the
/// (precise) set of bytes that can follow the field — the scan runs past
/// the intended field boundary.
fn lint_uncapturable_terminator(
    schema: &Schema,
    firsts: &Facts,
    sem: &SemFacts,
    id: crate::ir::TypeId,
    members: &[MemberIr],
    diags: &mut Diagnostics,
) {
    for (i, m) in members.iter().enumerate() {
        let MemberIr::Field(f) = m else { continue };
        let Some(term) = string_terminator(&f.ty) else { continue };
        let fol = facts::follow_after(schema, firsts, &members[i + 1..], sem.follow_of(id));
        // A field that can legally sit at a record/source boundary scans
        // to the boundary instead — idiomatic for trailing fields.
        if !fol.precise || fol.at_end || fol.set.is_empty() {
            continue;
        }
        if fol.set.contains(term) {
            continue;
        }
        diags.push(
            "PL302",
            f.span,
            format!(
                "field `{}` scans for terminator {} but the data that follows starts \
                 with {}: the scan will run past the field and capture the real \
                 delimiter as content",
                f.name,
                ByteSet::of(&[term]).describe(),
                fol.set.describe(),
            ),
            Some(format!(
                "terminate the string with {} (the byte that actually follows it)",
                fol.set.describe()
            )),
        );
    }
}

/// The constant terminator byte of a `Pstring(:c:)` use, looking through
/// `Popt`.
fn string_terminator(ty: &TyUse) -> Option<u8> {
    match ty {
        TyUse::Base { name, args } if name == "Pstring" => match args.first() {
            Some(Expr::Char(c)) => Some(*c),
            _ => None,
        },
        TyUse::Opt(inner) => string_terminator(inner),
        _ => None,
    }
}

/// PL303: the constraint's value interval is empty over the base type's
/// range. Refinement only intersects with recognised conjuncts, so an
/// empty result is a sound unsatisfiability proof even when other
/// conjuncts were not understood.
#[allow(clippy::too_many_arguments)]
fn lint_unsat_constraint(
    _sem: &SemFacts,
    base: Option<ValueInterval>,
    var: Option<&str>,
    pred: &Expr,
    span: pads_syntax::Span,
    owner: &str,
    diags: &mut Diagnostics,
) {
    let Some(base) = base else { return };
    // An already-empty base interval was flagged at its own declaration.
    if base.is_empty() {
        return;
    }
    let refined = facts::refine_value(base, var, pred);
    if !refined.is_empty() {
        return;
    }
    diags.push(
        "PL303",
        span,
        format!(
            "constraint on {owner} is unsatisfiable: the base type only produces \
             values in {} and no such value passes the constraint",
            ValueInterval { exact: true, ..base }.describe(),
        ),
        Some("every parse will fail the constraint; fix the bounds or widen the base type".to_owned()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::facts::SemFacts;
    use pads_runtime::Registry;

    fn lint(src: &str) -> Vec<&'static str> {
        let schema = crate::compile(src, &Registry::standard()).expect("compiles");
        let firsts = Facts::compute(&schema);
        let sem = SemFacts::compute(&schema, &firsts);
        let mut diags = Diagnostics::default();
        lint_width(&schema, &firsts, &sem, &mut diags);
        diags.into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn unbounded_overlapping_arms_warn() {
        // Both arms are unbounded strings; every byte except the two
        // terminators is admissible in both.
        let codes = lint(
            "Ptypedef Pstring(:'|':) aw_t : aw_t x => { x != \"\" };\n\
             Ptypedef Pstring(:';':) bw_t : bw_t y => { y != \"\" };\n\
             Psource Punion u_t { aw_t a; bw_t b; };",
        );
        assert_eq!(codes, vec!["PL301"]);
    }

    #[test]
    fn bounded_arm_stays_clean() {
        // Pip is width-bounded: 16 bytes of lookahead always decide.
        let codes = lint("Psource Punion client_t { Pip ip; Phostname host; };");
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn wrong_terminator_warns() {
        let codes =
            lint("Psource Pstruct t { Pstring(:'|':) s; ','; Puint8 n; };");
        assert_eq!(codes, vec!["PL302"]);
    }

    #[test]
    fn matching_terminator_is_clean() {
        let codes =
            lint("Psource Pstruct t { Pstring(:',':) s; ','; Puint8 n; };");
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn trailing_string_at_record_end_is_clean() {
        let codes = lint(
            "Precord Pstruct rec_t { Puint8 n; ' '; Pstring(:' ':) rest; };\n\
             Psource Parray t { rec_t[] : Pterm(Peof); };",
        );
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn unsatisfiable_typedef_constraint_errors() {
        let codes = lint(
            "Ptypedef Puint8 odd_t : odd_t x => { x > 300 };\n\
             Psource Pstruct t { odd_t o; };",
        );
        assert_eq!(codes, vec!["PL303"]);
    }

    #[test]
    fn unsatisfiable_field_constraint_errors() {
        let codes = lint("Psource Pstruct t { Puint8 n : n > 300; };");
        assert_eq!(codes, vec!["PL303"]);
    }

    #[test]
    fn satisfiable_constraints_are_clean() {
        let codes = lint(
            "Ptypedef Puint16_FW(:3:) response_t : response_t x => { 100 <= x && x < 600 };\n\
             Psource Pstruct t { response_t r; ' '; Puint8 k : k <= 2; };",
        );
        assert!(codes.is_empty(), "{codes:?}");
    }
}
