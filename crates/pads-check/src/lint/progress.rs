//! Progress/termination analysis for arrays (`PL101`–`PL103`).
//!
//! An unsized array keeps reading elements until a separator mismatch, a
//! terminator, or its `Pended` predicate stops it. If the element itself
//! can match *empty* input and nothing else forces the cursor forward, the
//! loop only ends because the runtime carries a zero-width guard — the
//! description is almost certainly wrong. This pass flags those arrays and
//! also answers the code generator's question ([`array_progress`]):
//! "is the guard provably dead for this array?"

use pads_syntax::ast::{BinOp, Expr};

use crate::ir::{Schema, TypeId, TypeKind, TyUse};
use crate::lint::facts::SemFacts;
use crate::lint::firstset::{Facts, Nullability};
use crate::lint::{const_fold, Const, Diagnostics};

/// What the analysis can prove about an unsized array's read loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Every iteration consumes at least one byte: the element is proven
    /// non-empty. The runtime's zero-width guard is dead code.
    Proven,
    /// A separator or termination condition bounds the loop, but a single
    /// iteration may be zero-width; the guard stays live.
    Guarded,
    /// Nothing bounds a zero-width element: only the guard stops the loop.
    Stuck,
}

/// Classifies the read loop of array declaration `id`.
///
/// Sized arrays (`[n]` with a size expression) iterate a bounded count and
/// are always [`Progress::Proven`] for the purpose of loop termination,
/// though callers that care about the guard should note the runtime only
/// emits it for unsized arrays anyway.
pub fn array_progress(schema: &Schema, facts: &Facts, id: TypeId) -> Progress {
    let TypeKind::Array { elem, sep, term, ended, size } = &schema.def(id).kind else {
        return Progress::Proven;
    };
    if size.is_some() {
        return Progress::Proven;
    }
    let ef = facts.of_tyuse(elem);
    match ef.null {
        Nullability::NonEmpty => Progress::Proven,
        Nullability::MaybeEmpty | Nullability::Unknown => {
            // A separator forces consumption *between* elements, and any
            // termination condition can still stop the loop — but neither
            // guarantees the first iteration moves, so the guard is live.
            if sep.is_some() || term.is_some() || ended.is_some() {
                Progress::Guarded
            } else {
                Progress::Stuck
            }
        }
    }
}

/// Whether the element type ever recovers at record boundaries (a
/// `Precord` element resynchronises instead of failing, which changes the
/// loop's break structure). Mirrors the code generator's test.
pub fn elem_recovers(schema: &Schema, elem: &TyUse) -> bool {
    matches!(elem, TyUse::Named { id, .. } if schema.def(*id).is_record)
}

/// The progress lints: `PL101` (array can never make progress), `PL102`
/// (progress unprovable), `PL103` (vacuous `Pforall` range), and `PL304`
/// (width analysis proves every *successful* element parse consumes at
/// least one byte, so the zero-width guard only matters on error paths —
/// the sharpened, note-level form of `PL102`).
pub(crate) fn lint_progress(
    schema: &Schema,
    facts: &Facts,
    sem: &SemFacts,
    diags: &mut Diagnostics,
) {
    for (id, def) in schema.types.iter().enumerate() {
        if let TypeKind::Array { elem, ended, .. } = &def.kind {
            let ef = facts.of_tyuse(elem);
            // Width analysis can prove progress the nullability lattice
            // cannot: a constrained element whose successful matches all
            // consume input (e.g. `Pwhere x != ""` on a terminated
            // string) loops only while the data actually moves.
            let width_proven = sem.width_of_tyuse(elem).nonzero();
            let progress = array_progress(schema, facts, id);
            if width_proven && progress != Progress::Proven {
                diags.push(
                    "PL304",
                    def.span,
                    format!(
                        "array `{}` is safe despite its possibly-empty element: width \
                         analysis proves every successful element parse consumes at \
                         least one byte (zero width only occurs on the error path)",
                        def.name
                    ),
                    None,
                );
            }
            match progress {
                _ if width_proven => {}
                Progress::Proven => {}
                Progress::Stuck if ef.null == Nullability::MaybeEmpty => diags.push(
                    "PL101",
                    def.span,
                    format!(
                        "array `{}` cannot make progress: its element can match empty \
                         input and no separator, terminator, or size bounds the loop",
                        def.name
                    ),
                    Some(
                        "add `Psep`/`Pterm`, a size, or make the element consume at \
                         least one byte"
                            .to_owned(),
                    ),
                ),
                Progress::Stuck => diags.push(
                    "PL102",
                    def.span,
                    format!(
                        "array `{}` may not make progress: the element's minimum width \
                         is unknown and nothing else bounds the loop",
                        def.name
                    ),
                    Some(
                        "add `Psep`/`Pterm`/a size, or use an element type with a \
                         known non-zero width"
                            .to_owned(),
                    ),
                ),
                Progress::Guarded if ef.null == Nullability::MaybeEmpty => diags.push(
                    "PL102",
                    def.span,
                    format!(
                        "array `{}` relies on the runtime zero-width guard: its element \
                         can match empty input, so an iteration may consume nothing",
                        def.name
                    ),
                    Some("make the element consume at least one byte".to_owned()),
                ),
                Progress::Guarded => {}
            }
            // Pended predicates that constant-fold are handled as trivial
            // constraints (PL204/PL205) by the reachability pass; here we
            // only look at Pforall-style bounded ranges.
            let _ = ended;
        }
        // Vacuous Pforall ranges: `Pforall (i Pin [lo..hi] : …)` where the
        // constant bounds are empty. The checker lowers Pforall into the
        // where-clause as a call; we look for range comparisons that fold.
        if let Some(w) = &def.where_clause {
            check_vacuous_ranges(w, def.span, &def.name, diags);
        }
    }
}

/// Flags `lo <= x && x <= hi`-shaped conjunctions (and `Pforall` lowered
/// ranges) whose constant bounds exclude every value.
fn check_vacuous_ranges(e: &Expr, span: pads_syntax::Span, owner: &str, diags: &mut Diagnostics) {
    match e {
        Expr::Forall { lo, hi, body, .. } => {
            if let (Some(l), Some(h)) = (
                const_fold(lo).and_then(Const::as_int),
                const_fold(hi).and_then(Const::as_int),
            ) {
                if l > h {
                    diags.push(
                        "PL103",
                        span,
                        format!(
                            "`Pforall` range `[{l}..{h}]` in `{owner}` is empty: the \
                             constraint never checks anything"
                        ),
                        Some("fix the bounds (low must not exceed high)".to_owned()),
                    );
                }
            }
            check_vacuous_ranges(body, span, owner, diags);
        }
        Expr::Binary(BinOp::And | BinOp::Or, a, b) => {
            check_vacuous_ranges(a, span, owner, diags);
            check_vacuous_ranges(b, span, owner, diags);
        }
        Expr::Unary(_, a) => check_vacuous_ranges(a, span, owner, diags),
        Expr::Ternary(c, t, f) => {
            check_vacuous_ranges(c, span, owner, diags);
            check_vacuous_ranges(t, span, owner, diags);
            check_vacuous_ranges(f, span, owner, diags);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::Registry;

    fn progress_of(src: &str) -> (Progress, Diagnostics) {
        let schema = crate::compile(src, &Registry::standard()).expect("compiles");
        let facts = Facts::compute(&schema);
        let sem = SemFacts::compute(&schema, &facts);
        let mut diags = Diagnostics::default();
        lint_progress(&schema, &facts, &sem, &mut diags);
        (array_progress(&schema, &facts, schema.source()), diags)
    }

    #[test]
    fn nonempty_element_proves_progress() {
        let (p, diags) = progress_of("Parray t { Puint32[] : Psep(',') && Pterm(Peor); };");
        assert_eq!(p, Progress::Proven);
        assert_eq!(diags.iter().count(), 0);
    }

    #[test]
    fn empty_capable_element_without_bounds_is_stuck() {
        let (p, diags) = progress_of("Parray t { Pstring(:'|':)[]; };");
        assert_eq!(p, Progress::Stuck);
        assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["PL101"]);
    }

    #[test]
    fn separator_demotes_to_guarded() {
        let (p, diags) =
            progress_of("Parray t { Pstring(:',':)[] : Psep(',') && Pterm(Peor); };");
        assert_eq!(p, Progress::Guarded);
        assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["PL102"]);
    }

    #[test]
    fn width_proven_element_downgrades_to_note() {
        // The element can match empty input syntactically, but the
        // constraint rejects empty matches: PL102 is replaced by the
        // note-level PL304.
        let (p, diags) = progress_of(
            "Ptypedef Pstring(:',':) word_t : word_t w => { w != \"\" };\n\
             Psource Parray t { word_t[] : Psep(',') && Pterm(Peor); };",
        );
        assert_eq!(p, Progress::Guarded);
        assert_eq!(diags.iter().count(), 0, "no warnings");
        assert_eq!(diags.iter_all().map(|d| d.code).collect::<Vec<_>>(), vec!["PL304"]);
    }

    #[test]
    fn sized_arrays_always_terminate() {
        let (p, diags) = progress_of("Parray t { Pstring(:'|':)[4] : Psep('|'); };");
        assert_eq!(p, Progress::Proven);
        assert_eq!(diags.iter().count(), 0);
    }
}
