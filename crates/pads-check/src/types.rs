//! Static typing for the constraint expression language.
//!
//! The original PADS compiler typechecked its C-like extension through
//! CKIT; this module is the analogue. It infers a coarse type for every
//! expression and rejects, at description-compile time, the mistakes that
//! would otherwise surface as run-time `EvalError`s: non-boolean
//! constraints, field projection on scalars or unknown fields, indexing
//! non-arrays, arithmetic on strings, and ill-typed function arguments.
//!
//! The type lattice is deliberately coarse, mirroring the evaluator's
//! loose numeric semantics: every numeric-ish value (integers, chars,
//! floats, dates, IPs, enum values) is `Num`.

use pads_runtime::{PrimKind, Registry};
use pads_syntax::ast::{BinOp, Expr, FuncDecl, Stmt, UnOp};

use crate::ir::{MemberIr, Schema, TypeId, TypeKind, TyUse};

/// Coarse expression types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ETy {
    /// Numbers: integers, chars, floats, dates, IPs, enum values.
    Num,
    /// Booleans.
    Bool,
    /// Strings.
    Str,
    /// No value (`Pvoid`).
    Unit,
    /// A struct value of the given declared type.
    Struct(TypeId),
    /// A union value (projectable through its branch names).
    Union(TypeId),
    /// A homogeneous sequence.
    Array(Box<ETy>),
    /// An optional value (transparent for comparison and projection).
    Opt(Box<ETy>),
    /// Unknown (user-registered base types with opaque kinds).
    Unknown,
}

impl std::fmt::Display for ETy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ETy::Num => f.write_str("number"),
            ETy::Bool => f.write_str("bool"),
            ETy::Str => f.write_str("string"),
            ETy::Unit => f.write_str("void"),
            ETy::Struct(_) => f.write_str("struct"),
            ETy::Union(_) => f.write_str("union"),
            ETy::Array(e) => write!(f, "array of {e}"),
            ETy::Opt(e) => write!(f, "optional {e}"),
            ETy::Unknown => f.write_str("unknown"),
        }
    }
}

impl ETy {
    /// Strips `Opt` layers (the evaluator projects through present
    /// options).
    fn deopt(&self) -> &ETy {
        match self {
            ETy::Opt(inner) => inner.deopt(),
            other => other,
        }
    }

    /// Whether values of this type compare with `==`/`<` against `other`.
    fn comparable(&self, other: &ETy) -> bool {
        let (a, b) = (self.deopt(), other.deopt());
        matches!(a, ETy::Unknown)
            || matches!(b, ETy::Unknown)
            || (a == &ETy::Num && b == &ETy::Num)
            || (a == &ETy::Str && b == &ETy::Str)
    }
}

/// A name → type scope for one expression context.
pub type Scope<'a> = Vec<(&'a str, ETy)>;

/// The typing engine: borrows the schema under construction plus the
/// registry, and accumulates error strings.
pub struct Typer<'a> {
    /// The (partially built) schema — earlier declarations only.
    pub schema: &'a Schema,
    /// The base-type registry.
    pub registry: &'a Registry,
}

impl<'a> Typer<'a> {
    /// The expression type of a base-type name.
    pub fn base_ety(&self, name: &str) -> ETy {
        match self.registry.get(name).map(|bt| bt.kind()) {
            Some(PrimKind::Bool) => ETy::Bool,
            Some(
                PrimKind::Char
                | PrimKind::Int
                | PrimKind::Uint
                | PrimKind::Float
                | PrimKind::Date
                | PrimKind::Ip,
            ) => ETy::Num,
            Some(PrimKind::String) => ETy::Str,
            Some(PrimKind::Unit) => ETy::Unit,
            Some(PrimKind::Bytes) | None => ETy::Unknown,
        }
    }

    /// The expression type of a resolved type use.
    pub fn tyuse_ety(&self, ty: &TyUse) -> ETy {
        match ty {
            TyUse::Base { name, .. } => self.base_ety(name),
            TyUse::Opt(inner) => ETy::Opt(Box::new(self.tyuse_ety(inner))),
            TyUse::Named { id, .. } => self.def_ety(*id),
        }
    }

    /// The expression type of a declared type.
    pub fn def_ety(&self, id: TypeId) -> ETy {
        match &self.schema.def(id).kind {
            TypeKind::Struct { .. } => ETy::Struct(id),
            TypeKind::Union { .. } => ETy::Union(id),
            TypeKind::Array { elem, .. } => ETy::Array(Box::new(self.tyuse_ety(elem))),
            TypeKind::Enum { .. } => ETy::Num,
            TypeKind::Typedef { base, .. } => self.tyuse_ety(base),
        }
    }

    /// The expression type named by a parameter/function type annotation.
    pub fn annot_ety(&self, name: &str) -> Option<ETy> {
        match name {
            "int" | "uint" | "char" | "float" => Some(ETy::Num),
            "bool" => Some(ETy::Bool),
            "string" => Some(ETy::Str),
            _ => {
                if let Some(id) = self.schema.type_id(name) {
                    Some(self.def_ety(id))
                } else if self.registry.contains(name) {
                    Some(self.base_ety(name))
                } else {
                    None
                }
            }
        }
    }

    fn field_ety(&self, id: TypeId, field: &str) -> Option<ETy> {
        match &self.schema.def(id).kind {
            TypeKind::Struct { members } => members.iter().find_map(|m| match m {
                MemberIr::Field(f) if f.name == field => Some(self.tyuse_ety(&f.ty)),
                _ => None,
            }),
            TypeKind::Union { branches, .. } => branches
                .iter()
                .find(|b| b.field.name == field)
                .map(|b| self.tyuse_ety(&b.field.ty)),
            TypeKind::Typedef { base, .. } => {
                if let TyUse::Named { id: inner, .. } = base {
                    self.field_ety(*inner, field)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Infers an expression's type; ill-typed sub-expressions append to
    /// `errors` and infer as [`ETy::Unknown`] so one mistake reports once.
    pub fn infer(&self, e: &Expr, scope: &Scope<'_>, errors: &mut Vec<String>) -> ETy {
        match e {
            Expr::Int(_) | Expr::Char(_) | Expr::Float(_) => ETy::Num,
            Expr::Str(_) => ETy::Str,
            Expr::Bool(_) => ETy::Bool,
            Expr::Ident(name) => {
                if let Some((_, t)) = scope.iter().rev().find(|(n, _)| n == name) {
                    return t.clone();
                }
                if self.schema.enum_variants.contains_key(name) {
                    return ETy::Num;
                }
                if self.schema.funcs.contains_key(name) {
                    errors.push(format!("function `{name}` used as a value"));
                    return ETy::Unknown;
                }
                // Unbound names are reported by the scope check.
                ETy::Unknown
            }
            Expr::Field(base, fname) => {
                let bt = self.infer(base, scope, errors);
                match bt.deopt() {
                    ETy::Struct(id) | ETy::Union(id) => match self.field_ety(*id, fname) {
                        Some(t) => t,
                        None => {
                            errors.push(format!(
                                "type `{}` has no field or branch `{fname}`",
                                self.schema.def(*id).name
                            ));
                            ETy::Unknown
                        }
                    },
                    ETy::Unknown => ETy::Unknown,
                    other => {
                        errors.push(format!("cannot project `.{fname}` from a {other}"));
                        ETy::Unknown
                    }
                }
            }
            Expr::Index(base, idx) => {
                let it = self.infer(idx, scope, errors);
                if !it.comparable(&ETy::Num) {
                    errors.push(format!("array index must be a number, found {it}"));
                }
                let bt = self.infer(base, scope, errors);
                match bt.deopt() {
                    ETy::Array(elem) => (**elem).clone(),
                    ETy::Unknown => ETy::Unknown,
                    other => {
                        errors.push(format!("cannot index into a {other}"));
                        ETy::Unknown
                    }
                }
            }
            Expr::Call(name, args) => {
                let Some(f) = self.schema.funcs.get(name) else {
                    return ETy::Unknown; // unknown calls reported elsewhere
                };
                for (p, a) in f.params.iter().zip(args) {
                    let at = self.infer(a, scope, errors);
                    if let Some(expect) = self.annot_ety(&p.ty) {
                        let ok = match (&expect, at.deopt()) {
                            (ETy::Struct(x), ETy::Struct(y)) | (ETy::Union(x), ETy::Union(y)) => {
                                x == y
                            }
                            (e, a) => e.comparable(a) || e == a,
                        };
                        if !ok {
                            errors.push(format!(
                                "argument `{}` of `{name}` expects {expect}, found {at}",
                                p.name
                            ));
                        }
                    }
                }
                self.annot_ety(&f.ret).unwrap_or(ETy::Unknown)
            }
            Expr::Unary(UnOp::Not, a) => {
                let t = self.infer(a, scope, errors);
                if t.deopt() != &ETy::Bool && t.deopt() != &ETy::Unknown {
                    errors.push(format!("`!` needs a bool, found {t}"));
                }
                ETy::Bool
            }
            Expr::Unary(UnOp::Neg, a) => {
                let t = self.infer(a, scope, errors);
                if !t.comparable(&ETy::Num) {
                    errors.push(format!("unary `-` needs a number, found {t}"));
                }
                ETy::Num
            }
            Expr::Binary(op @ (BinOp::And | BinOp::Or), a, b) => {
                for side in [a, b] {
                    let t = self.infer(side, scope, errors);
                    if t.deopt() != &ETy::Bool && t.deopt() != &ETy::Unknown {
                        errors.push(format!("`{}` needs bools, found {t}", op.symbol()));
                    }
                }
                ETy::Bool
            }
            Expr::Binary(op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), a, b) => {
                let ta = self.infer(a, scope, errors);
                let tb = self.infer(b, scope, errors);
                // Equality additionally allows bool == bool.
                let eq_bools = matches!(op, BinOp::Eq | BinOp::Ne)
                    && ta.deopt() == &ETy::Bool
                    && tb.deopt() == &ETy::Bool;
                if !ta.comparable(&tb) && !eq_bools {
                    errors.push(format!(
                        "`{}` cannot compare {ta} with {tb}",
                        op.symbol()
                    ));
                }
                ETy::Bool
            }
            Expr::Binary(op, a, b) => {
                for side in [a, b] {
                    let t = self.infer(side, scope, errors);
                    if !t.comparable(&ETy::Num) {
                        errors.push(format!(
                            "`{}` needs numbers, found {t}",
                            op.symbol()
                        ));
                    }
                }
                ETy::Num
            }
            Expr::Ternary(c, t, f) => {
                let ct = self.infer(c, scope, errors);
                if ct.deopt() != &ETy::Bool && ct.deopt() != &ETy::Unknown {
                    errors.push(format!("`?:` condition must be a bool, found {ct}"));
                }
                let tt = self.infer(t, scope, errors);
                let ft = self.infer(f, scope, errors);
                if tt == ft {
                    tt
                } else if tt.comparable(&ft) {
                    ETy::Num
                } else {
                    errors.push(format!("`?:` branches disagree: {tt} vs {ft}"));
                    ETy::Unknown
                }
            }
            Expr::Forall { var, lo, hi, body } => {
                for bound in [lo, hi] {
                    let t = self.infer(bound, scope, errors);
                    if !t.comparable(&ETy::Num) {
                        errors.push(format!("Pforall bounds must be numbers, found {t}"));
                    }
                }
                let mut inner = scope.clone();
                inner.push((var, ETy::Num));
                let bt = self.infer(body, &inner, errors);
                if bt.deopt() != &ETy::Bool && bt.deopt() != &ETy::Unknown {
                    errors.push(format!("Pforall body must be a bool, found {bt}"));
                }
                ETy::Bool
            }
        }
    }

    /// Requires `e` to be boolean (constraints, `Pwhere`, `Pended`).
    pub fn require_bool(&self, e: &Expr, scope: &Scope<'_>, errors: &mut Vec<String>) {
        let t = self.infer(e, scope, errors);
        if t.deopt() != &ETy::Bool && t.deopt() != &ETy::Unknown {
            errors.push(format!("constraint must be a bool, found {t}"));
        }
    }

    /// Requires `e` to be numeric (sizes, switch selectors).
    pub fn require_num(&self, e: &Expr, scope: &Scope<'_>, errors: &mut Vec<String>) {
        let t = self.infer(e, scope, errors);
        if !t.comparable(&ETy::Num) {
            errors.push(format!("expected a number, found {t}"));
        }
    }

    /// Typechecks a function body: conditions boolean, returned values
    /// matching the declared return type.
    pub fn check_func(&self, f: &FuncDecl, errors: &mut Vec<String>) {
        let mut scope: Scope<'_> = Vec::new();
        for p in &f.params {
            let t = self.annot_ety(&p.ty).unwrap_or(ETy::Unknown);
            scope.push((&p.name, t));
        }
        let ret = self.annot_ety(&f.ret).unwrap_or(ETy::Unknown);
        self.check_stmts(&f.body, &scope, &ret, errors);
    }

    fn check_stmts(
        &self,
        body: &[Stmt],
        scope: &Scope<'_>,
        ret: &ETy,
        errors: &mut Vec<String>,
    ) {
        for s in body {
            match s {
                Stmt::Return(e) => {
                    let t = self.infer(e, scope, errors);
                    let ok = match (ret, t.deopt()) {
                        (ETy::Unknown, _) | (_, ETy::Unknown) => true,
                        (r, v) => r == v || r.comparable(v),
                    };
                    if !ok {
                        errors.push(format!("return type mismatch: declared {ret}, found {t}"));
                    }
                }
                Stmt::If { cond, then_body, else_body } => {
                    let ct = self.infer(cond, scope, errors);
                    if ct.deopt() != &ETy::Bool && ct.deopt() != &ETy::Unknown {
                        errors.push(format!("`if` condition must be a bool, found {ct}"));
                    }
                    self.check_stmts(then_body, scope, ret, errors);
                    self.check_stmts(else_body, scope, ret, errors);
                }
            }
        }
    }
}
