//! The checked intermediate representation (`Schema`).
//!
//! A `Schema` is what the interpreter, code generator, tools, and data
//! generator all consume: every type reference is resolved either to a base
//! type in the runtime [`Registry`](pads_runtime::Registry) or to an earlier
//! declaration in the same description, and all structural rules have been
//! verified.

use std::collections::HashMap;

use pads_syntax::ast::{CaseLabel, Expr, FuncDecl, Literal, Param};
use pads_syntax::Span;

/// Index of a type in [`Schema::types`].
pub type TypeId = usize;

/// A resolved type use: where a description says `Pstring(:'|':)` or
/// `entry_t`, the IR records which world the name lives in.
#[derive(Debug, Clone, PartialEq)]
pub enum TyUse {
    /// A runtime base type with its parameter expressions.
    Base {
        /// Registry name, e.g. `"Puint32"`.
        name: String,
        /// Parameter expressions (evaluated at parse time).
        args: Vec<Expr>,
    },
    /// A declared type with its parameter expressions.
    Named {
        /// Index into [`Schema::types`].
        id: TypeId,
        /// Arguments for the declaration's parameters.
        args: Vec<Expr>,
    },
    /// `Popt T`.
    Opt(Box<TyUse>),
}

/// A named field with an optional constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldIr {
    /// Field name.
    pub name: String,
    /// Resolved type.
    pub ty: TyUse,
    /// Constraint, with earlier fields and the field itself in scope.
    pub constraint: Option<Expr>,
    /// Source span of the field in the description.
    pub span: Span,
}

/// A struct member.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberIr {
    /// Literal that must appear in the data.
    Lit(Literal),
    /// Named field.
    Field(FieldIr),
}

/// A union branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchIr {
    /// Case label in switched unions.
    pub case: Option<CaseLabel>,
    /// The branch's field.
    pub field: FieldIr,
}

/// Body of a checked type definition.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeKind {
    /// Fixed sequence of members.
    Struct {
        /// Members in order.
        members: Vec<MemberIr>,
    },
    /// Alternatives (ordered or switched).
    Union {
        /// Switch selector, if any.
        switch: Option<Expr>,
        /// Branches in order.
        branches: Vec<BranchIr>,
    },
    /// Homogeneous sequence.
    Array {
        /// Element type.
        elem: TyUse,
        /// Separator literal between elements.
        sep: Option<Literal>,
        /// Terminating literal (`Peor`/`Peof`/char/string/regex).
        term: Option<Literal>,
        /// Termination predicate over the parsed prefix.
        ended: Option<Expr>,
        /// Fixed size expression.
        size: Option<Expr>,
    },
    /// Fixed collection of data literals.
    Enum {
        /// Variant names.
        variants: Vec<String>,
    },
    /// Constrained renaming of another type.
    Typedef {
        /// Underlying type.
        base: TyUse,
        /// Name binding the value in `pred`.
        var: Option<String>,
        /// The constraint.
        pred: Option<Expr>,
    },
}

/// A checked type definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// Declared name.
    pub name: String,
    /// Value parameters.
    pub params: Vec<Param>,
    /// `Precord` annotation.
    pub is_record: bool,
    /// `Psource` annotation.
    pub is_source: bool,
    /// `Pwhere` clause.
    pub where_clause: Option<Expr>,
    /// The body.
    pub kind: TypeKind,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// A checked description: resolved types, functions, and the source type.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// Type definitions in declaration order.
    pub types: Vec<TypeDef>,
    /// Predicate functions by name.
    pub funcs: HashMap<String, FuncDecl>,
    /// Enum variant name → (enum type, variant index), global like C enums.
    pub enum_variants: HashMap<String, (TypeId, usize)>,
    by_name: HashMap<String, TypeId>,
    source: Option<TypeId>,
}

impl Schema {
    pub(crate) fn insert(&mut self, def: TypeDef) -> TypeId {
        let id = self.types.len();
        self.by_name.insert(def.name.clone(), id);
        self.types.push(def);
        id
    }

    pub(crate) fn set_source(&mut self, id: TypeId) {
        self.source = Some(id);
    }

    /// Looks up a type id by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// The definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids only come from this schema).
    pub fn def(&self, id: TypeId) -> &TypeDef {
        &self.types[id]
    }

    /// Looks up a definition by name.
    pub fn def_by_name(&self, name: &str) -> Option<&TypeDef> {
        self.type_id(name).map(|id| self.def(id))
    }

    /// The id of the `Psource` type (or the last declaration).
    ///
    /// # Panics
    ///
    /// Panics when the schema has no types; `check` rejects empty
    /// descriptions, so schemas in the wild always have a source.
    #[allow(clippy::expect_used)] // `check` rejects empty descriptions
    pub fn source(&self) -> TypeId {
        self.source.expect("checked schema has a source type")
    }

    /// The definition of the source type.
    pub fn source_def(&self) -> &TypeDef {
        self.def(self.source())
    }
}
