//! Schema-evolution diffing (`pads diff old.pads new.pads`).
//!
//! Compares two checked schemas *structurally* — starting at the two
//! source types and matching fields by name, so type renames alone never
//! count as a change — and classifies every difference on the evolution
//! lattice:
//!
//! ```text
//! compatible  <  widens  <  narrows  <  breaks
//! ```
//!
//! * **compatible** — every datum the old description accepts parses
//!   identically under the new one (e.g. an added `Popt` field).
//! * **widens** — the new description accepts a superset of the old data
//!   language (wider value range, new union arm, field became optional).
//! * **narrows** — some old-valid data is now rejected (tightened
//!   constraint, optional field became required); readers keep working,
//!   in-flight data may not.
//! * **breaks** — the framing itself changed (field removed or
//!   reordered, literal changed, shape changed): old data misparses.
//!
//! Every finding carries a stable `PD0xx` code and a field-path
//! provenance (`entry_t.response`). Width/value claims come from the
//! [`lint::facts`](crate::lint::facts) interval engine: `widens` and
//! `narrows` are only reported when the direction is *provable*; a
//! changed constraint the intervals cannot decide is conservatively
//! `breaks` ([`PD307`](CODES)).
//!
//! This is the static-safety gate for hot-reloading schema registries
//! (docs/EVOLUTION.md): a daemon may swap in a replacement description
//! only when the verdict is `compatible` or `widens`.

use std::collections::HashSet;

use pads_syntax::ast::Expr;

use crate::ir::{BranchIr, FieldIr, MemberIr, Schema, TypeId, TypeKind, TyUse};
use crate::lint::facts::{self, SemFacts, ValueInterval};
use crate::lint::firstset::Facts;

/// Overall compatibility class of a change, ordered from harmless to
/// fatal; a report's verdict is the maximum over its findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Old data parses identically under the new description.
    Compatible,
    /// The new description accepts a superset of the old data language.
    Widens,
    /// Some old-valid data is rejected by the new description.
    Narrows,
    /// Old data misparses: the framing or shape changed.
    Breaks,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Compatible => "compatible",
            Verdict::Widens => "widens",
            Verdict::Narrows => "narrows",
            Verdict::Breaks => "breaks",
        })
    }
}

/// The catalogue of evolution codes: `(code, verdict, summary)`.
/// `docs/EVOLUTION.md` documents each with an example.
pub const CODES: &[(&str, Verdict, &str)] = &[
    ("PD101", Verdict::Compatible, "added field is optional; old data parses unchanged"),
    ("PD102", Verdict::Widens, "value range widened"),
    ("PD103", Verdict::Widens, "union arm or enum variant added"),
    ("PD104", Verdict::Widens, "field became optional"),
    ("PD201", Verdict::Narrows, "value range narrowed"),
    ("PD202", Verdict::Narrows, "optional field became required"),
    ("PD301", Verdict::Breaks, "field removed"),
    ("PD302", Verdict::Breaks, "fields or alternatives reordered"),
    ("PD303", Verdict::Breaks, "union arm or enum variant removed"),
    ("PD304", Verdict::Breaks, "required field added"),
    ("PD305", Verdict::Breaks, "type shape or framing changed"),
    ("PD306", Verdict::Breaks, "literal sequence changed"),
    ("PD307", Verdict::Breaks, "constraint changed with unprovable effect"),
];

/// The verdict class of an evolution code.
///
/// # Panics
///
/// Panics if `code` is not in [`CODES`] (the differ only emits registered
/// codes; this is checked by tests).
#[allow(clippy::expect_used)]
pub fn code_verdict(code: &str) -> Verdict {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, v, _)| *v)
        .expect("evolution code is registered in CODES")
}

/// One classified difference between the two schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable evolution code (`"PD101"`, …).
    pub code: &'static str,
    /// The code's verdict class.
    pub verdict: Verdict,
    /// Field-path provenance in the *new* schema's names
    /// (`entry_t.response`).
    pub path: String,
    /// What changed.
    pub message: String,
}

/// Every classified difference, plus the overall verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffReport {
    /// Findings sorted by (path, code).
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// The maximum verdict over all findings ([`Verdict::Compatible`]
    /// when the schemas match).
    pub fn verdict(&self) -> Verdict {
        self.findings.iter().map(|f| f.verdict).max().unwrap_or(Verdict::Compatible)
    }

    /// Whether the change is unsafe to hot-reload (verdict `breaks`).
    pub fn breaks(&self) -> bool {
        self.verdict() == Verdict::Breaks
    }

    /// Renders one `CODE verdict path: message` line per finding plus a
    /// final `verdict:` line — the stable text format golden tests and
    /// the CLI print.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{} {} {}: {}\n", f.code, f.verdict, f.path, f.message));
        }
        out.push_str(&format!("verdict: {}\n", self.verdict()));
        out
    }
}

/// Diffs two checked schemas, matching structurally from their source
/// types.
pub fn diff_schemas(old: &Schema, new: &Schema) -> DiffReport {
    let old_firsts = Facts::compute(old);
    let new_firsts = Facts::compute(new);
    let mut d = Differ {
        old,
        new,
        old_sem: SemFacts::compute(old, &old_firsts),
        new_sem: SemFacts::compute(new, &new_firsts),
        visited: HashSet::new(),
        findings: Vec::new(),
    };
    d.diff_funcs();
    let root = new.source_def().name.clone();
    d.diff_def(old.source(), new.source(), &root);
    d.findings.sort_by(|a, b| (&a.path, a.code).cmp(&(&b.path, b.code)));
    DiffReport { findings: d.findings }
}

struct Differ<'a> {
    old: &'a Schema,
    new: &'a Schema,
    old_sem: SemFacts,
    new_sem: SemFacts,
    visited: HashSet<(TypeId, TypeId)>,
    findings: Vec<Finding>,
}

impl Differ<'_> {
    fn push(&mut self, code: &'static str, path: &str, message: impl Into<String>) {
        self.findings.push(Finding {
            code,
            verdict: code_verdict(code),
            path: path.to_owned(),
            message: message.into(),
        });
    }

    /// Predicate functions feed constraints; a changed body silently
    /// changes which data passes, and the intervals cannot see through
    /// calls — conservatively a break.
    fn diff_funcs(&mut self) {
        let mut names: Vec<&String> = self
            .old
            .funcs
            .keys()
            .filter(|n| self.new.funcs.contains_key(*n))
            .collect();
        names.sort();
        for name in names {
            let (o, n) = (&self.old.funcs[name], &self.new.funcs[name]);
            if (&o.ret, &o.params, &o.body) != (&n.ret, &n.params, &n.body) {
                self.push(
                    "PD307",
                    name,
                    "predicate function body changed: the effect on accepted data \
                     cannot be proved",
                );
            }
        }
    }

    fn diff_def(&mut self, old_id: TypeId, new_id: TypeId, path: &str) {
        if !self.visited.insert((old_id, new_id)) {
            return;
        }
        let od = self.old.def(old_id);
        let nd = self.new.def(new_id);
        if od.is_record != nd.is_record {
            self.push(
                "PD305",
                path,
                if nd.is_record {
                    "type gained a Precord annotation: record framing changed"
                } else {
                    "type lost its Precord annotation: record framing changed"
                },
            );
        }
        if od.params != nd.params {
            self.push("PD305", path, "type parameter list changed");
        }
        if od.where_clause != nd.where_clause {
            self.push(
                "PD307",
                path,
                "Pwhere clause changed: the effect on accepted data cannot be proved",
            );
        }
        // Clones keep the borrow checker happy across the recursive walk.
        let (ok, nk) = (od.kind.clone(), nd.kind.clone());
        match (&ok, &nk) {
            (TypeKind::Struct { members: om }, TypeKind::Struct { members: nm }) => {
                self.diff_struct(om, nm, path);
            }
            (
                TypeKind::Union { switch: os, branches: ob },
                TypeKind::Union { switch: ns, branches: nb },
            ) => {
                if os != ns {
                    self.push("PD305", path, "Pswitch selector changed");
                }
                self.diff_union(ob, nb, path);
            }
            (TypeKind::Array { .. }, TypeKind::Array { .. }) => {
                self.diff_array(&ok, &nk, path);
            }
            (TypeKind::Enum { variants: ov }, TypeKind::Enum { variants: nv }) => {
                self.diff_enum(ov, nv, path);
            }
            (
                TypeKind::Typedef { base: ob, var: ovar, pred: op },
                TypeKind::Typedef { base: nb, var: nvar, pred: np },
            ) => {
                self.diff_tyuse(ob, nb, path);
                if (ovar, op) != (nvar, np) {
                    self.diff_constraint(
                        self.old_sem.value_of_tyuse(ob),
                        ovar.as_deref(),
                        op.as_ref(),
                        self.new_sem.value_of_tyuse(nb),
                        nvar.as_deref(),
                        np.as_ref(),
                        path,
                    );
                }
            }
            _ => {
                self.push(
                    "PD305",
                    path,
                    format!(
                        "type shape changed from {} to {}",
                        kind_name(&ok),
                        kind_name(&nk)
                    ),
                );
            }
        }
    }

    fn diff_struct(&mut self, om: &[MemberIr], nm: &[MemberIr], path: &str) {
        let of: Vec<&FieldIr> = fields(om);
        let nf: Vec<&FieldIr> = fields(nm);
        for f in &of {
            if !nf.iter().any(|g| g.name == f.name) {
                self.push(
                    "PD301",
                    &format!("{path}.{}", f.name),
                    "field removed: data containing it no longer parses",
                );
            }
        }
        for f in &nf {
            if !of.iter().any(|g| g.name == f.name) {
                if matches!(f.ty, TyUse::Opt(_)) {
                    self.push(
                        "PD101",
                        &format!("{path}.{}", f.name),
                        "added field is optional (Popt): old data parses unchanged",
                    );
                } else {
                    self.push(
                        "PD304",
                        &format!("{path}.{}", f.name),
                        "required field added: old data lacks it and misparses",
                    );
                }
            }
        }
        let common_old: Vec<&str> = of
            .iter()
            .filter(|f| nf.iter().any(|g| g.name == f.name))
            .map(|f| f.name.as_str())
            .collect();
        let common_new: Vec<&str> = nf
            .iter()
            .filter(|f| of.iter().any(|g| g.name == f.name))
            .map(|f| f.name.as_str())
            .collect();
        if common_old != common_new {
            self.push(
                "PD302",
                path,
                format!(
                    "fields reordered: old order [{}], new order [{}]",
                    common_old.join(", "),
                    common_new.join(", ")
                ),
            );
            return; // field-by-field comparison is meaningless once reordered
        }
        for name in common_old {
            // Both lookups succeed: `name` came from the common set.
            let (Some(o), Some(n)) =
                (of.iter().find(|f| f.name == name), nf.iter().find(|f| f.name == name))
            else {
                continue;
            };
            self.diff_field(o, n, &format!("{path}.{name}"));
        }
        let ol: Vec<_> = om.iter().filter(|m| matches!(m, MemberIr::Lit(_))).collect();
        let nl: Vec<_> = nm.iter().filter(|m| matches!(m, MemberIr::Lit(_))).collect();
        if ol != nl {
            self.push(
                "PD306",
                path,
                "literal sequence changed: old data is framed differently",
            );
        }
    }

    fn diff_union(&mut self, ob: &[BranchIr], nb: &[BranchIr], path: &str) {
        for b in ob {
            if !nb.iter().any(|c| c.field.name == b.field.name) {
                self.push(
                    "PD303",
                    &format!("{path}.{}", b.field.name),
                    "union arm removed: data matching it no longer parses",
                );
            }
        }
        for b in nb {
            if !ob.iter().any(|c| c.field.name == b.field.name) {
                self.push(
                    "PD103",
                    &format!("{path}.{}", b.field.name),
                    "union arm added: the new description accepts more shapes",
                );
            }
        }
        let common_old: Vec<&str> = ob
            .iter()
            .filter(|b| nb.iter().any(|c| c.field.name == b.field.name))
            .map(|b| b.field.name.as_str())
            .collect();
        let common_new: Vec<&str> = nb
            .iter()
            .filter(|b| ob.iter().any(|c| c.field.name == b.field.name))
            .map(|b| b.field.name.as_str())
            .collect();
        if common_old != common_new {
            self.push(
                "PD302",
                path,
                format!(
                    "union arms reordered: old order [{}], new order [{}] — arm \
                     order decides ambiguous inputs",
                    common_old.join(", "),
                    common_new.join(", ")
                ),
            );
            return;
        }
        for name in common_old {
            let (Some(o), Some(n)) = (
                ob.iter().find(|b| b.field.name == name),
                nb.iter().find(|b| b.field.name == name),
            ) else {
                continue;
            };
            let arm_path = format!("{path}.{name}");
            if o.case != n.case {
                self.push("PD305", &arm_path, "Pcase label changed");
            }
            self.diff_field(&o.field, &n.field, &arm_path);
        }
    }

    fn diff_array(&mut self, ok: &TypeKind, nk: &TypeKind, path: &str) {
        let (
            TypeKind::Array { elem: oe, sep: osep, term: oterm, ended: oend, size: osz },
            TypeKind::Array { elem: ne, sep: nsep, term: nterm, ended: nend, size: nsz },
        ) = (ok, nk)
        else {
            return;
        };
        self.diff_tyuse(oe, ne, &format!("{path}[]"));
        if osep != nsep {
            self.push("PD305", path, "array separator changed");
        }
        if oterm != nterm {
            self.push("PD305", path, "array terminator changed");
        }
        if osz != nsz {
            self.push("PD305", path, "array size expression changed");
        }
        if oend != nend {
            self.push(
                "PD307",
                path,
                "Pended predicate changed: the effect on accepted data cannot be proved",
            );
        }
    }

    fn diff_enum(&mut self, ov: &[String], nv: &[String], path: &str) {
        for v in ov {
            if !nv.contains(v) {
                self.push(
                    "PD303",
                    &format!("{path}.{v}"),
                    "enum variant removed: data matching it no longer parses",
                );
            }
        }
        for v in nv {
            if !ov.contains(v) {
                self.push(
                    "PD103",
                    &format!("{path}.{v}"),
                    "enum variant added: the new description accepts more values",
                );
            }
        }
        let common_old: Vec<&str> =
            ov.iter().filter(|v| nv.contains(v)).map(String::as_str).collect();
        let common_new: Vec<&str> =
            nv.iter().filter(|v| ov.contains(v)).map(String::as_str).collect();
        if common_old != common_new {
            self.push(
                "PD302",
                path,
                "enum variants reordered: match priority on shared prefixes changed",
            );
        }
    }

    fn diff_field(&mut self, o: &FieldIr, n: &FieldIr, path: &str) {
        self.diff_tyuse(&o.ty, &n.ty, path);
        if o.constraint != n.constraint {
            self.diff_constraint(
                self.old_sem.value_of_tyuse(&o.ty),
                Some(&o.name),
                o.constraint.as_ref(),
                self.new_sem.value_of_tyuse(&n.ty),
                Some(&n.name),
                n.constraint.as_ref(),
                path,
            );
        }
    }

    fn diff_tyuse(&mut self, o: &TyUse, n: &TyUse, path: &str) {
        match (o, n) {
            (TyUse::Opt(oi), TyUse::Opt(ni)) => self.diff_tyuse(oi, ni, path),
            (_, TyUse::Opt(ni)) => {
                self.push(
                    "PD104",
                    path,
                    "field became optional: old data parses, absence is now legal",
                );
                self.diff_tyuse(o, ni, path);
            }
            (TyUse::Opt(oi), _) => {
                self.push(
                    "PD202",
                    path,
                    "optional field became required: old data without it no longer parses",
                );
                self.diff_tyuse(oi, n, path);
            }
            (
                TyUse::Named { id: oid, args: oa },
                TyUse::Named { id: nid, args: na },
            ) => {
                if oa != na {
                    self.push("PD305", path, "type arguments changed");
                }
                self.diff_def(*oid, *nid, path);
            }
            (
                TyUse::Base { name: on, args: oa },
                TyUse::Base { name: nn, args: na },
            ) => {
                if on == nn && oa == na {
                    return;
                }
                self.diff_base(o, n, on, nn, path);
            }
            _ => {
                self.push("PD305", path, "type shape changed");
            }
        }
    }

    /// A changed base type can still be a provable widening/narrowing:
    /// same byte-width interval and comparable integer value ranges
    /// (e.g. `Puint8` → `Puint16`, both variable-width ASCII).
    fn diff_base(&mut self, o: &TyUse, n: &TyUse, on: &str, nn: &str, path: &str) {
        let same_width = self.old_sem.width_of_tyuse(o) == self.new_sem.width_of_tyuse(n);
        let values = (self.old_sem.value_of_tyuse(o), self.new_sem.value_of_tyuse(n));
        if let (true, (Some(ov), Some(nv))) = (same_width, values) {
            if nv == ov {
                return; // spelled differently, provably the same values
            }
            if nv.exact && nv.contains(ov) {
                self.push(
                    "PD102",
                    path,
                    format!(
                        "base type changed from {on} to {nn}: value range widened \
                         from {} to {}",
                        ov.describe(),
                        nv.describe()
                    ),
                );
                return;
            }
            if ov.exact && ov.contains(nv) {
                self.push(
                    "PD201",
                    path,
                    format!(
                        "base type changed from {on} to {nn}: value range narrowed \
                         from {} to {}",
                        ov.describe(),
                        nv.describe()
                    ),
                );
                return;
            }
        }
        self.push("PD305", path, format!("base type changed from {on} to {nn}"));
    }

    /// Called when the predicates differ syntactically; decides widens /
    /// narrows / breaks from the refined value intervals.
    #[allow(clippy::too_many_arguments)]
    fn diff_constraint(
        &mut self,
        ob: Option<ValueInterval>,
        ovar: Option<&str>,
        opred: Option<&Expr>,
        nb: Option<ValueInterval>,
        nvar: Option<&str>,
        npred: Option<&Expr>,
        path: &str,
    ) {
        let (Some(ob), Some(nb)) = (ob, nb) else {
            self.push(
                "PD307",
                path,
                "constraint changed on a non-integer type: the effect on accepted \
                 data cannot be proved",
            );
            return;
        };
        let oi = opred.map_or(ob, |p| facts::refine_value(ob, ovar, p));
        let ni = npred.map_or(nb, |p| facts::refine_value(nb, nvar, p));
        // a ⊆ b, treating the empty interval as a subset of everything.
        let subset = |a: ValueInterval, b: ValueInterval| a.is_empty() || b.contains(a);
        if ni.exact && oi == ni {
            return; // reformulated but provably identical
        }
        if ni.exact && subset(oi, ni) {
            self.push(
                "PD102",
                path,
                format!("value range widened from {} to {}", oi.describe(), ni.describe()),
            );
        } else if oi.exact && subset(ni, oi) {
            self.push(
                "PD201",
                path,
                format!("value range narrowed from {} to {}", oi.describe(), ni.describe()),
            );
        } else {
            self.push(
                "PD307",
                path,
                format!(
                    "constraint changed but neither direction is provable ({} vs {})",
                    oi.describe(),
                    ni.describe()
                ),
            );
        }
    }
}

fn fields(members: &[MemberIr]) -> Vec<&FieldIr> {
    members
        .iter()
        .filter_map(|m| match m {
            MemberIr::Field(f) => Some(f),
            MemberIr::Lit(_) => None,
        })
        .collect()
}

fn kind_name(k: &TypeKind) -> &'static str {
    match k {
        TypeKind::Struct { .. } => "Pstruct",
        TypeKind::Union { .. } => "Punion",
        TypeKind::Array { .. } => "Parray",
        TypeKind::Enum { .. } => "Penum",
        TypeKind::Typedef { .. } => "Ptypedef",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::Registry;

    fn diff(old: &str, new: &str) -> DiffReport {
        let old = crate::compile(old, &Registry::standard()).expect("old compiles");
        let new = crate::compile(new, &Registry::standard()).expect("new compiles");
        diff_schemas(&old, &new)
    }

    fn codes(r: &DiffReport) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn identical_schemas_are_compatible() {
        let src = "Psource Pstruct t { Puint8 a; ','; Puint8 b; };";
        let r = diff(src, src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.verdict(), Verdict::Compatible);
    }

    #[test]
    fn type_rename_alone_is_compatible() {
        let r = diff(
            "Pstruct inner_t { Puint8 x; };\nPsource Pstruct t { inner_t i; };",
            "Pstruct renamed_t { Puint8 x; };\nPsource Pstruct t { renamed_t i; };",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn added_optional_field_is_compatible() {
        let r = diff(
            "Psource Pstruct t { Puint8 a; ','; Puint8 b; };",
            "Psource Pstruct t { Puint8 a; ','; Puint8 b; Popt Pchar flag; };",
        );
        assert_eq!(codes(&r), vec!["PD101"]);
        assert_eq!(r.verdict(), Verdict::Compatible);
    }

    #[test]
    fn widened_range_widens() {
        let r = diff(
            "Ptypedef Puint16_FW(:3:) resp_t : resp_t x => { 100 <= x && x < 600 };\n\
             Psource Pstruct t { resp_t r; };",
            "Ptypedef Puint16_FW(:3:) resp_t : resp_t x => { 100 <= x && x < 700 };\n\
             Psource Pstruct t { resp_t r; };",
        );
        assert_eq!(codes(&r), vec!["PD102"]);
        assert_eq!(r.verdict(), Verdict::Widens);
    }

    #[test]
    fn wider_base_type_widens() {
        let r = diff(
            "Psource Pstruct t { Puint8 n; };",
            "Psource Pstruct t { Puint16 n; };",
        );
        assert_eq!(codes(&r), vec!["PD102"]);
        assert_eq!(r.verdict(), Verdict::Widens);
    }

    #[test]
    fn tightened_constraint_narrows() {
        let r = diff(
            "Psource Pstruct t { Puint8 n : n < 100; };",
            "Psource Pstruct t { Puint8 n : n < 50; };",
        );
        assert_eq!(codes(&r), vec!["PD201"]);
        assert_eq!(r.verdict(), Verdict::Narrows);
    }

    #[test]
    fn removed_union_arm_breaks() {
        let r = diff(
            "Psource Punion u_t { Pip ip; Phostname host; };",
            "Psource Punion u_t { Pip ip; };",
        );
        assert_eq!(codes(&r), vec!["PD303"]);
        assert_eq!(r.verdict(), Verdict::Breaks);
        assert!(r.breaks());
    }

    #[test]
    fn reordered_fields_break() {
        let r = diff(
            "Psource Pstruct t { Puint8 a; ','; Puint8 b; };",
            "Psource Pstruct t { Puint8 b; ','; Puint8 a; };",
        );
        assert_eq!(codes(&r), vec!["PD302"]);
        assert_eq!(r.verdict(), Verdict::Breaks);
    }

    #[test]
    fn changed_literal_breaks() {
        let r = diff(
            "Psource Pstruct t { Puint8 a; ','; Puint8 b; };",
            "Psource Pstruct t { Puint8 a; '|'; Puint8 b; };",
        );
        assert_eq!(codes(&r), vec!["PD306"]);
    }

    #[test]
    fn binary_width_change_is_a_break_not_a_widening() {
        // Pb_uint16 holds a superset of Pb_uint8's values, but the field
        // is one byte wider: every later field misframes.
        let r = diff(
            "Psource Pstruct t { Pb_uint8 n; };",
            "Psource Pstruct t { Pb_uint16 n; };",
        );
        assert_eq!(codes(&r), vec!["PD305"]);
        assert_eq!(r.verdict(), Verdict::Breaks);
    }

    #[test]
    fn changed_function_body_breaks() {
        let r = diff(
            "bool chk(int v) { return v < 10; };\n\
             Psource Pstruct t { Puint8 n : chk(n); };",
            "bool chk(int v) { return v < 20; };\n\
             Psource Pstruct t { Puint8 n : chk(n); };",
        );
        assert_eq!(codes(&r), vec!["PD307"]);
        assert_eq!(r.verdict(), Verdict::Breaks);
    }

    #[test]
    fn enum_variant_added_widens_removed_breaks() {
        let r = diff(
            "Penum m_t { GET, PUT };\nPsource Pstruct t { m_t m; };",
            "Penum m_t { GET, PUT, POST };\nPsource Pstruct t { m_t m; };",
        );
        assert_eq!(codes(&r), vec!["PD103"]);
        assert_eq!(r.verdict(), Verdict::Widens);
        let r = diff(
            "Penum m_t { GET, PUT };\nPsource Pstruct t { m_t m; };",
            "Penum m_t { GET };\nPsource Pstruct t { m_t m; };",
        );
        assert_eq!(codes(&r), vec!["PD303"]);
    }

    #[test]
    fn optionality_changes_classify() {
        let r = diff(
            "Psource Pstruct t { Puint8 a; Popt Pchar f; };",
            "Psource Pstruct t { Puint8 a; Pchar f; };",
        );
        assert_eq!(codes(&r), vec!["PD202"]);
        assert_eq!(r.verdict(), Verdict::Narrows);
        let r = diff(
            "Psource Pstruct t { Puint8 a; Pchar f; };",
            "Psource Pstruct t { Puint8 a; Popt Pchar f; };",
        );
        assert_eq!(codes(&r), vec!["PD104"]);
        assert_eq!(r.verdict(), Verdict::Widens);
    }

    #[test]
    fn every_emitted_code_is_registered() {
        for (code, _, _) in CODES {
            let _ = code_verdict(code);
        }
    }

    #[test]
    fn verdict_lattice_orders() {
        assert!(Verdict::Compatible < Verdict::Widens);
        assert!(Verdict::Widens < Verdict::Narrows);
        assert!(Verdict::Narrows < Verdict::Breaks);
    }
}
