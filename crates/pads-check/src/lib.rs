//! Semantic analysis for PADS descriptions.
//!
//! Turns a parsed [`pads_syntax::Program`] into a checked
//! [`ir::Schema`], enforcing the language's static rules:
//!
//! * types are declared before use (§3 of the paper: "types are declared
//!   before they are used"), which also rules out recursion;
//! * base-type references exist in the runtime registry with the right
//!   number of parameters; declared-type references pass the right number
//!   of arguments;
//! * field and branch names are unique per type, enum variants unique
//!   per description;
//! * constraint expressions only mention names in scope — earlier fields
//!   (and the constrained field itself), type parameters, enum variants,
//!   functions, and the array pseudo-variables `elts`/`length`;
//! * switched unions label every branch, ordered unions label none;
//! * regular-expression literals compile.
//!
//! # Examples
//!
//! ```
//! use pads_runtime::Registry;
//!
//! let schema = pads_check::compile(
//!     r#"
//!     Pstruct pair_t {
//!         Puint32 lo;
//!         ','; Puint32 hi : lo <= hi;
//!     };
//!     "#,
//!     &Registry::standard(),
//! )?;
//! assert_eq!(schema.source_def().name, "pair_t");
//! # Ok::<(), pads_check::CompileError>(())
//! ```

pub mod diff;
pub mod ir;
pub mod lint;
pub mod types;

use std::collections::HashSet;

use pads_runtime::Registry;
use pads_syntax::ast::{
    CaseLabel, Decl, DeclKind, Expr, Literal, Member, Program, Stmt, TyExpr,
};
use pads_syntax::{Span, SyntaxError};

use ir::{BranchIr, FieldIr, MemberIr, Schema, TypeDef, TypeKind, TyUse};
use types::{ETy, Scope, Typer};

/// A single semantic error with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    msg: String,
    span: Span,
}

impl CheckError {
    fn new(msg: impl Into<String>, span: Span) -> CheckError {
        CheckError { msg: msg.into(), span }
    }

    /// Where the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The error message without the span prefix.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "check error at {}: {}", self.span, self.msg)
    }
}

impl std::error::Error for CheckError {}

/// Error from the combined parse+check pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The description failed to parse.
    Syntax(SyntaxError),
    /// The description parsed but failed the semantic checks.
    Check(Vec<CheckError>),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Syntax(e) => write!(f, "{e}"),
            CompileError::Check(errs) => {
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<SyntaxError> for CompileError {
    fn from(e: SyntaxError) -> Self {
        CompileError::Syntax(e)
    }
}

/// Parses and checks a description in one step.
///
/// # Errors
///
/// [`CompileError::Syntax`] for parse failures, [`CompileError::Check`]
/// with every detected semantic error otherwise.
pub fn compile(src: &str, registry: &Registry) -> Result<Schema, CompileError> {
    let prog = pads_syntax::parse(src)?;
    check(&prog, registry).map_err(CompileError::Check)
}

/// Parses, checks, and lints a description in one step.
///
/// On success the returned [`lint::Diagnostics`] holds every lint finding
/// (sorted by span and code); semantic errors still abort compilation.
///
/// # Errors
///
/// Same contract as [`compile`].
pub fn compile_with_lints(
    src: &str,
    registry: &Registry,
) -> Result<(Schema, lint::Diagnostics), CompileError> {
    let schema = compile(src, registry)?;
    let diags = lint::lint_schema(&schema);
    Ok((schema, diags))
}

/// Checks a parsed program against a base-type registry.
///
/// # Errors
///
/// Every semantic error found (the checker does not stop at the first).
pub fn check(prog: &Program, registry: &Registry) -> Result<Schema, Vec<CheckError>> {
    let mut ck = Checker { registry, schema: Schema::default(), errors: Vec::new() };
    ck.run(prog);
    if ck.errors.is_empty() {
        Ok(ck.schema)
    } else {
        // Deterministic output: golden tests and CI logs rely on a stable
        // order regardless of the internal traversal.
        ck.errors.sort_by(|a, b| {
            (a.span.start, a.span.end, &a.msg).cmp(&(b.span.start, b.span.end, &b.msg))
        });
        Err(ck.errors)
    }
}

struct Checker<'r> {
    registry: &'r Registry,
    schema: Schema,
    errors: Vec<CheckError>,
}

/// What an expression context demands of the expression's type.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Require {
    Bool,
    Num,
    Any,
}

impl<'r> Checker<'r> {
    fn err(&mut self, msg: impl Into<String>, span: Span) {
        self.errors.push(CheckError::new(msg, span));
    }

    fn typer(&self) -> Typer<'_> {
        Typer { schema: &self.schema, registry: self.registry }
    }

    /// Name-scope check plus static typing for one expression.
    fn check_expr_typed(
        &mut self,
        e: &Expr,
        scope: &Scope<'_>,
        span: Span,
        require: Require,
    ) {
        // Name scoping (unbound identifiers, unknown calls, arity).
        let names: Vec<&str> = scope.iter().map(|(n, _)| *n).collect();
        self.check_expr(e, &names, span);
        // Typing.
        let mut errs = Vec::new();
        {
            let typer = self.typer();
            match require {
                Require::Bool => typer.require_bool(e, scope, &mut errs),
                Require::Num => typer.require_num(e, scope, &mut errs),
                Require::Any => {
                    let _ = typer.infer(e, scope, &mut errs);
                }
            }
        }
        for m in errs {
            self.err(m, span);
        }
    }

    /// The ETy named by a parameter annotation, with an error on unknown
    /// annotation names.
    fn param_ety(&mut self, ty: &str, span: Span) -> ETy {
        match self.typer().annot_ety(ty) {
            Some(t) => t,
            None => {
                self.err(format!("unknown parameter type `{ty}`"), span);
                ETy::Unknown
            }
        }
    }

    fn run(&mut self, prog: &Program) {
        if prog.decls.is_empty() {
            self.err("description declares no types", Span::default());
            return;
        }
        // Functions are visible everywhere (the paper interleaves them).
        for f in &prog.funcs {
            if self.schema.funcs.insert(f.name.clone(), f.clone()).is_some() {
                self.err(format!("duplicate function `{}`", f.name), f.span);
            }
        }
        let mut source_span: Option<Span> = None;
        for d in &prog.decls {
            if self.schema.type_id(&d.name).is_some() {
                self.err(format!("duplicate type `{}`", d.name), d.span);
                continue;
            }
            if self.registry.contains(&d.name) {
                self.err(
                    format!("type `{}` shadows a base type of the same name", d.name),
                    d.span,
                );
            }
            let def = self.check_decl(d);
            let id = self.schema.insert(def);
            if d.is_source {
                if let Some(prev) = source_span {
                    self.err(
                        format!("multiple Psource declarations (first at {prev})"),
                        d.span,
                    );
                }
                source_span = Some(d.span);
                self.schema.set_source(id);
            }
        }
        if source_span.is_none() {
            // PADS convention: the type describing the whole source is the
            // last declaration.
            self.schema.set_source(self.schema.types.len() - 1);
        }
        // Check function bodies once all enum variants are known.
        for f in prog.funcs.iter() {
            let mut scope: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
            let mut seen = HashSet::new();
            for p in &f.params {
                if !seen.insert(p.name.as_str()) {
                    self.err(format!("duplicate parameter `{}`", p.name), f.span);
                }
                let _ = self.param_ety(&p.ty, f.span);
            }
            self.check_stmts(&f.body, &mut scope, f.span);
            if !Self::always_returns(&f.body) {
                self.err(
                    format!("function `{}` may finish without returning", f.name),
                    f.span,
                );
            }
            // Static typing of the body (conditions, returns, arguments).
            let mut errs = Vec::new();
            self.typer().check_func(f, &mut errs);
            for m in errs {
                self.err(m, f.span);
            }
        }
    }

    fn always_returns(body: &[Stmt]) -> bool {
        body.iter().any(|s| match s {
            Stmt::Return(_) => true,
            Stmt::If { then_body, else_body, .. } => {
                !else_body.is_empty()
                    && Self::always_returns(then_body)
                    && Self::always_returns(else_body)
            }
        })
    }

    fn check_stmts<'a>(&mut self, body: &'a [Stmt], scope: &mut Vec<&'a str>, span: Span) {
        for s in body {
            match s {
                Stmt::Return(e) => self.check_expr(e, scope, span),
                Stmt::If { cond, then_body, else_body } => {
                    self.check_expr(cond, scope, span);
                    self.check_stmts(then_body, scope, span);
                    self.check_stmts(else_body, scope, span);
                }
            }
        }
    }

    fn check_decl(&mut self, d: &Decl) -> TypeDef {
        let mut seen = HashSet::new();
        let mut params: Scope<'_> = Vec::new();
        for p in &d.params {
            if !seen.insert(p.name.as_str()) {
                self.err(format!("duplicate parameter `{}`", p.name), d.span);
            }
            let t = self.param_ety(&p.ty, d.span);
            params.push((&p.name, t));
        }
        let kind = match &d.kind {
            DeclKind::Struct { members } => self.check_struct(d, members, &params),
            DeclKind::Union { switch, branches } => {
                self.check_union(d, switch, branches, &params)
            }
            DeclKind::Array { elem, cond } => self.check_array(d, elem, cond, &params),
            DeclKind::Enum { variants } => self.check_enum(d, variants),
            DeclKind::Typedef { base, var, pred } => {
                let base_ir = self.resolve_ty_with_scope(base, &params);
                if let Some(p) = pred {
                    let mut scope = params.clone();
                    if let Some(v) = var {
                        let t = self.typer().tyuse_ety(&base_ir);
                        scope.push((v, t));
                    }
                    self.check_expr_typed(p, &scope, d.span, Require::Bool);
                }
                TypeKind::Typedef { base: base_ir, var: var.clone(), pred: pred.clone() }
            }
        };
        // Pwhere scope: parameters plus the names the body introduces.
        if let Some(w) = &d.where_clause {
            let mut scope = params.clone();
            match &kind {
                TypeKind::Struct { members } => {
                    for m in members {
                        if let MemberIr::Field(f) = m {
                            let t = self.typer().tyuse_ety(&f.ty);
                            scope.push((&f.name, t));
                        }
                    }
                }
                TypeKind::Union { branches, .. } => {
                    for b in branches {
                        let t = self.typer().tyuse_ety(&b.field.ty);
                        scope.push((&b.field.name, t));
                    }
                }
                TypeKind::Array { elem, .. } => {
                    let t = self.typer().tyuse_ety(elem);
                    scope.push(("elts", ETy::Array(Box::new(t))));
                    scope.push(("length", ETy::Num));
                }
                _ => {}
            }
            self.check_expr_typed(w, &scope, d.span, Require::Bool);
        }
        TypeDef {
            name: d.name.clone(),
            params: d.params.clone(),
            is_record: d.is_record,
            is_source: d.is_source,
            where_clause: d.where_clause.clone(),
            kind,
            span: d.span,
        }
    }

    fn check_struct(
        &mut self,
        d: &Decl,
        members: &[Member],
        params: &Scope<'_>,
    ) -> TypeKind {
        let mut out = Vec::new();
        let mut scope = params.clone();
        let mut names = HashSet::new();
        for m in members {
            match m {
                Member::Lit(l) => {
                    self.check_literal(l, d.span);
                    out.push(MemberIr::Lit(l.clone()));
                }
                Member::Field(f) => {
                    if !names.insert(f.name.as_str()) {
                        self.err(format!("duplicate field `{}`", f.name), f.span);
                    }
                    let ty = self.resolve_ty_with_scope(&f.ty, &scope);
                    let field_ety = self.typer().tyuse_ety(&ty);
                    scope.push((&f.name, field_ety));
                    if let Some(c) = &f.constraint {
                        self.check_expr_typed(c, &scope, f.span, Require::Bool);
                    }
                    out.push(MemberIr::Field(FieldIr {
                        name: f.name.clone(),
                        ty,
                        constraint: f.constraint.clone(),
                        span: f.span,
                    }));
                }
            }
        }
        TypeKind::Struct { members: out }
    }

    fn check_union(
        &mut self,
        d: &Decl,
        switch: &Option<Expr>,
        branches: &[pads_syntax::ast::Branch],
        params: &Scope<'_>,
    ) -> TypeKind {
        if let Some(sel) = switch {
            self.check_expr_typed(sel, params, d.span, Require::Num);
        }
        if branches.is_empty() {
            self.err("union has no branches", d.span);
        }
        let mut out = Vec::new();
        let mut names = HashSet::new();
        let mut defaults = 0;
        for b in branches {
            if !names.insert(b.field.name.as_str()) {
                self.err(format!("duplicate branch `{}`", b.field.name), b.field.span);
            }
            match (&b.case, switch) {
                (Some(_), None) => {
                    self.err("Pcase label outside a Pswitch union", b.field.span)
                }
                (None, Some(_)) => {
                    self.err("branch in a Pswitch union needs a Pcase or Pdefault", b.field.span)
                }
                _ => {}
            }
            if let Some(CaseLabel::Default) = b.case {
                defaults += 1;
                if defaults > 1 {
                    self.err("multiple Pdefault branches", b.field.span);
                }
            }
            if let Some(CaseLabel::Expr(e)) = &b.case {
                self.check_expr_typed(e, params, b.field.span, Require::Num);
            }
            let ty = self.resolve_ty_with_scope(&b.field.ty, params);
            let branch_ety = self.typer().tyuse_ety(&ty);
            let mut scope = params.clone();
            scope.push((&b.field.name, branch_ety));
            if let Some(c) = &b.field.constraint {
                self.check_expr_typed(c, &scope, b.field.span, Require::Bool);
            }
            out.push(BranchIr {
                case: b.case.clone(),
                field: FieldIr {
                    name: b.field.name.clone(),
                    ty,
                    constraint: b.field.constraint.clone(),
                    span: b.field.span,
                },
            });
        }
        TypeKind::Union { switch: switch.clone(), branches: out }
    }

    fn check_array(
        &mut self,
        d: &Decl,
        elem: &TyExpr,
        cond: &pads_syntax::ast::ArrayCond,
        params: &Scope<'_>,
    ) -> TypeKind {
        let elem_ir = self.resolve_ty_with_scope(elem, params);
        if let Some(sep) = &cond.sep {
            self.check_literal(sep, d.span);
            if matches!(sep, Literal::Eor | Literal::Eof) {
                self.err("Psep cannot be Peor or Peof", d.span);
            }
        }
        if let Some(term) = &cond.term {
            self.check_literal(term, d.span);
        }
        if let Some(sz) = &cond.size {
            self.check_expr_typed(sz, params, d.span, Require::Num);
        }
        if let Some(ended) = &cond.ended {
            let mut scope = params.clone();
            let elem_ety = self.typer().tyuse_ety(&elem_ir);
            scope.push(("elts", ETy::Array(Box::new(elem_ety))));
            scope.push(("length", ETy::Num));
            self.check_expr_typed(ended, &scope, d.span, Require::Bool);
        }
        TypeKind::Array {
            elem: elem_ir,
            sep: cond.sep.clone(),
            term: cond.term.clone(),
            ended: cond.ended.clone(),
            size: cond.size.clone(),
        }
    }

    fn check_enum(&mut self, d: &Decl, variants: &[String]) -> TypeKind {
        let id = self.schema.types.len(); // the id this def will get
        for (i, v) in variants.iter().enumerate() {
            if let Some((prev, _)) = self.schema.enum_variants.get(v) {
                let prev_name = self.schema.def(*prev).name.clone();
                self.err(
                    format!("enum variant `{v}` already defined in `{prev_name}`"),
                    d.span,
                );
            } else {
                self.schema.enum_variants.insert(v.clone(), (id, i));
            }
        }
        if variants.is_empty() {
            self.err("enum has no variants", d.span);
        }
        TypeKind::Enum { variants: variants.to_vec() }
    }

    fn check_literal(&mut self, l: &Literal, span: Span) {
        match l {
            Literal::Regex(pat) => {
                if let Err(e) = pads_regex::Regex::new(pat) {
                    self.err(format!("invalid regex literal: {e}"), span);
                }
            }
            Literal::Str(s) if s.is_empty() => {
                self.err("empty string literal matches nothing", span);
            }
            _ => {}
        }
    }

    fn resolve_ty_with_scope(&mut self, ty: &TyExpr, scope: &Scope<'_>) -> TyUse {
        match ty {
            TyExpr::Opt(inner) => {
                TyUse::Opt(Box::new(self.resolve_ty_with_scope(inner, scope)))
            }
            TyExpr::App(app) => {
                for a in &app.args {
                    self.check_expr_typed(a, scope, app.span, Require::Any);
                }
                if let Some(id) = self.schema.type_id(&app.name) {
                    let want = self.schema.def(id).params.len();
                    if app.args.len() != want {
                        self.err(
                            format!(
                                "type `{}` takes {} parameter(s), {} given",
                                app.name,
                                want,
                                app.args.len()
                            ),
                            app.span,
                        );
                    }
                    TyUse::Named { id, args: app.args.clone() }
                } else if let Some(bt) = self.registry.get(&app.name) {
                    let (lo, hi) = bt.arity();
                    if app.args.len() < lo || app.args.len() > hi {
                        self.err(
                            format!(
                                "base type `{}` takes {} parameter(s), {} given",
                                app.name,
                                if lo == hi {
                                    lo.to_string()
                                } else {
                                    format!("{lo}..{hi}")
                                },
                                app.args.len()
                            ),
                            app.span,
                        );
                    }
                    TyUse::Base { name: app.name.clone(), args: app.args.clone() }
                } else {
                    self.err(
                        format!(
                            "unknown type `{}` (types must be declared before use)",
                            app.name
                        ),
                        app.span,
                    );
                    TyUse::Base { name: app.name.clone(), args: app.args.clone() }
                }
            }
        }
    }

    /// Checks that every free identifier in `e` is in scope: local names,
    /// enum variants, or (for calls) functions.
    fn check_expr(&mut self, e: &Expr, scope: &[&str], span: Span) {
        self.check_calls(e, span);
        for name in e.free_idents() {
            let known = scope.contains(&name)
                || self.schema.enum_variants.contains_key(name)
                || self.schema.funcs.contains_key(name);
            if !known {
                self.err(format!("name `{name}` is not in scope"), span);
            }
        }
    }

    fn check_calls(&mut self, e: &Expr, span: Span) {
        match e {
            Expr::Call(name, args) => {
                match self.schema.funcs.get(name) {
                    None => self.err(format!("call to unknown function `{name}`"), span),
                    Some(f) => {
                        if f.params.len() != args.len() {
                            self.err(
                                format!(
                                    "function `{name}` takes {} argument(s), {} given",
                                    f.params.len(),
                                    args.len()
                                ),
                                span,
                            );
                        }
                    }
                }
                for a in args {
                    self.check_calls(a, span);
                }
            }
            Expr::Field(a, _) => self.check_calls(a, span),
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                self.check_calls(a, span);
                self.check_calls(b, span);
            }
            Expr::Unary(_, a) => self.check_calls(a, span),
            Expr::Ternary(a, b, c) => {
                self.check_calls(a, span);
                self.check_calls(b, span);
                self.check_calls(c, span);
            }
            Expr::Forall { lo, hi, body, .. } => {
                self.check_calls(lo, span);
                self.check_calls(hi, span);
                self.check_calls(body, span);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        Registry::standard()
    }

    fn ok(src: &str) -> Schema {
        compile(src, &reg()).unwrap_or_else(|e| panic!("expected ok, got:\n{e}"))
    }

    fn errs(src: &str) -> Vec<CheckError> {
        match compile(src, &reg()) {
            Err(CompileError::Check(e)) => e,
            Err(CompileError::Syntax(e)) => panic!("syntax error, not check error: {e}"),
            Ok(_) => panic!("expected check errors"),
        }
    }

    #[test]
    fn resolves_base_and_named_types() {
        let s = ok(r#"
            Pstruct inner_t { Puint8 x; };
            Pstruct outer_t { inner_t a; ','; Pstring(:',':) b; };
        "#);
        assert_eq!(s.types.len(), 2);
        assert_eq!(s.source_def().name, "outer_t");
        match &s.def(1).kind {
            TypeKind::Struct { members } => {
                match &members[0] {
                    MemberIr::Field(f) => assert!(matches!(f.ty, TyUse::Named { id: 0, .. })),
                    other => panic!("expected field, got {other:?}"),
                }
                match &members[2] {
                    MemberIr::Field(f) => {
                        assert!(matches!(&f.ty, TyUse::Base { name, .. } if name == "Pstring"))
                    }
                    other => panic!("expected field, got {other:?}"),
                }
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn rejects_use_before_declaration() {
        let e = errs("Pstruct a_t { later_t x; };\nPstruct later_t { Puint8 y; };");
        assert!(e.iter().any(|e| e.to_string().contains("unknown type `later_t`")));
    }

    #[test]
    fn rejects_wrong_base_arity() {
        let e = errs("Pstruct t { Pstring x; };");
        assert!(e[0].to_string().contains("takes 1 parameter"));
        let e = errs("Pstruct t { Puint8(:3:) x; };");
        assert!(e[0].to_string().contains("takes 0 parameter"));
    }

    #[test]
    fn earlier_fields_are_in_scope_later_ones_not() {
        ok("Pstruct t { Puint8 a; Puint8 b : b >= a; };");
        let e = errs("Pstruct t { Puint8 a : a < b; Puint8 b; };");
        assert!(e[0].to_string().contains("`b` is not in scope"));
    }

    #[test]
    fn enum_variants_are_global_constants() {
        ok(r#"
            Penum method_t { GET, PUT };
            Pstruct t { method_t m : m == GET; };
        "#);
        let e = errs(r#"
            Penum a_t { X };
            Penum b_t { X };
        "#);
        assert!(e[0].to_string().contains("already defined"));
    }

    #[test]
    fn function_checks() {
        ok(r#"
            bool both(int a, int b) { return a == b; };
            Pstruct t { Puint8 x; Puint8 y : both(x, y); };
        "#);
        let e = errs(r#"
            bool f(int a) { return a == 1; };
            Pstruct t { Puint8 x : f(x, x); };
        "#);
        assert!(e[0].to_string().contains("takes 1 argument"));
        let e = errs(r#"
            bool f(int a) { if (a == 1) return true; };
            Pstruct t { Puint8 x : f(x); };
        "#);
        assert!(e[0].to_string().contains("without returning"));
    }

    #[test]
    fn switched_union_rules() {
        ok(r#"
            Punion u_t (:Puint8 k:) Pswitch(k) {
                Pcase 0: Puint32 n;
                Pdefault: Pvoid other;
            };
        "#);
        // Missing labels in a switched union (and labels in an ordered
        // one) are already rejected by the parser.
        assert!(matches!(
            compile("Punion u_t (:Puint8 k:) Pswitch(k) { Puint32 n; };", &reg()),
            Err(CompileError::Syntax(_))
        ));
        assert!(matches!(
            compile("Punion u_t { Pcase 0: Puint32 n; };", &reg()),
            Err(CompileError::Syntax(_))
        ));
        // Duplicate Pdefault is a semantic error.
        let e = errs(r#"
            Punion u_t (:Puint8 k:) Pswitch(k) {
                Pdefault: Puint32 n;
                Pdefault: Pvoid other;
            };
        "#);
        assert!(e[0].to_string().contains("multiple Pdefault"));
    }

    #[test]
    fn array_pseudo_variables() {
        ok(r#"
            Pstruct e_t { Puint32 v; };
            Parray seq_t { e_t[] : Pterm(Peor); } Pwhere {
                Pforall (i Pin [0..length-2] : elts[i].v <= elts[i+1].v);
            };
        "#);
        let e = errs("Parray a_t { Puint8[] : Psep(Peor); };");
        assert!(e[0].to_string().contains("Psep cannot"));
    }

    #[test]
    fn bad_regex_literal_is_reported() {
        let e = errs(r#"Pstruct t { Pre "("; Puint8 x; };"#);
        assert!(e[0].to_string().contains("invalid regex"));
    }

    #[test]
    fn duplicate_names() {
        let e = errs("Pstruct t { Puint8 x; };\nPstruct t { Puint8 y; };");
        assert!(e[0].to_string().contains("duplicate type"));
        let e = errs("Pstruct t { Puint8 x; ' '; Puint8 x; };");
        assert!(e[0].to_string().contains("duplicate field"));
    }

    #[test]
    fn shadowing_base_types_is_an_error() {
        let e = errs("Pstruct Puint8 { Puint16 x; };");
        assert!(e[0].to_string().contains("shadows a base type"));
    }

    #[test]
    fn parameterised_declared_types() {
        ok(r#"
            Parray bytes_t (:Puint32 n:) { Puint8[n]; };
            Pstruct packet_t { Puint32 len; ':'; bytes_t(:len:) body; };
        "#);
        let e = errs(r#"
            Parray bytes_t (:Puint32 n:) { Puint8[n]; };
            Pstruct packet_t { bytes_t body; };
        "#);
        assert!(e[0].to_string().contains("takes 1 parameter"));
    }

    #[test]
    fn constraints_must_be_boolean() {
        let e = errs("Pstruct t { Puint8 x : x + 1; };");
        assert!(e[0].to_string().contains("must be a bool"), "{e:?}");
        let e = errs("Pstruct t { Puint8 x; } Pwhere { x };");
        assert!(e[0].to_string().contains("must be a bool"), "{e:?}");
    }

    #[test]
    fn arithmetic_on_strings_is_rejected() {
        let e = errs("Pstruct t { Pstring(:'|':) s : s + 1 == 2; };");
        assert!(e[0].to_string().contains("needs numbers"), "{e:?}");
        let e = errs("Pstruct t { Pstring(:'|':) s : s < 3; };");
        assert!(e[0].to_string().contains("cannot compare"), "{e:?}");
    }

    #[test]
    fn projections_are_typechecked() {
        let e = errs(
            r#"
            Pstruct inner_t { Puint8 a; };
            Pstruct t { inner_t i; ','; Puint8 y : i.nosuch == 1; };
            "#,
        );
        assert!(e[0].to_string().contains("no field or branch `nosuch`"), "{e:?}");
        let e = errs("Pstruct t { Puint8 x : x.field == 1; };");
        assert!(e[0].to_string().contains("cannot project"), "{e:?}");
        let e = errs("Pstruct t { Puint8 x : x[0] == 1; };");
        assert!(e[0].to_string().contains("cannot index"), "{e:?}");
    }

    #[test]
    fn function_signatures_are_typechecked() {
        let e = errs(
            r#"
            bool f(string s) { return s == "x"; };
            Pstruct t { Puint8 n : f(n); };
            "#,
        );
        assert!(e[0].to_string().contains("expects string"), "{e:?}");
        let e = errs(
            r#"
            int g(int a) { return a == 1; };
            Pstruct t { Puint8 n : g(n) == 1; };
            "#,
        );
        assert!(e.iter().any(|e| e.to_string().contains("return type mismatch")), "{e:?}");
        let e = errs(
            r#"
            bool h(int a) { if (a + 1) return true; return false; };
            Pstruct t { Puint8 n : h(n); };
            "#,
        );
        assert!(e.iter().any(|e| e.to_string().contains("condition must be a bool")), "{e:?}");
    }

    #[test]
    fn switch_selectors_and_sizes_must_be_numeric() {
        let e = errs(
            r#"
            Punion u_t (:string s:) Pswitch(s) {
                Pcase 0: Puint8 a;
                Pdefault: Pvoid b;
            };
            "#,
        );
        assert!(e.iter().any(|e| e.to_string().contains("expected a number")), "{e:?}");
        let e = errs("Parray a_t (:string s:) { Puint8[s]; };");
        assert!(e.iter().any(|e| e.to_string().contains("expected a number")), "{e:?}");
    }

    #[test]
    fn bool_operators_need_bools() {
        let e = errs("Pstruct t { Puint8 x : x && true; };");
        assert!(e[0].to_string().contains("needs bools"), "{e:?}");
        let e = errs("Pstruct t { Puint8 x : !x; };");
        assert!(e[0].to_string().contains("needs a bool"), "{e:?}");
    }

    #[test]
    fn unknown_parameter_types_are_reported() {
        let e = errs("Pstruct t (:nosuch_t p:) { Puint8 x; };");
        assert!(e[0].to_string().contains("unknown parameter type"), "{e:?}");
    }

    #[test]
    fn opt_values_compare_transparently() {
        ok("Pstruct t { Popt Puint8 a; ','; Puint8 b : a == b || b > 0; };");
    }

    #[test]
    fn full_clf_description_checks() {
        ok(r#"
            Punion client_t { Pip ip; Phostname host; };
            Punion auth_id_t {
                Pchar unauthorized : unauthorized == '-';
                Pstring(:' ':) id;
            };
            Pstruct version_t { "HTTP/"; Puint8 major; '.'; Puint8 minor; };
            Penum method_t { GET, PUT, POST, HEAD, DELETE, LINK, UNLINK };
            bool chkVersion(version_t v, method_t m) {
                if ((v.major == 1) && (v.minor == 1)) return true;
                if ((m == LINK) || (m == UNLINK)) return false;
                return true;
            };
            Pstruct request_t {
                '\"'; method_t meth;
                ' '; Pstring(:' ':) req_uri;
                ' '; version_t version : chkVersion(version, meth);
                '\"';
            };
            Ptypedef Puint16_FW(:3:) response_t :
                response_t x => { 100 <= x && x < 600};
            Precord Pstruct entry_t {
                client_t client;
                ' '; auth_id_t remoteID;
                ' '; auth_id_t auth;
                " ["; Pdate(:']':) date;
                "] "; request_t request;
                ' '; response_t response;
                ' '; Puint32 length;
            };
            Psource Parray clt_t { entry_t[]; };
        "#);
    }
}
