//! E7 — the §5.2 accumulator: cost of statistical profiling on top of
//! parsing (per-record `add`), and of rendering the report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};
use pads_tools::Accumulator;

fn bench(c: &mut Criterion) {
    let (data, _) =
        pads_gen::clf::generate(&pads_gen::ClfConfig { records: 10_000, ..Default::default() });
    let registry = Registry::standard();
    let schema = descriptions::clf();
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);

    let mut g = c.benchmark_group("fig_acc_report");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::from_parameter("parse_only"), &data[..], |b, data| {
        b.iter(|| parser.records(data, "entry_t", &mask).count())
    });

    g.bench_with_input(BenchmarkId::from_parameter("parse_and_accumulate"), &data[..], |b, data| {
        b.iter(|| {
            let mut acc = Accumulator::new(&schema, "entry_t");
            for (v, pd) in parser.records(data, "entry_t", &mask) {
                acc.add(&v, &pd);
            }
            acc.records
        })
    });

    // Report rendering on a populated accumulator.
    let mut acc = Accumulator::new(&schema, "entry_t");
    for (v, pd) in parser.records(&data, "entry_t", &mask) {
        acc.add(&v, &pd);
    }
    g.bench_function(BenchmarkId::from_parameter("render_report"), |b| {
        b.iter(|| acc.report("<top>").len())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
