//! E1 — Figure 1 source classes: parsing throughput for each
//! representation family the paper inventories (fixed-column ASCII,
//! variable-width ASCII, fixed-width binary, Cobol/EBCDIC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::{
    compile, descriptions, BaseMask, Charset, Mask, PadsParser, ParseOptions, RecordDiscipline,
    Registry,
};
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let registry = Registry::standard();
    let mask = Mask::all(BaseMask::CheckAndSet);
    let mut g = c.benchmark_group("fig1_sources");
    g.sample_size(10);

    // Web server logs: fixed-column ASCII.
    {
        let (data, _) =
            pads_gen::clf::generate(&pads_gen::ClfConfig { records: 10_000, ..Default::default() });
        let schema = descriptions::clf();
        let parser = PadsParser::new(&schema, &registry);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter("clf_ascii"), &data[..], |b, data| {
            b.iter(|| parser.records(data, "entry_t", &mask).filter(|(_, pd)| pd.is_ok()).count())
        });
    }

    // Provisioning data: variable-width ASCII.
    {
        let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
            records: 10_000,
            ..Default::default()
        });
        let schema = descriptions::sirius();
        let parser = PadsParser::new(&schema, &registry);
        let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        let body = data[body_start..].to_vec();
        g.throughput(Throughput::Bytes(body.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_ascii_variable"),
            &body[..],
            |b, body| {
                b.iter(|| {
                    parser.records(body, "entry_t", &mask).filter(|(_, pd)| pd.is_ok()).count()
                })
            },
        );
    }

    // Call detail: fixed-width binary.
    {
        let schema = compile(
            r#"
            Precord Pstruct call_t {
                Pb_uint32 caller; Pb_uint32 callee; Pb_uint16 duration;
                Pb_uint8 flags : flags <= 7;
            };
            Psource Parray calls_t { call_t[]; };
            "#,
            &registry,
        )
        .expect("call detail description");
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut data = Vec::new();
        for _ in 0..10_000 {
            data.extend_from_slice(&rng.gen::<u32>().to_be_bytes());
            data.extend_from_slice(&rng.gen::<u32>().to_be_bytes());
            data.extend_from_slice(&rng.gen::<u16>().to_be_bytes());
            data.push(rng.gen_range(0..8));
        }
        let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
            discipline: RecordDiscipline::FixedWidth(11),
            ..Default::default()
        });
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("call_detail_binary"),
            &data[..],
            |b, data| {
                b.iter(|| {
                    parser.records(data, "call_t", &mask).filter(|(_, pd)| pd.is_ok()).count()
                })
            },
        );
    }

    // Billing data: Cobol zoned/packed via the copybook translator.
    {
        let description = pads_cobol::translate(
            "
            01 BILL-REC.
               05 ACCT-ID   PIC 9(6).
               05 REGION    PIC X(3).
               05 AMOUNT    PIC S9(5) COMP-3.
            ",
        )
        .expect("copybook translates");
        let schema = compile(&description, &registry).expect("translation compiles");
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            for d in format!("{:06}", i % 1_000_000).bytes() {
                data.push(0xF0 | (d - b'0'));
            }
            for b in "NE1".bytes() {
                data.push(Charset::Ebcdic.encode(b));
            }
            data.extend_from_slice(&[0x01, 0x23, 0x4C]);
        }
        let parser = PadsParser::new(&schema, &registry).with_options(ParseOptions {
            charset: Charset::Ebcdic,
            discipline: RecordDiscipline::FixedWidth(12),
            ..Default::default()
        });
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("altair_cobol_ebcdic"),
            &data[..],
            |b, data| {
                b.iter(|| {
                    parser.records(data, "bill_rec_t", &mask).filter(|(_, pd)| pd.is_ok()).count()
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
