//! E11a — Figure 10, vetting task: check all specified properties of
//! Sirius data (including event-timestamp sort order) and split clean from
//! erroneous records.
//!
//! Contenders:
//! * `pads_generated` — the compiled PADS parser (the paper's `padsvet`);
//! * `pads_interpreted` — the schema interpreter (no compilation, the
//!   baseline the paper's "we compile rather than interpret" argues
//!   against);
//! * `split_baseline` — the hand-written per-line `split('|')` vetter (the
//!   paper's Perl program, §7, reimplemented compiled — see DESIGN.md
//!   substitutions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::generated::sirius::EntryT;
use pads::{descriptions, BaseMask, Cursor, Mask, PadsParser, Registry};

const RECORDS: usize = 20_000;

fn data() -> (Vec<u8>, usize) {
    let config = pads_gen::SiriusConfig {
        records: RECORDS,
        syntax_errors: 3,
        sort_violations: 1,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
    (data, body_start)
}

fn bench(c: &mut Criterion) {
    let (data, body_start) = data();
    let body = &data[body_start..];
    let mask = Mask::all(BaseMask::CheckAndSet);
    let registry = Registry::standard();
    let schema = descriptions::sirius();
    let parser = PadsParser::new(&schema, &registry);

    let mut g = c.benchmark_group("fig10_vetting");
    g.throughput(Throughput::Bytes(body.len() as u64));
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::from_parameter("pads_generated"), body, |b, body| {
        b.iter(|| {
            let mut clean = Vec::with_capacity(body.len());
            let mut bad = 0usize;
            let mut cur = Cursor::new(body);
            while !cur.at_eof() {
                let (entry, pd) = EntryT::read(&mut cur, &mask);
                if pd.is_ok() {
                    entry
                        .write(&mut clean, pads::Charset::Ascii, pads::Endian::Big)
                        .expect("clean entry writes");
                } else {
                    bad += 1;
                }
            }
            (clean.len(), bad)
        })
    });

    g.bench_with_input(BenchmarkId::from_parameter("pads_interpreted"), body, |b, body| {
        let writer = pads::Writer::new(&schema, &registry);
        b.iter(|| {
            let mut clean = Vec::with_capacity(body.len());
            let mut bad = 0usize;
            for (entry, pd) in parser.records(body, "entry_t", &mask) {
                if pd.is_ok() {
                    writer.write_named(&mut clean, "entry_t", &entry).expect("writes");
                } else {
                    bad += 1;
                }
            }
            (clean.len(), bad)
        })
    });

    g.bench_with_input(BenchmarkId::from_parameter("split_baseline"), body, |b, body| {
        b.iter(|| {
            let mut clean = Vec::with_capacity(body.len());
            let summary = pads_baseline::vet(body, &mut clean);
            (clean.len(), summary.errors.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
