//! Ablation — entry-point granularity (§4): whole-source parsing (one
//! call, whole representation in memory) versus record-at-a-time
//! streaming, which the paper provides so "very large data sources" can
//! be processed without loading everything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::{descriptions, BaseMask, Mask, PadsParser, Registry};

const RECORDS: usize = 10_000;

fn bench(c: &mut Criterion) {
    let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records: RECORDS,
        syntax_errors: 0,
        sort_violations: 0,
        ..Default::default()
    });
    let registry = Registry::standard();
    let schema = descriptions::sirius();
    let parser = PadsParser::new(&schema, &registry);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;

    let mut g = c.benchmark_group("ablation_entrypoints");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::from_parameter("whole_source"), &data[..], |b, data| {
        b.iter(|| {
            let (v, _) = parser.parse_source(data, &mask);
            v.at_path("es").and_then(pads::Value::len).unwrap_or(0)
        })
    });

    g.bench_with_input(
        BenchmarkId::from_parameter("record_at_a_time"),
        &data[body_start..],
        |b, body| {
            b.iter(|| parser.records(body, "entry_t", &mask).count())
        },
    );

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
