//! E11c — Figure 10, record-count floor: "a PERL program that simply
//! counts the number of records takes on average 124 seconds; the
//! corresponding PADS program takes 81". PADS-side counting is record
//! framing only (no field parsing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::Cursor;

const RECORDS: usize = 50_000;

fn bench(c: &mut Criterion) {
    let config = pads_gen::SiriusConfig {
        records: RECORDS,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);

    let mut g = c.benchmark_group("fig10_count");
    g.throughput(Throughput::Bytes(data.len() as u64));

    g.bench_with_input(BenchmarkId::from_parameter("pads_records"), &data[..], |b, data| {
        b.iter(|| {
            let mut cur = Cursor::new(data);
            let mut n = 0usize;
            while !cur.at_eof() {
                if cur.begin_record().is_err() {
                    break;
                }
                cur.end_record();
                n += 1;
            }
            n
        })
    });

    g.bench_with_input(
        BenchmarkId::from_parameter("newline_baseline"),
        &data[..],
        |b, data| b.iter(|| pads_baseline::count_records(data)),
    );

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
