//! E11b — Figure 10, selection task: with all error checking off, output
//! the order numbers of records that ever pass through a given state.
//!
//! Contenders: the compiled PADS parser under a `Set` mask (the paper's
//! `padsselect`), the interpreter, and the Figure 9 compiled-regex
//! selector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::generated::sirius::EntryT;
use pads::{descriptions, BaseMask, Cursor, Mask, PadsParser, Registry, Value};
use pads_baseline::Selector;

const RECORDS: usize = 20_000;
const STATE: &str = "LOC_CRTE";

fn clean_body() -> Vec<u8> {
    let config = pads_gen::SiriusConfig {
        records: RECORDS,
        syntax_errors: 0,
        sort_violations: 0,
        ..pads_gen::SiriusConfig::default()
    };
    let (data, _) = pads_gen::sirius::generate(&config);
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
    data[body_start..].to_vec()
}

fn bench(c: &mut Criterion) {
    let body = clean_body();
    let mask = Mask::all(BaseMask::Set);
    let registry = Registry::standard();
    let schema = descriptions::sirius();
    let parser = PadsParser::new(&schema, &registry);
    let selector = Selector::new(STATE);

    let mut g = c.benchmark_group("fig10_selection");
    g.throughput(Throughput::Bytes(body.len() as u64));
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::from_parameter("pads_generated"), &body[..], |b, body| {
        b.iter(|| {
            let mut hits: Vec<u64> = Vec::new();
            let mut cur = Cursor::new(body);
            while !cur.at_eof() {
                let (entry, _) = EntryT::read(&mut cur, &mask);
                if entry.events.0.iter().any(|e| e.state == STATE) {
                    hits.push(entry.header.order_num as u64);
                }
            }
            hits.len()
        })
    });

    g.bench_with_input(
        BenchmarkId::from_parameter("pads_interpreted"),
        &body[..],
        |b, body| {
            b.iter(|| {
                let mut hits: Vec<u64> = Vec::new();
                for (entry, _) in parser.records(body, "entry_t", &mask) {
                    let events = entry.at_path("events").expect("events array");
                    let n = events.len().unwrap_or(0);
                    let matched = (0..n).any(|i| {
                        events
                            .index(i)
                            .and_then(|e| e.field("state"))
                            .and_then(Value::as_str)
                            == Some(STATE)
                    });
                    if matched {
                        hits.push(
                            entry
                                .at_path("header.order_num")
                                .and_then(Value::as_u64)
                                .unwrap_or(0),
                        );
                    }
                }
                hits.len()
            })
        },
    );

    g.bench_with_input(BenchmarkId::from_parameter("regex_baseline"), &body[..], |b, body| {
        b.iter(|| selector.select_all(body).len())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
