//! Ablation — observation on versus off. The claim under test: with
//! nothing attached, the hooks cost a single `Option` discriminant check
//! per site, so `*_off` must match the pre-observer `ablation_codegen`
//! numbers within noise; with a dense `MetricsCore` attached (`*_metrics`)
//! the overhead stays under ~10% — counters are flat `Vec` slabs indexed
//! by trusted node ids, and generated fixed-prefix fast paths stay on,
//! feeding statically-known per-type bumps instead of events. The
//! `*_metrics_legacy` rows keep the string-keyed `Observer` attachment
//! (BTreeMap lookups through `Rc<RefCell<dyn Observer>>`) as the
//! before-picture the dense core is measured against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::generated::{clf, sirius};
use pads::{descriptions, BaseMask, Cursor, Mask, PadsParser, Registry};
use pads_observe::{MetricsSink, ObsHandle};

fn bench(c: &mut Criterion) {
    let registry = Registry::standard();
    let mask = Mask::all(BaseMask::CheckAndSet);

    let mut g = c.benchmark_group("ablation_observer");
    g.sample_size(10);

    // Sirius.
    {
        let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
            records: 10_000,
            syntax_errors: 0,
            sort_violations: 0,
            ..Default::default()
        });
        let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        let body = data[body_start..].to_vec();
        let schema = descriptions::sirius();
        let parser = PadsParser::new(&schema, &registry);
        let with_core = {
            let p = PadsParser::new(&schema, &registry);
            let h = p.metrics_core().into_handle();
            p.with_metrics(h)
        };
        let observed = PadsParser::new(&schema, &registry)
            .with_observer(ObsHandle::new(MetricsSink::new()));
        g.throughput(Throughput::Bytes(body.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_interpreted_off"),
            &body[..],
            |b, body| b.iter(|| parser.records(body, "entry_t", &mask).count()),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_interpreted_metrics"),
            &body[..],
            |b, body| b.iter(|| with_core.records(body, "entry_t", &mask).count()),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_interpreted_metrics_legacy"),
            &body[..],
            |b, body| b.iter(|| observed.records(body, "entry_t", &mask).count()),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_generated_off"),
            &body[..],
            |b, body| {
                b.iter(|| {
                    let mut cur = Cursor::new(body);
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = sirius::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
        let gen_core = sirius::metrics_core().into_handle();
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_generated_metrics"),
            &body[..],
            |b, body| {
                b.iter(|| {
                    let mut cur = Cursor::new(body).with_metrics(gen_core.clone());
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = sirius::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_generated_metrics_legacy"),
            &body[..],
            |b, body| {
                b.iter(|| {
                    let mut cur = Cursor::new(body)
                        .with_observer(ObsHandle::new(MetricsSink::new()));
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = sirius::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
    }

    // CLF.
    {
        let (data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
            records: 10_000,
            dash_length_rate: 0.0,
            ..Default::default()
        });
        let schema = descriptions::clf();
        let parser = PadsParser::new(&schema, &registry);
        let with_core = {
            let p = PadsParser::new(&schema, &registry);
            let h = p.metrics_core().into_handle();
            p.with_metrics(h)
        };
        let observed = PadsParser::new(&schema, &registry)
            .with_observer(ObsHandle::new(MetricsSink::new()));
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_interpreted_off"),
            &data[..],
            |b, data| b.iter(|| parser.records(data, "entry_t", &mask).count()),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_interpreted_metrics"),
            &data[..],
            |b, data| b.iter(|| with_core.records(data, "entry_t", &mask).count()),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_interpreted_metrics_legacy"),
            &data[..],
            |b, data| b.iter(|| observed.records(data, "entry_t", &mask).count()),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_generated_off"),
            &data[..],
            |b, data| {
                b.iter(|| {
                    let mut cur = Cursor::new(data);
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = clf::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
        let gen_core = clf::metrics_core().into_handle();
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_generated_metrics"),
            &data[..],
            |b, data| {
                b.iter(|| {
                    let mut cur = Cursor::new(data).with_metrics(gen_core.clone());
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = clf::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_generated_metrics_legacy"),
            &data[..],
            |b, data| {
                b.iter(|| {
                    let mut cur = Cursor::new(data)
                        .with_observer(ObsHandle::new(MetricsSink::new()));
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = clf::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
