//! Ablation — fact-driven fixed-prefix reads. The width analysis proves
//! the mixed `rec_t` record starts with a fixed 5-byte prefix (4-digit
//! `code_t` plus `'|'`), which the generated parser validates at fixed
//! offsets and commits with one cursor advance instead of a masked
//! typedef read plus a literal match. This bench isolates that record
//! head on three inputs: all prefix hits, all syntactic misses (leading
//! space in the FW field forces the general member-loop fallback), and
//! the interpreter baseline. The cross-build A/B against the previous
//! generator (identical corpora, alternated binaries, CPU-time minima)
//! is recorded in BENCH_parallel.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::generated::mixed;
use pads::{descriptions, BaseMask, Cursor, Mask, PadsParser};
use pads_runtime::Registry;

/// `records` mixed `rec_t` lines. `hit` picks 4-digit in-range codes;
/// otherwise every code carries a leading space (still a valid FW int,
/// but outside the digits-only fast path). Note the miss corpus is an
/// upper bound on fallback cost, not a pure A/B: a spaced width-4 code
/// can never reach 1000, so every miss record also pays the typedef
/// constraint-violation descriptor on both engines.
fn rec_data(records: usize, hit: bool) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..records {
        let code = 1000 + (i % 9000);
        if hit {
            out.extend_from_slice(format!("{code:04}").as_bytes());
        } else {
            out.extend_from_slice(format!(" {:03}", i % 1000).as_bytes());
        }
        let sev = ["LOW", "MED", "HIGH"][i % 3];
        out.extend_from_slice(
            format!("|{sev}|0|{}|k{:02}=2.5|T|2|{},9\n", i % 100000, i % 100, i % 50).as_bytes(),
        );
    }
    out
}

fn bench(c: &mut Criterion) {
    let mask = Mask::all(BaseMask::CheckAndSet);
    let registry = Registry::standard();
    let schema = descriptions::mixed();
    let parser = PadsParser::new(&schema, &registry);
    let mut g = c.benchmark_group("ablation_fixed_prefix");
    g.sample_size(10);

    for &records in &[1_000usize, 10_000] {
        for (label, hit) in [("rec_generated_hit", true), ("rec_generated_miss", false)] {
            let data = rec_data(records, hit);
            g.throughput(Throughput::Bytes(data.len() as u64));
            g.bench_with_input(BenchmarkId::new(label, records), &data[..], |b, data| {
                b.iter(|| {
                    let mut cur = Cursor::new(data);
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let (_, pd) = mixed::RecT::read(&mut cur, &mask);
                        n += pd.is_ok() as usize;
                    }
                    n
                })
            });
        }
        let data = rec_data(records, true);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("rec_interpreted", records),
            &data[..],
            |b, data| b.iter(|| parser.records(data, "rec_t", &mask).count()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
