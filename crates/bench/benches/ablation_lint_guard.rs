//! Ablation — lint-informed array loops. The progress analysis lets the
//! code generator elide the zero-width guard from arrays whose element is
//! proven to consume input (sirius `eventSeq`). This bench isolates that
//! loop: parsing long pipe-separated event sequences with the generated
//! parser, whose inner loop no longer compares cursor offsets per element.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::generated::sirius;
use pads::{BaseMask, Cursor, Mask};

/// One long record's worth of `state|tstamp` events, '|'-separated.
fn event_seq_data(events: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..events {
        if i > 0 {
            out.extend_from_slice(b"|");
        }
        out.extend_from_slice(format!("state{:03}|{}", i % 40, 1_000_000 + i).as_bytes());
    }
    out.push(b'\n');
    out
}

fn bench(c: &mut Criterion) {
    let mask = Mask::all(BaseMask::CheckAndSet);
    let mut g = c.benchmark_group("ablation_lint_guard");
    g.sample_size(10);

    for &events in &[1_000usize, 100_000] {
        let data = event_seq_data(events);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("event_seq_generated", events),
            &data[..],
            |b, data| {
                b.iter(|| {
                    let mut cur = Cursor::new(data);
                    let (v, pd) = sirius::EventSeq::read(&mut cur, &mask);
                    assert!(pd.is_ok(), "{:?}", pd.errors().first());
                    v.0.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
