//! Ablation — SWAR scan kernels versus byte-at-a-time reference loops.
//!
//! Two layers: (1) the kernels themselves (`find_byte`, `find_byte2`,
//! `find_literal`, `skip_class`, `count_byte`) against the naive loops
//! they replaced, on realistic log bytes; (2) the end-to-end generated
//! parsers on the same corpora/configs as `ablation_codegen`, so the
//! numbers are directly comparable against the PR-3 baseline recorded in
//! `BENCH_observe.json` (`same_session_ablation_codegen`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::generated::{clf, sirius};
use pads::{BaseMask, Cursor, Mask};
use pads_runtime::{count_byte, find_byte, find_byte2, find_literal, skip_class, ClassBitmap};

const DIGITS: ClassBitmap = ClassBitmap::from_bits([0x03FF_0000_0000_0000, 0, 0, 0]);

fn bench(c: &mut Criterion) {
    let mask = Mask::all(BaseMask::CheckAndSet);

    // Kernel microbenchmarks over one big CLF buffer: long lines of mixed
    // text and digit runs, the shape every hot path below sees.
    {
        let (data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
            records: 10_000,
            dash_length_rate: 0.0,
            ..Default::default()
        });
        let mut g = c.benchmark_group("scan_kernels");
        g.sample_size(20);
        g.throughput(Throughput::Bytes(data.len() as u64));

        g.bench_with_input(BenchmarkId::from_parameter("find_byte_swar"), &data[..], |b, d| {
            b.iter(|| {
                let (mut at, mut n) = (0usize, 0usize);
                while let Some(i) = find_byte(&d[at..], b'\n') {
                    at += i + 1;
                    n += 1;
                }
                n
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter("find_byte_naive"), &data[..], |b, d| {
            b.iter(|| {
                let (mut at, mut n) = (0usize, 0usize);
                while let Some(i) = d[at..].iter().position(|&b| b == b'\n') {
                    at += i + 1;
                    n += 1;
                }
                n
            })
        });

        g.bench_with_input(BenchmarkId::from_parameter("find_byte2_swar"), &data[..], |b, d| {
            b.iter(|| {
                let (mut at, mut n) = (0usize, 0usize);
                while let Some(i) = find_byte2(&d[at..], b'"', b'\n') {
                    at += i + 1;
                    n += 1;
                }
                n
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter("find_byte2_naive"), &data[..], |b, d| {
            b.iter(|| {
                let (mut at, mut n) = (0usize, 0usize);
                while let Some(i) = d[at..].iter().position(|&b| b == b'"' || b == b'\n') {
                    at += i + 1;
                    n += 1;
                }
                n
            })
        });

        g.bench_with_input(BenchmarkId::from_parameter("find_literal_kernel"), &data[..], |b, d| {
            b.iter(|| {
                let (mut at, mut n) = (0usize, 0usize);
                while let Some(i) = find_literal(&d[at..], b"HTTP/1.") {
                    at += i + 1;
                    n += 1;
                }
                n
            })
        });
        g.bench_with_input(BenchmarkId::from_parameter("find_literal_naive"), &data[..], |b, d| {
            b.iter(|| {
                let needle = b"HTTP/1.";
                let (mut at, mut n) = (0usize, 0usize);
                while at + needle.len() <= d.len() {
                    match d[at..].windows(needle.len()).position(|w| w == needle) {
                        Some(i) => {
                            at += i + 1;
                            n += 1;
                        }
                        None => break,
                    }
                }
                n
            })
        });

        // skip_class is only ever called where a run begins (rd_uint /
        // rd_int land on the first digit), so measure exactly that:
        // precompute the digit-run start offsets, then scan each run.
        let digit_starts: Vec<usize> = (0..data.len())
            .filter(|&i| {
                data[i].is_ascii_digit() && (i == 0 || !data[i - 1].is_ascii_digit())
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter("skip_class_swar"),
            &(&data[..], &digit_starts[..]),
            |b, (d, starts)| {
                b.iter(|| {
                    starts.iter().map(|&at| skip_class(&d[at..], &DIGITS)).sum::<usize>()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::from_parameter("skip_class_naive"),
            &(&data[..], &digit_starts[..]),
            |b, (d, starts)| {
                b.iter(|| {
                    starts
                        .iter()
                        .map(|&at| d[at..].iter().take_while(|b| b.is_ascii_digit()).count())
                        .sum::<usize>()
                })
            },
        );

        g.bench_with_input(BenchmarkId::from_parameter("count_byte_swar"), &data[..], |b, d| {
            b.iter(|| count_byte(d, b'\n'))
        });
        g.bench_with_input(BenchmarkId::from_parameter("count_byte_naive"), &data[..], |b, d| {
            b.iter(|| d.iter().filter(|&&b| b == b'\n').count())
        });
        g.finish();
    }

    // End-to-end generated parsers, identical corpora/configs to
    // `ablation_codegen` — these rows ARE the single-thread scan-kernel
    // numbers compared against the PR-3 baseline in BENCH_parallel.json.
    let mut g = c.benchmark_group("ablation_scan");
    g.sample_size(10);
    {
        let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
            records: 10_000,
            syntax_errors: 0,
            sort_violations: 0,
            ..Default::default()
        });
        let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        let body = data[body_start..].to_vec();
        g.throughput(Throughput::Bytes(body.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_generated_kernels"),
            &body[..],
            |b, body| {
                b.iter(|| {
                    let mut cur = Cursor::new(body);
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = sirius::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
    }
    {
        let (data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
            records: 10_000,
            dash_length_rate: 0.0,
            ..Default::default()
        });
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_generated_kernels"),
            &data[..],
            |b, data| {
                b.iter(|| {
                    let mut cur = Cursor::new(data);
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = clf::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
