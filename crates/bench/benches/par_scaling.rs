//! Shard-scaling — the record-sharded parallel engine at `--jobs
//! {1, 2, 4, 8}` against the plain sequential loop, for both engines
//! (interpreted `records_par`, generated `parse_records_par`) on the
//! same 10 000-record CLF/Sirius corpora as `ablation_codegen`. The
//! jobs=1 rows measure pure sharding overhead (should be ~the
//! sequential time); jobs≥2 should scale near-linearly until the
//! deterministic merge and memory bandwidth dominate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::generated::{clf, sirius};
use pads::{descriptions, BaseMask, Cursor, Mask, PadsParser, Registry};

const JOBS: [usize; 4] = [1, 2, 4, 8];

fn fresh(d: &[u8]) -> Cursor<'_> {
    Cursor::new(d)
}

fn bench(c: &mut Criterion) {
    let registry = Registry::standard();
    let mask = Mask::all(BaseMask::CheckAndSet);

    let mut g = c.benchmark_group("par_scaling");
    g.sample_size(10);

    // Sirius.
    {
        let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
            records: 10_000,
            syntax_errors: 0,
            sort_violations: 0,
            ..Default::default()
        });
        let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        let body = data[body_start..].to_vec();
        let schema = descriptions::sirius();
        let parser = PadsParser::new(&schema, &registry);
        g.throughput(Throughput::Bytes(body.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_interpreted_seq"),
            &body[..],
            |b, body| b.iter(|| parser.records(body, "entry_t", &mask).count()),
        );
        for jobs in JOBS {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("sirius_interpreted_jobs{jobs}")),
                &body[..],
                |b, body| b.iter(|| parser.records_par(body, "entry_t", &mask, jobs).0.len()),
            );
        }
        g.bench_with_input(
            BenchmarkId::from_parameter("sirius_generated_seq"),
            &body[..],
            |b, body| {
                b.iter(|| {
                    let mut cur = Cursor::new(body);
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = sirius::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
        // Sirius's source is a header struct, not a plain record array, so
        // it has no `parse_records_par` wrapper — drive the record reader
        // through the generic prelude engine directly.
        for jobs in JOBS {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("sirius_generated_jobs{jobs}")),
                &body[..],
                |b, body| {
                    b.iter(|| {
                        sirius::pc_parse_records_par(body, jobs, fresh, |cur| {
                            sirius::EntryT::read(cur, &mask)
                        })
                        .0
                        .len()
                    })
                },
            );
        }
    }

    // CLF.
    {
        let (data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
            records: 10_000,
            dash_length_rate: 0.0,
            ..Default::default()
        });
        let schema = descriptions::clf();
        let parser = PadsParser::new(&schema, &registry);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_interpreted_seq"),
            &data[..],
            |b, data| b.iter(|| parser.records(data, "entry_t", &mask).count()),
        );
        for jobs in JOBS {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("clf_interpreted_jobs{jobs}")),
                &data[..],
                |b, data| b.iter(|| parser.records_par(data, "entry_t", &mask, jobs).0.len()),
            );
        }
        g.bench_with_input(
            BenchmarkId::from_parameter("clf_generated_seq"),
            &data[..],
            |b, data| {
                b.iter(|| {
                    let mut cur = Cursor::new(data);
                    let mut n = 0usize;
                    while !cur.at_eof() {
                        let _ = clf::EntryT::read(&mut cur, &mask);
                        n += 1;
                    }
                    n
                })
            },
        );
        for jobs in JOBS {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("clf_generated_jobs{jobs}")),
                &data[..],
                |b, data| b.iter(|| clf::parse_records_par(data, &mask, jobs, fresh).0.len()),
            );
        }
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
