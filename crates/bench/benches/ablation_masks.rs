//! Ablation — masks (§3/§4): the run-time cost knob. Vetting Sirius data
//! with every constraint checked, with constraints off (`Set`), and with
//! checking-only (`Check`), on the compiled parser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pads::generated::sirius::EntryT;
use pads::{BaseMask, Cursor, Mask};

const RECORDS: usize = 20_000;

fn bench(c: &mut Criterion) {
    let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records: RECORDS,
        syntax_errors: 0,
        sort_violations: 0,
        ..Default::default()
    });
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
    let body = data[body_start..].to_vec();

    let mut g = c.benchmark_group("ablation_masks");
    g.throughput(Throughput::Bytes(body.len() as u64));
    g.sample_size(10);

    for (label, mask) in [
        ("check_and_set", Mask::all(BaseMask::CheckAndSet)),
        ("check_only", Mask::all(BaseMask::Check)),
        ("set_only", Mask::all(BaseMask::Set)),
        ("ignore", Mask::all(BaseMask::Ignore)),
        ("figure7_no_sort", {
            let mut m = Mask::all(BaseMask::CheckAndSet);
            m.set_compound_at("events", BaseMask::Set);
            m
        }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &body[..], |b, body| {
            b.iter(|| {
                let mut cur = Cursor::new(body);
                let mut bad = 0usize;
                while !cur.at_eof() {
                    let (_, pd) = EntryT::read(&mut cur, &mask);
                    bad += (!pd.is_ok()) as usize;
                }
                bad
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
