//! CI regression gate for allocation pressure: counts heap allocations
//! per parsed record with a counting global allocator, for both engines
//! and for the arena-backed representation, and fails (exit 1) when the
//! arena path stops beating the owned-tree path by the required margin.
//!
//! Methodology: allocation counts are exact (no timing noise), so one
//! measured pass per configuration suffices — after a warm-up pass that
//! grows every reusable buffer (the arena's node stores and spill heaps,
//! the batch's column vectors) to steady-state capacity. The gate
//! requires the steady-state arena path to allocate at least
//! `ALLOC_GATE_MIN_RATIO` (default 10) times less per record than the
//! interpreter's owned `Value` trees on clf, and to stay under an
//! absolute ceiling of `ALLOC_GATE_MAX_PER_RECORD` (default 2.0)
//! allocations per record — the arena itself allocates nothing at
//! steady state, string leaves borrow through the `parse_view` tier
//! (clf sits at exactly 0), and the residue is `Vec` growth for
//! genuinely variable-length `Parray` fields (sirius ~1.7). Override
//! either env var when a corpus change moves the band deliberately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pads::generated::{clf, sirius};
use pads::{descriptions, BaseMask, Cursor, Mask, PadsParser, RecordBatch, Registry};
use pads_runtime::ValueArena;

/// Counts every heap allocation (alloc, alloc_zeroed, and the growth
/// half of realloc) and forwards to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const RECORDS: usize = 10_000;

/// Runs `f` once for warm-up, then measures the allocation count of a
/// second identical pass — the steady state a long-running ingest sees.
fn steady_state<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let records = f(); // warm-up: grows every reusable buffer
    let before = ALLOCS.load(Ordering::Relaxed);
    let again = f();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(records, again, "passes parsed different record counts");
    ((after - before) as f64 / records as f64, records)
}

struct Row {
    name: &'static str,
    allocs_per_record: f64,
}

fn row<F: FnMut() -> usize>(name: &'static str, f: F) -> Row {
    let (allocs_per_record, records) = steady_state(f);
    println!("{name:<22} {allocs_per_record:>10.3} allocs/record  ({records} records)");
    Row { name, allocs_per_record }
}

fn main() {
    let min_ratio: f64 = std::env::var("ALLOC_GATE_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let max_per_record: f64 = std::env::var("ALLOC_GATE_MAX_PER_RECORD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let registry = Registry::standard();
    let mask = Mask::all(BaseMask::CheckAndSet);

    let (clf_data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
        records: RECORDS,
        dash_length_rate: 0.0,
        ..Default::default()
    });
    let (sirius_data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records: RECORDS,
        syntax_errors: 0,
        sort_violations: 0,
        ..Default::default()
    });
    let body_start =
        sirius_data.iter().position(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
    let sirius_body = &sirius_data[body_start..];

    let clf_schema = descriptions::clf();
    let clf_parser = PadsParser::new(&clf_schema, &registry);
    let sirius_schema = descriptions::sirius();
    let sirius_parser = PadsParser::new(&sirius_schema, &registry);

    let mut rows = Vec::new();

    // Interpreter: one owned `Value` tree (plus its `ParseDesc`) per record.
    rows.push(row("clf_interpreted", || {
        clf_parser.records(&clf_data, "entry_t", &mask).count()
    }));
    rows.push(row("sirius_interpreted", || {
        sirius_parser.records(sirius_body, "entry_t", &mask).count()
    }));

    // Generated typed parsers: owned typed values, strings as `Cow`
    // slices into the buffer on the ASCII fast path.
    rows.push(row("clf_generated", || {
        let mut cur = Cursor::new(&clf_data);
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = clf::EntryT::read(&mut cur, &mask);
            n += 1;
        }
        n
    }));
    rows.push(row("sirius_generated", || {
        let mut cur = Cursor::new(sirius_body);
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = sirius::EntryT::read(&mut cur, &mask);
            n += 1;
        }
        n
    }));

    // Arena path: typed parse lowered into a bump arena reset per record
    // — steady state allocates nothing once the stores have grown.
    let mut clf_arena = ValueArena::new();
    rows.push(row("clf_arena", || {
        let mut cur = Cursor::new(&clf_data);
        let mut n = 0usize;
        while !cur.at_eof() {
            let (v, _) = clf::EntryT::read(&mut cur, &mask);
            clf_arena.reset();
            let _ = v.to_arena(&mut clf_arena);
            n += 1;
        }
        n
    }));
    let mut sirius_arena = ValueArena::new();
    rows.push(row("sirius_arena", || {
        let mut cur = Cursor::new(sirius_body);
        let mut n = 0usize;
        while !cur.at_eof() {
            let (v, _) = sirius::EntryT::read(&mut cur, &mask);
            sirius_arena.reset();
            let _ = v.to_arena(&mut sirius_arena);
            n += 1;
        }
        n
    }));

    // Arena + columnar batch: the full new ingest pipeline, batch columns
    // cleared (capacity retained) between passes.
    let clf_names = clf::name_table();
    let mut clf_batch = RecordBatch::new();
    let mut clf_batch_arena = ValueArena::new();
    rows.push(row("clf_arena_batch", || {
        clf_batch.clear();
        let mut cur = Cursor::new(&clf_data);
        let mut n = 0usize;
        while !cur.at_eof() {
            let (v, pd) = clf::EntryT::read(&mut cur, &mask);
            clf_batch_arena.reset();
            let h = v.to_arena(&mut clf_batch_arena);
            clf_batch.push_arena(clf_batch_arena.get(h), &clf_names, &pd);
            n += 1;
        }
        n
    }));
    let sirius_names = sirius::name_table();
    let mut sirius_batch = RecordBatch::new();
    let mut sirius_batch_arena = ValueArena::new();
    rows.push(row("sirius_arena_batch", || {
        sirius_batch.clear();
        let mut cur = Cursor::new(sirius_body);
        let mut n = 0usize;
        while !cur.at_eof() {
            let (v, pd) = sirius::EntryT::read(&mut cur, &mask);
            sirius_batch_arena.reset();
            let h = v.to_arena(&mut sirius_batch_arena);
            sirius_batch.push_arena(sirius_batch_arena.get(h), &sirius_names, &pd);
            n += 1;
        }
        n
    }));

    let get = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    };
    let owned = get("clf_interpreted").allocs_per_record;
    let arena = get("clf_arena").allocs_per_record;
    let ratio = if arena > 0.0 { owned / arena } else { f64::INFINITY };
    println!(
        "clf owned-vs-arena improvement: {ratio:.1}x (gate: >= {min_ratio}x, \
         arena ceiling {max_per_record} allocs/record)"
    );

    let mut failed = false;
    if ratio < min_ratio {
        eprintln!(
            "alloc-gate: FAIL: clf arena path allocates only {ratio:.1}x less than \
             owned trees (need {min_ratio}x; ALLOC_GATE_MIN_RATIO overrides)"
        );
        failed = true;
    }
    for name in ["clf_arena", "sirius_arena"] {
        let r = get(name);
        if r.allocs_per_record > max_per_record {
            eprintln!(
                "alloc-gate: FAIL: {name} allocates {:.3}/record, over the {max_per_record} \
                 ceiling (ALLOC_GATE_MAX_PER_RECORD overrides)",
                r.allocs_per_record
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("alloc-gate: OK");
}
