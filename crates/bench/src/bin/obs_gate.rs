//! CI regression gate for observer overhead: parses the generated-parser
//! corpora with metrics off and with a dense `MetricsCore` attached, and
//! fails (exit 1) when the on/off ratio exceeds a noise-aware threshold.
//!
//! Methodology: min-of-N whole-corpus passes. The minimum is the right
//! statistic on shared CI runners — co-tenant steal only ever inflates a
//! pass, so the fastest pass of each configuration is the closest
//! estimate of the true cost, and the ratio of minima cancels most
//! machine-speed variation. The default threshold (1.25) sits well above
//! the ~10% overhead the dense core is designed to hold
//! (`docs/OBSERVABILITY.md`) but below the ~40% the legacy string-keyed
//! observer used to cost, so a regression back to map lookups on the hot
//! path trips the gate even on a noisy runner. Override with
//! `OBS_GATE_MAX_RATIO` when a runner class needs a different band.

use std::time::Instant;

use pads::generated::{clf, sirius};
use pads::{BaseMask, Cursor, Mask};
use pads_runtime::MetricsHandle;

const RECORDS: usize = 10_000;
const PASSES: usize = 7;
const DEFAULT_MAX_RATIO: f64 = 1.25;

fn min_ns<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let mut sink = f(); // warm-up pass
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        let dt = t0.elapsed().as_nanos() as f64;
        if dt < best {
            best = dt;
        }
    }
    (best, sink)
}

struct Row {
    name: &'static str,
    off_ns: f64,
    on_ns: f64,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.on_ns / self.off_ns
    }
}

fn gate<'d, R>(
    name: &'static str,
    data: &'d [u8],
    mask: &Mask,
    core: MetricsHandle,
    read: fn(&mut Cursor<'d>, &Mask) -> R,
) -> Row {
    let (off_ns, n_off) = min_ns(|| {
        let mut cur = Cursor::new(data);
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = read(&mut cur, mask);
            n += 1;
        }
        n
    });
    let (on_ns, n_on) = min_ns(|| {
        let mut cur = Cursor::new(data).with_metrics(core.clone());
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = read(&mut cur, mask);
            n += 1;
        }
        n
    });
    // Both configurations must have parsed the same record stream.
    assert_eq!(n_off, n_on, "{name}: record counts diverged");
    Row { name, off_ns, on_ns }
}

fn main() {
    let max_ratio: f64 = std::env::var("OBS_GATE_MAX_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_RATIO);
    let mask = Mask::all(BaseMask::CheckAndSet);

    let (clf_data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
        records: RECORDS,
        dash_length_rate: 0.0,
        ..Default::default()
    });
    let (sirius_data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records: RECORDS,
        syntax_errors: 0,
        sort_violations: 0,
        ..Default::default()
    });
    let body_start = sirius_data
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    let sirius_body = &sirius_data[body_start..];

    let rows = [
        gate(
            "clf_generated",
            &clf_data,
            &mask,
            clf::metrics_core().into_handle(),
            |cur, mask| clf::EntryT::read(cur, mask),
        ),
        gate(
            "sirius_generated",
            sirius_body,
            &mask,
            sirius::metrics_core().into_handle(),
            |cur, mask| sirius::EntryT::read(cur, mask),
        ),
    ];

    println!("obs_gate: min-of-{PASSES} whole-corpus passes, {RECORDS} records");
    let mut failed = false;
    for row in &rows {
        let ratio = row.ratio();
        let verdict = if ratio <= max_ratio { "ok" } else { "FAIL" };
        println!(
            "{:<18} off {:>10.0} ns  metrics {:>10.0} ns  ratio {:.3}  (max {:.2})  {}",
            row.name, row.off_ns, row.on_ns, ratio, max_ratio, verdict
        );
        if ratio > max_ratio {
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "obs_gate: metrics-on overhead exceeded the gate — the dense-ID \
             hot path has regressed (see docs/OBSERVABILITY.md)"
        );
        std::process::exit(1);
    }
}
