//! Peak-RSS probe for the record-sharded merge: parses one large
//! generated CLF corpus and reports the process high-water mark (VmHWM
//! from /proc/self/status) for one of three retention profiles:
//!
//! - `seq` — sequential `records()` iterator, counting consumer
//! - `collect` — `records_par`, which materialises every record before
//!   returning — the retention profile of the pre-streaming merge (and
//!   of any caller that wants a `Vec` back)
//! - `stream` — `records_par_stream` with a counting consumer: workers
//!   are bounded to `--max-inflight-records` ahead of the in-order
//!   merge, so retention stays flat
//!
//! VmHWM is a process-lifetime maximum, so each mode must run in its own
//! process: `rss_bench <seq|collect|stream> [records] [jobs] [inflight]`.
//! Corpus generation is identical across modes and sets the common floor.

use pads::{
    descriptions, BaseMask, Mask, PadsParser, ParseOptions, Registry, ResumePoint,
    DEFAULT_MAX_INFLIGHT,
};
use pads_runtime::WorkerObs;

/// No-observer marker for `records_par_stream`'s factory parameter.
type NoObs = fn() -> (WorkerObs, Box<dyn FnMut()>);

fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .expect("VmHWM value");
        }
    }
    panic!("no VmHWM in /proc/self/status");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("stream");
    let records: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let jobs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let inflight: usize =
        args.get(3).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_MAX_INFLIGHT);

    let (data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
        records,
        ..Default::default()
    });
    let after_gen_kb = vm_hwm_kb();

    let schema = descriptions::clf();
    let registry = Registry::standard();
    let parser = PadsParser::new(&schema, &registry)
        .with_options(ParseOptions::default());
    let mask = Mask::all(BaseMask::CheckAndSet);

    let parsed = match mode {
        "seq" => {
            let mut it = parser.records(&data, "entry_t", &mask);
            it.by_ref().count()
        }
        "collect" => {
            let (items, _budget) = parser.records_par(&data, "entry_t", &mask, jobs);
            items.len()
        }
        "stream" => {
            let mut n = 0usize;
            let _budget = parser.records_par_stream(
                &data,
                "entry_t",
                &mask,
                jobs,
                inflight,
                ResumePoint::default(),
                None::<&NoObs>,
                |_value, _pd, _extra, _progress| n += 1,
            );
            n
        }
        other => {
            eprintln!("rss_bench: unknown mode `{other}` (want seq|collect|stream)");
            std::process::exit(1);
        }
    };

    println!(
        "{{\"mode\": \"{mode}\", \"records\": {parsed}, \"jobs\": {jobs}, \
         \"max_inflight\": {inflight}, \"data_bytes\": {}, \
         \"after_gen_kb\": {after_gen_kb}, \"vm_hwm_kb\": {}}}",
        data.len(),
        vm_hwm_kb()
    );
}
