//! CI regression gate for the bytecode tier: times the interpreter and
//! the VM engine over the clf and sirius corpora with the steal-resistant
//! CPU-clock methodology of `cpu_bench`, and fails (exit 1) when the VM
//! stops beating the interpreter by the required margin.
//!
//! The gate requires `interpreted_ms / vm_ms >= VM_GATE_MIN_SPEEDUP`
//! (default 1.6) on both corpora — the floor the bytecode tier was
//! introduced to clear (see docs/VM.md). Override the env var when a
//! corpus or schema change moves the band deliberately.

use std::time::Instant;

use pads::{descriptions, BaseMask, Engine, Mask, PadsParser, ParseOptions, Registry};

fn cpu_ms() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("read stat");
    let after = stat.rsplit(')').next().unwrap_or(&stat);
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: f64 = fields[11].parse().expect("utime");
    let stime: f64 = fields[12].parse().expect("stime");
    let hz = 100.0; // USER_HZ on Linux
    (utime + stime) * 1000.0 / hz
}

/// Interleaved A/B timing: warms both sides up, then alternates single
/// passes of the two engines, accumulating each side's CPU time
/// separately. Frequency drift and co-tenant cache pressure then hit
/// both engines equally instead of skewing whichever ran second, so the
/// *ratio* is far more stable than timing the sides back to back. The
/// 10 ms jiffy granularity of per-pass deltas is unbiased noise that
/// averages out over the accumulated passes.
fn time_pair<F, G>(label_a: &str, label_b: &str, mut a: F, mut b: G) -> (f64, f64)
where
    F: FnMut() -> usize,
    G: FnMut() -> usize,
{
    let mut sink = a().wrapping_add(b()); // warm-up
    let mut a_ms = 0.0;
    let mut b_ms = 0.0;
    let mut passes = 0usize;
    let w0 = Instant::now();
    while a_ms + b_ms < 3000.0 && w0.elapsed().as_secs() < 60 {
        let c0 = cpu_ms();
        sink = sink.wrapping_add(a());
        let c1 = cpu_ms();
        sink = sink.wrapping_add(b());
        let c2 = cpu_ms();
        a_ms += c1 - c0;
        b_ms += c2 - c1;
        passes += 1;
    }
    let a_pass = a_ms / passes as f64;
    let b_pass = b_ms / passes as f64;
    println!("{label_a:<22} {a_pass:>9.2} ms/pass  ({passes} passes, sink {sink})");
    println!("{label_b:<22} {b_pass:>9.2} ms/pass  ({passes} passes)");
    (a_pass, b_pass)
}

fn main() {
    let min_speedup: f64 = std::env::var("VM_GATE_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.6);
    let registry = Registry::standard();
    let mask = Mask::all(BaseMask::CheckAndSet);
    let vm_opts = ParseOptions { engine: Engine::Vm, ..Default::default() };

    let (sirius_data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records: 10_000,
        syntax_errors: 0,
        sort_violations: 0,
        ..Default::default()
    });
    let body_start = sirius_data.iter().position(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
    let sirius_body = &sirius_data[body_start..];
    let (clf_data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
        records: 10_000,
        dash_length_rate: 0.0,
        ..Default::default()
    });

    let clf_schema = descriptions::clf();
    let sirius_schema = descriptions::sirius();

    let mut failed = false;
    for (name, schema, data) in [
        ("clf", &clf_schema, &clf_data[..]),
        ("sirius", &sirius_schema, sirius_body),
    ] {
        let interp = PadsParser::new(schema, &registry);
        let vm = PadsParser::new(schema, &registry).with_options(vm_opts);
        let (interp_ms, vm_ms) = time_pair(
            &format!("{name}_interpreted"),
            &format!("{name}_vm"),
            || interp.records(data, "entry_t", &mask).count(),
            || vm.records(data, "entry_t", &mask).count(),
        );
        let speedup = interp_ms / vm_ms;
        println!("{name} VM speedup: {speedup:.2}x (gate: >= {min_speedup}x)");
        if speedup < min_speedup {
            eprintln!(
                "vm-gate: FAIL: {name} VM is only {speedup:.2}x faster than the interpreter \
                 (need {min_speedup}x; VM_GATE_MIN_SPEEDUP overrides)"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("vm-gate: OK");
}
