//! Steal-resistant A/B timing: measures process CPU time (utime+stime
//! from /proc/self/stat, jiffies) over many whole-corpus parses, so
//! co-tenant noise that perturbs wall-clock medians cancels out.
//! Prints ms per corpus pass for the four `ablation_codegen` rows.

use std::time::Instant;

use pads::generated::{clf, mixed, sirius};
use pads::{descriptions, BaseMask, Cursor, Engine, Mask, PadsParser, ParseOptions, Registry};
use pads_tools::Accumulator;

fn cpu_ms() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("read stat");
    // Fields 14 and 15 (1-based) after the comm field, which may contain
    // spaces but is parenthesised; split after the closing paren.
    let after = stat.rsplit(')').next().unwrap_or(&stat);
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: f64 = fields[11].parse().expect("utime");
    let stime: f64 = fields[12].parse().expect("stime");
    let hz = 100.0; // USER_HZ on Linux
    (utime + stime) * 1000.0 / hz
}

fn run<F: FnMut() -> usize>(label: &str, mut f: F) {
    // Warm up, then run passes until ~2 s of CPU time has accumulated.
    let mut sink = f();
    let c0 = cpu_ms();
    let w0 = Instant::now();
    let mut passes = 0usize;
    while cpu_ms() - c0 < 2000.0 && w0.elapsed().as_secs() < 30 {
        sink = sink.wrapping_add(f());
        passes += 1;
    }
    let cpu = cpu_ms() - c0;
    println!("{label:<22} {:>9.2} ms/pass  ({passes} passes, sink {sink})", cpu / passes as f64);
}

fn main() {
    let registry = Registry::standard();
    let mask = Mask::all(BaseMask::CheckAndSet);

    let (data, _) = pads_gen::sirius::generate(&pads_gen::SiriusConfig {
        records: 10_000,
        syntax_errors: 0,
        sort_violations: 0,
        ..Default::default()
    });
    let body_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
    let sirius_body = data[body_start..].to_vec();
    let (clf_data, _) = pads_gen::clf::generate(&pads_gen::ClfConfig {
        records: 10_000,
        dash_length_rate: 0.0,
        ..Default::default()
    });

    let sirius_schema = descriptions::sirius();
    let sirius_parser = PadsParser::new(&sirius_schema, &registry);
    let clf_schema = descriptions::clf();
    let clf_parser = PadsParser::new(&clf_schema, &registry);

    let vm_opts = ParseOptions { engine: Engine::Vm, ..Default::default() };
    let sirius_vm = PadsParser::new(&sirius_schema, &registry).with_options(vm_opts);
    let clf_vm = PadsParser::new(&clf_schema, &registry).with_options(vm_opts);

    run("sirius_interpreted", || {
        sirius_parser.records(&sirius_body, "entry_t", &mask).count()
    });
    run("sirius_vm", || sirius_vm.records(&sirius_body, "entry_t", &mask).count());
    run("sirius_generated", || {
        let mut cur = Cursor::new(&sirius_body);
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = sirius::EntryT::read(&mut cur, &mask);
            n += 1;
        }
        n
    });
    run("clf_interpreted", || clf_parser.records(&clf_data, "entry_t", &mask).count());
    run("clf_vm", || clf_vm.records(&clf_data, "entry_t", &mask).count());
    run("clf_generated", || {
        let mut cur = Cursor::new(&clf_data);
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = clf::EntryT::read(&mut cur, &mask);
            n += 1;
        }
        n
    });

    // Dense-core metrics rows: the same generated loops with a counting
    // MetricsCore attached. Steal-resistant companion to the
    // `ablation_observer` criterion rows — the overhead claim in
    // docs/OBSERVABILITY.md divides these by the `*_generated` rows.
    let sirius_core = sirius::metrics_core().into_handle();
    run("sirius_gen_metrics", || {
        let mut cur = Cursor::new(&sirius_body).with_metrics(sirius_core.clone());
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = sirius::EntryT::read(&mut cur, &mask);
            n += 1;
        }
        n
    });
    let clf_core = clf::metrics_core().into_handle();
    run("clf_gen_metrics", || {
        let mut cur = Cursor::new(&clf_data).with_metrics(clf_core.clone());
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = clf::EntryT::read(&mut cur, &mask);
            n += 1;
        }
        n
    });

    // Mixed rec_t: the one bundled record shape with a proven fixed-width
    // prefix, so the generated row exercises the fixed-offset fast path.
    let mut mixed_data = Vec::new();
    for i in 0..10_000usize {
        let sev = ["LOW", "MED", "HIGH"][i % 3];
        mixed_data.extend_from_slice(
            format!(
                "{:04}|{sev}|0|{}|k{:02}=2.5|T|2|{},9\n",
                1000 + (i % 9000),
                i % 100000,
                i % 100,
                i % 50
            )
            .as_bytes(),
        );
    }
    let mixed_schema = descriptions::mixed();
    let mixed_parser = PadsParser::new(&mixed_schema, &registry);
    let mixed_vm = PadsParser::new(&mixed_schema, &registry).with_options(vm_opts);
    run("mixed_interpreted", || {
        mixed_parser.records(&mixed_data, "rec_t", &mask).count()
    });
    run("mixed_vm", || mixed_vm.records(&mixed_data, "rec_t", &mask).count());
    run("mixed_generated", || {
        let mut cur = Cursor::new(&mixed_data);
        let mut n = 0usize;
        while !cur.at_eof() {
            let _ = mixed::RecT::read(&mut cur, &mask);
            n += 1;
        }
        n
    });

    // Accumulator close-path rows: folding one prebuilt columnar batch
    // into a §5.2 accumulator. The row-wise side materialises an owned
    // `Value` tree per record; the columnar side streams the contiguous
    // leaf vectors (`Accumulator::add_batch`'s clean-batch fast path).
    // Identical statistics either way — tests/acc_columnar.rs pins that.
    let (sirius_batch, _) = sirius_parser.records_batched(&sirius_body, "entry_t", &mask);
    run("sirius_acc_rowwise", || {
        let mut acc = Accumulator::new(&sirius_schema, "entry_t");
        for (v, pd) in sirius_batch.rows() {
            acc.add(&v, &pd);
        }
        acc.records as usize
    });
    run("sirius_acc_columnar", || {
        let mut acc = Accumulator::new(&sirius_schema, "entry_t");
        acc.add_batch(&sirius_batch);
        acc.records as usize
    });
    let (clf_batch, _) = clf_parser.records_batched(&clf_data, "entry_t", &mask);
    run("clf_acc_rowwise", || {
        let mut acc = Accumulator::new(&clf_schema, "entry_t");
        for (v, pd) in clf_batch.rows() {
            acc.add(&v, &pd);
        }
        acc.records as usize
    });
    run("clf_acc_columnar", || {
        let mut acc = Accumulator::new(&clf_schema, "entry_t");
        acc.add_batch(&clf_batch);
        acc.records as usize
    });
}
