//! Benchmark harness for the PADS reproduction.
//!
//! One Criterion bench per evaluation artifact of the paper — see
//! DESIGN.md's experiment index and EXPERIMENTS.md for measured results:
//!
//! * `fig10_vetting`, `fig10_selection`, `fig10_count` — the §7 comparison
//!   (PADS vs. hand-written script baselines);
//! * `fig1_sources` — parsing throughput per Figure 1 source class;
//! * `fig_acc_report` — accumulator overhead (§5.2);
//! * `ablation_masks`, `ablation_entrypoints`, `ablation_codegen` — the
//!   design-choice ablations DESIGN.md calls out.
