//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no registry access, so `proptest` is replaced
//! by this in-tree shim (renamed to `proptest` in the root manifest). It
//! keeps the calling convention of the property tests — the [`proptest!`]
//! macro, [`Strategy`] combinators (`prop_map`, `prop_filter`,
//! `prop_recursive`), [`prop_oneof!`], ranges, simple regex-pattern string
//! strategies, [`collection::vec`], [`sample::select`], [`option::of`],
//! [`char::range`] — but generates cases from a deterministic per-test
//! seeded RNG and does **no shrinking**: a failure reports the case number,
//! which reproduces exactly on re-run.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xorshift64* generator; each test case gets its own stream
/// derived from the test name and case index.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary 64-bit value (zero is remapped).
    pub fn new(seed: u64) -> TestRng {
        TestRng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    /// The stream for `case` of the test named `name` — stable across runs.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        h = (h ^ case as u64).wrapping_mul(0x100_0000_01B3);
        TestRng::new(h)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

// ---------------------------------------------------------------------------
// Config and failure type
// ---------------------------------------------------------------------------

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property; produced by the `prop_assert*` macros or returned
/// directly from a test body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Alias kept for API compatibility.
    pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and boxed strategies
// ---------------------------------------------------------------------------

/// A generator of test values (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
    }

    /// Regenerates until `keep` accepts the value (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, keep: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..1_000 {
                let v = inner.generate(rng);
                if keep(&v) {
                    return v;
                }
            }
            panic!("prop_filter retry budget exceeded: {whence}")
        })
    }

    /// Builds recursive values: at each of `depth` levels the value is
    /// either a leaf (this strategy) or one level of `recurse` applied to
    /// the strategy built so far. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility but unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let composite = recurse(cur).boxed();
            let leaf = leaf.clone();
            cur = BoxedStrategy::from_fn(move |rng| {
                if rng.below(2) == 0 {
                    leaf.generate(rng)
                } else {
                    composite.generate(rng)
                }
            });
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn from_fn<F: Fn(&mut TestRng) -> T + 'static>(f: F) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }

    /// Chooses uniformly among `options` each generation (the engine behind
    /// [`prop_oneof!`]).
    pub fn union(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        BoxedStrategy::from_fn(move |rng| {
            let i = rng.below(options.len());
            options[i].generate(rng)
        })
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T` (subset of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Regex-pattern string strategies
// ---------------------------------------------------------------------------

/// One regex atom with its repetition bounds.
#[derive(Debug, Clone)]
enum Atom {
    /// A set of inclusive character ranges (a literal is a 1-char range).
    Class(Vec<(char, char)>),
    /// `\PC` — any non-control character.
    AnyNonControl,
}

fn parse_pattern(pat: &str) -> Vec<(Atom, u32, u32)> {
    let mut out = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    // Single-letter unicode class, e.g. `\PC`; the only use
                    // in this workspace is "anything printable-ish".
                    chars.next();
                    Atom::AnyNonControl
                }
                Some(esc) => Atom::Class(vec![(esc, esc)]),
                None => break,
            },
            '[' => {
                let mut ranges: Vec<(char, char)> = Vec::new();
                let mut prev: Option<char> = None;
                let mut pending_dash = false;
                let mut escaped = false;
                for d in chars.by_ref() {
                    if !escaped && d == '\\' {
                        escaped = true;
                        continue;
                    }
                    if !escaped && d == ']' {
                        break;
                    }
                    if !escaped && d == '-' && prev.is_some() {
                        pending_dash = true;
                    } else if pending_dash {
                        let lo = prev.take().unwrap_or(d);
                        ranges.pop();
                        ranges.push((lo, d));
                        pending_dash = false;
                    } else {
                        ranges.push((d, d));
                        prev = Some(d);
                    }
                    escaped = false;
                }
                if pending_dash {
                    ranges.push(('-', '-'));
                }
                Atom::Class(ranges)
            }
            lit => Atom::Class(vec![(lit, lit)]),
        };
        // Optional counted repetition `{m}` / `{m,n}`.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(0)),
                None => {
                    let m = spec.trim().parse().unwrap_or(1);
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        out.push((atom, min, max));
    }
    out
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    const EXOTIC: &[char] = &['\u{e9}', '\u{3b1}', '\u{2603}', '\u{4e16}', '\u{1F600}'];
    let atoms = parse_pattern(pat);
    let mut out = String::new();
    for (atom, min, max) in atoms {
        let n = min + rng.below((max - min + 1) as usize) as u32;
        for _ in 0..n {
            match &atom {
                Atom::Class(ranges) => {
                    if ranges.is_empty() {
                        continue;
                    }
                    let (lo, hi) = ranges[rng.below(ranges.len())];
                    let span = hi as u32 - lo as u32 + 1;
                    let c = char::from_u32(lo as u32 + rng.below(span as usize) as u32)
                        .unwrap_or(lo);
                    out.push(c);
                }
                Atom::AnyNonControl => {
                    if rng.below(20) == 0 {
                        out.push(EXOTIC[rng.below(EXOTIC.len())]);
                    } else {
                        out.push((0x20 + rng.below(0x5F) as u8) as char);
                    }
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Module-scoped strategy constructors
// ---------------------------------------------------------------------------

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// A vector with length drawn from `len` and elements from `elem`.
    pub fn vec<S>(elem: S, len: std::ops::Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng: &mut TestRng| {
            let span = len.end.saturating_sub(len.start).max(1);
            let n = len.start + rng.below(span);
            (0..n).map(|_| elem.generate(rng)).collect()
        })
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use super::{BoxedStrategy, TestRng};

    /// Uniformly selects one of `options` (cloned).
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        BoxedStrategy::from_fn(move |rng: &mut TestRng| options[rng.below(options.len())].clone())
    }
}

/// Option strategies (subset of `proptest::option`).
pub mod option {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng: &mut TestRng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

/// Char strategies (subset of `proptest::char`).
pub mod char {
    use super::{BoxedStrategy, TestRng};

    /// A char in the inclusive range `[lo, hi]`.
    pub fn range(lo: char, hi: char) -> BoxedStrategy<char> {
        assert!(lo <= hi, "cannot sample empty char range");
        BoxedStrategy::from_fn(move |rng: &mut TestRng| {
            let span = hi as u32 - lo as u32 + 1;
            // Retry values landing in the surrogate gap.
            for _ in 0..64 {
                if let Some(c) = std::char::from_u32(lo as u32 + rng.below(span as usize) as u32) {
                    return c;
                }
            }
            lo
        })
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl ($cfg); $($rest)*}
    };
    (@impl ($cfg:expr); $( #[test] fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("property failed at case {case}: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl ($crate::ProptestConfig::default()); $($rest)*}
    };
}

/// Uniformly chooses among the listed strategies each generation.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// The usual glob import surface (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = TestRng::new(5);
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase(), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let s = Strategy::generate(&"[ -~]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.bytes().all(|b| (0x20..=0x7E).contains(&b)), "{s:?}");

            let s = Strategy::generate(&"[a-zA-Z0-9 _.-]{0,8}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = TestRng::new(9);
        let strat = (0u8..4, -5i64..=5).prop_map(|(a, b)| (a as i64) + b);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((-5..=8).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(size).sum::<usize>(),
            }
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(4, 48, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(size(&t) <= 1 + 4 + 16 + 64 + 256);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u32..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b, "b was {}", b);
        }
    }
}
