//! Property tests on runtime invariants: date conversions, decimal
//! encodings, base-type parse/write round trips, and EBCDIC translation.

use pads_runtime::base::Registry;
use pads_runtime::date::{civil_from_epoch, days_from_civil, epoch_from_civil, DateStyle, PDate};
use pads_runtime::io::{Cursor, RecordDiscipline};
use pads_runtime::{Charset, Endian, Prim};
use proptest::prelude::*;

proptest! {
    #[test]
    fn civil_epoch_round_trip(epoch in -2_000_000_000i64..4_000_000_000i64) {
        let c = civil_from_epoch(epoch);
        prop_assert_eq!(epoch_from_civil(&c), epoch);
        prop_assert!((1..=12).contains(&c.month));
        prop_assert!((1..=31).contains(&c.day));
        prop_assert!(c.hour < 24 && c.minute < 60 && c.second < 60);
    }

    #[test]
    fn days_civil_inverse(days in -1_000_000i64..1_000_000i64) {
        let (y, m, d) = pads_runtime::date::civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
    }

    #[test]
    fn date_original_form_reparses(epoch in 0i64..2_000_000_000, style_idx in 0usize..5,
                                   tz in -720i32..721) {
        let style = [
            DateStyle::Clf,
            DateStyle::IsoDateTime,
            DateStyle::IsoDate,
            DateStyle::UsSlash,
            DateStyle::Epoch,
        ][style_idx];
        // Date-only styles truncate to midnight; normalise first.
        let epoch = match style {
            DateStyle::IsoDate | DateStyle::UsSlash => epoch - epoch.rem_euclid(86_400),
            _ => epoch,
        };
        let tz_minutes = if style == DateStyle::Clf { tz } else { 0 };
        let d = PDate { epoch, tz_minutes, style };
        let text = d.to_original();
        let re = PDate::parse(&text).expect("original form must reparse");
        prop_assert_eq!(re.epoch, epoch, "style {:?} text {}", style, text);
        prop_assert_eq!(re.style, style);
        prop_assert_eq!(re.tz_minutes, tz_minutes);
    }

    #[test]
    fn zoned_round_trips(v in -99_999i64..=99_999) {
        let reg = Registry::standard();
        let ty = reg.get("Pebc_zoned").unwrap();
        let args = [Prim::Uint(5)];
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::Int(v), &args, Charset::Ebcdic, Endian::Big).unwrap();
        let mut cur = Cursor::new(&out).with_discipline(RecordDiscipline::None);
        prop_assert_eq!(ty.parse(&mut cur, &args).unwrap(), Prim::Int(v));
    }

    #[test]
    fn packed_round_trips(v in -9_999_999i64..=9_999_999, extra in 0u64..3) {
        let reg = Registry::standard();
        let ty = reg.get("Ppacked").unwrap();
        let args = [Prim::Uint(7 + extra)];
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::Int(v), &args, Charset::Ebcdic, Endian::Big).unwrap();
        let mut cur = Cursor::new(&out).with_discipline(RecordDiscipline::None);
        prop_assert_eq!(ty.parse(&mut cur, &args).unwrap(), Prim::Int(v));
    }

    #[test]
    fn text_uints_round_trip(v in any::<u32>()) {
        let reg = Registry::standard();
        let ty = reg.get("Puint32").unwrap();
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::Uint(v as u64), &[], Charset::Ascii, Endian::Big).unwrap();
        let mut cur = Cursor::new(&out).with_discipline(RecordDiscipline::None);
        prop_assert_eq!(ty.parse(&mut cur, &[]).unwrap(), Prim::Uint(v as u64));
    }

    #[test]
    fn binary_ints_round_trip(v in any::<i64>(), width_idx in 0usize..4, le in any::<bool>()) {
        let bits = [8, 16, 32, 64][width_idx];
        let v = if bits < 64 {
            v.rem_euclid(1i64 << (bits - 1)) - (1i64 << (bits - 2))
        } else {
            v
        };
        let reg = Registry::standard();
        let name = format!("Pb_int{bits}");
        let ty = reg.get(&name).unwrap();
        let endian = if le { Endian::Little } else { Endian::Big };
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::Int(v), &[], Charset::Ascii, endian).unwrap();
        prop_assert_eq!(out.len(), bits / 8);
        let mut cur = Cursor::new(&out)
            .with_discipline(RecordDiscipline::None)
            .with_endian(endian);
        prop_assert_eq!(ty.parse(&mut cur, &[]).unwrap(), Prim::Int(v));
    }

    #[test]
    fn ebcdic_translation_is_bijective_on_printables(bytes in proptest::collection::vec(0x20u8..0x7f, 0..64)) {
        let enc: Vec<u8> = bytes.iter().map(|&b| Charset::Ebcdic.encode(b)).collect();
        let dec: Vec<u8> = enc.iter().map(|&b| Charset::Ebcdic.decode(b)).collect();
        prop_assert_eq!(dec, bytes);
    }

    #[test]
    fn strings_round_trip_through_terminated_form(
        s in "[a-zA-Z0-9 ._-]{0,40}",
        cs_ebcdic in any::<bool>(),
    ) {
        let cs = if cs_ebcdic { Charset::Ebcdic } else { Charset::Ascii };
        let reg = Registry::standard();
        let ty = reg.get("Pstring").unwrap();
        let args = [Prim::Char(b'|')];
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::String(s.clone()), &args, cs, Endian::Big).unwrap();
        out.push(cs.encode(b'|'));
        let mut cur = Cursor::new(&out).with_discipline(RecordDiscipline::None).with_charset(cs);
        prop_assert_eq!(ty.parse(&mut cur, &args).unwrap(), Prim::String(s));
    }
}
