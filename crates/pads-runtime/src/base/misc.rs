//! Miscellaneous base types: IP addresses, hostnames, dates, zip codes,
//! floats, and the void type that backs `Popt`.

use std::sync::Arc;

use crate::base::{arg_char, BaseType, PrimView, Registry};
use crate::date::PDate;
use crate::encoding::{Charset, Endian};
use crate::error::ErrorCode;
use crate::io::Cursor;
use crate::prim::{Prim, PrimKind};
use crate::scan::{find_literal, skip_class, ClassBitmap};

/// ASCII `0`..`9` (bits 48–57 of word 0).
const DIGITS: ClassBitmap = ClassBitmap::from_bits([0x03FF_0000_0000_0000, 0, 0, 0]);

/// Hostname label bytes `[A-Za-z0-9.-]`: `-` (45), `.` (46), digits in
/// word 0; upper- and lowercase letters in word 1.
const HOST_CHARS: ClassBitmap =
    ClassBitmap::from_bits([0x03FF_6000_0000_0000, 0x07FF_FFFE_07FF_FFFE, 0, 0]);

/// IPv4 dotted-quad address (`Pip`), e.g. `135.207.23.32`.
struct IpBase;

impl BaseType for IpBase {
    fn name(&self) -> &str {
        "Pip"
    }

    fn kind(&self) -> PrimKind {
        PrimKind::Ip
    }

    fn parse(&self, cur: &mut Cursor<'_>, _args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        if cs == Charset::Ascii {
            // Slice fast path: scan each digit run in bulk, one advance at
            // the end. Errors leave the cursor wherever the scan stopped —
            // every caller restores its checkpoint on failure.
            let rest = cur.rest();
            let mut at = 0usize;
            let mut octets = [0u8; 4];
            for (i, octet) in octets.iter_mut().enumerate() {
                if i > 0 {
                    if rest.get(at) != Some(&b'.') {
                        return Err(ErrorCode::BadIp);
                    }
                    at += 1;
                }
                let n = skip_class(&rest[at..], &DIGITS).min(3);
                if n == 0 {
                    return Err(ErrorCode::BadIp);
                }
                let mut val: u32 = 0;
                for &b in &rest[at..at + n] {
                    val = val * 10 + (b - b'0') as u32;
                }
                if val > 255 {
                    return Err(ErrorCode::BadIp);
                }
                *octet = val as u8;
                at += n;
            }
            // A trailing digit or dot would mean we mis-lexed a longer
            // token (e.g. a 5-part dotted name); reject so a union can try
            // hostnames.
            if let Some(&next) = rest.get(at) {
                if next == b'.' || next.is_ascii_digit() {
                    return Err(ErrorCode::BadIp);
                }
            }
            cur.advance(at);
            return Ok(Prim::Ip(octets));
        }
        let mut octets = [0u8; 4];
        for (i, octet) in octets.iter_mut().enumerate() {
            if i > 0 {
                if cur.peek().map(|b| cs.decode(b)) != Some(b'.') {
                    return Err(ErrorCode::BadIp);
                }
                cur.advance(1);
            }
            let mut val: u32 = 0;
            let mut digits = 0;
            while digits < 3 {
                match cur.peek().and_then(|b| cs.digit_value(b)) {
                    Some(d) => {
                        val = val * 10 + d as u32;
                        cur.advance(1);
                        digits += 1;
                    }
                    None => break,
                }
            }
            if digits == 0 || val > 255 {
                return Err(ErrorCode::BadIp);
            }
            *octet = val as u8;
        }
        // A trailing digit or dot would mean we mis-lexed a longer token
        // (e.g. a 5-part dotted name); reject so a union can try hostnames.
        if let Some(next) = cur.peek().map(|b| cs.decode(b)) {
            if next == b'.' || next.is_ascii_digit() {
                return Err(ErrorCode::BadIp);
            }
        }
        Ok(Prim::Ip(octets))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::Ip(o) => {
                let s = format!("{}.{}.{}.{}", o[0], o[1], o[2], o[3]);
                out.extend(s.bytes().map(|b| charset.encode(b)));
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// DNS-style hostname (`Phostname`): dot-separated labels of letters,
/// digits, and hyphens, containing at least one letter.
struct HostnameBase;

/// ASCII bulk path shared by `Phostname`'s `parse` and `parse_view`: grab
/// the whole `[A-Za-z0-9.-]` run, then apply the per-byte loop's stopping
/// rules on the slice. That loop never consumes a dot unless a label byte
/// follows, so it stops before a double dot and before a trailing dot. The
/// returned name borrows the cursor's buffer.
fn host_ascii<'d>(cur: &mut Cursor<'d>) -> Result<&'d str, ErrorCode> {
    let rest = cur.rest();
    let run = skip_class(rest, &HOST_CHARS);
    let mut raw = &rest[..run];
    if let Some(i) = find_literal(raw, b"..") {
        raw = &raw[..i];
    }
    if raw.last() == Some(&b'.') {
        raw = &raw[..raw.len() - 1];
    }
    if raw.first() == Some(&b'.') {
        // Leading dot: the byte loop stops immediately, name empty.
        raw = &raw[..0];
    }
    let has_alpha = raw.iter().any(|b| b.is_ascii_alphabetic());
    if raw.is_empty() || !has_alpha {
        return Err(ErrorCode::BadHostname);
    }
    cur.advance(raw.len());
    match std::str::from_utf8(raw) {
        Ok(s) => Ok(s),
        Err(_) => unreachable!("HOST_CHARS is pure ASCII"),
    }
}

impl BaseType for HostnameBase {
    fn name(&self) -> &str {
        "Phostname"
    }

    fn kind(&self) -> PrimKind {
        PrimKind::String
    }

    fn parse(&self, cur: &mut Cursor<'_>, _args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        if cs == Charset::Ascii {
            return host_ascii(cur).map(|s| Prim::String(s.to_owned()));
        }
        let mut name = String::new();
        let mut has_alpha = false;
        let mut last_was_dot = true; // a leading dot is invalid
        loop {
            match cur.peek().map(|b| cs.decode(b)) {
                Some(c) if c.is_ascii_alphanumeric() || c == b'-' => {
                    has_alpha |= c.is_ascii_alphabetic();
                    name.push(c as char);
                    last_was_dot = false;
                    cur.advance(1);
                }
                Some(b'.') if !last_was_dot => {
                    // Only consume the dot if a label follows.
                    match cur.peek_at(1).map(|b| cs.decode(b)) {
                        Some(c) if c.is_ascii_alphanumeric() || c == b'-' => {
                            name.push('.');
                            last_was_dot = true;
                            cur.advance(1);
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        if name.is_empty() || !has_alpha || last_was_dot {
            return Err(ErrorCode::BadHostname);
        }
        Ok(Prim::String(name))
    }

    fn parse_view<'d>(
        &self,
        cur: &mut Cursor<'d>,
        args: &[Prim],
    ) -> Result<PrimView<'d>, ErrorCode> {
        if cur.charset() == Charset::Ascii {
            return host_ascii(cur).map(PrimView::Str);
        }
        self.parse(cur, args).map(PrimView::Owned)
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::String(s) => {
                out.extend(s.bytes().map(|b| charset.encode(b)));
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// Date terminated by a character (`Pdate(:']':)`) or by the record end
/// (no argument). Accepts the styles in [`crate::date`].
struct DateBase;

impl BaseType for DateBase {
    fn name(&self) -> &str {
        "Pdate"
    }

    fn arity(&self) -> (usize, usize) {
        (0, 1)
    }

    fn kind(&self) -> PrimKind {
        PrimKind::Date
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        let len = if args.is_empty() {
            cur.remaining()
        } else {
            let term = cs.encode(arg_char(args, 0)?);
            cur.find_byte(term).unwrap_or(cur.remaining())
        };
        let raw = cur.take(len)?;
        let text = cs.decode_text_cow(raw);
        let date = PDate::parse(&text).ok_or(ErrorCode::BadDate)?;
        Ok(Prim::Date(date))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::Date(d) => {
                out.extend(d.to_original().bytes().map(|b| charset.encode(b)));
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// US postal code (`Pzip`): five digits, optionally `-dddd` (ZIP+4).
/// Kept as a string to preserve leading zeros (e.g. `07988` in Figure 3).
struct ZipBase;

/// ASCII bulk path shared by `Pzip`'s `parse` and `parse_view`: exactly
/// five digits, optionally `-dddd`, with the same sixth-consecutive-digit
/// rejection as the byte loop. Digit runs are measured in bulk, so the
/// accepted text is a verbatim slice of the input. Errors may leave the
/// cursor short of where the byte loop would — callers restore on failure.
fn zip_ascii<'d>(cur: &mut Cursor<'d>) -> Result<&'d str, ErrorCode> {
    let rest = cur.rest();
    let run = skip_class(rest, &DIGITS);
    if run != 5 {
        return Err(ErrorCode::BadZip);
    }
    let mut len = 5;
    // Optional +4 extension: a `-` followed by exactly four digits.
    if rest.get(5) == Some(&b'-') {
        let ext = skip_class(&rest[6..], &DIGITS);
        if ext >= 1 {
            if ext != 4 {
                return Err(ErrorCode::BadZip);
            }
            len = 10;
        }
    }
    let raw = &rest[..len];
    cur.advance(len);
    match std::str::from_utf8(raw) {
        Ok(s) => Ok(s),
        Err(_) => unreachable!("digits and '-' are pure ASCII"),
    }
}

impl BaseType for ZipBase {
    fn name(&self) -> &str {
        "Pzip"
    }

    fn kind(&self) -> PrimKind {
        PrimKind::String
    }

    fn parse(&self, cur: &mut Cursor<'_>, _args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        if cs == Charset::Ascii {
            return zip_ascii(cur).map(|s| Prim::String(s.to_owned()));
        }
        let mut s = String::new();
        for _ in 0..5 {
            match cur.peek().and_then(|b| cs.digit_value(b)) {
                Some(d) => {
                    s.push((b'0' + d) as char);
                    cur.advance(1);
                }
                None => return Err(ErrorCode::BadZip),
            }
        }
        // Optional +4 extension.
        if cur.peek().map(|b| cs.decode(b)) == Some(b'-')
            && cur.peek_at(1).and_then(|b| cs.digit_value(b)).is_some()
        {
            s.push('-');
            cur.advance(1);
            for _ in 0..4 {
                match cur.peek().and_then(|b| cs.digit_value(b)) {
                    Some(d) => {
                        s.push((b'0' + d) as char);
                        cur.advance(1);
                    }
                    None => return Err(ErrorCode::BadZip),
                }
            }
        }
        // A sixth consecutive digit means this is not a zip code.
        if cur.peek().and_then(|b| cs.digit_value(b)).is_some() {
            return Err(ErrorCode::BadZip);
        }
        Ok(Prim::String(s))
    }

    fn parse_view<'d>(
        &self,
        cur: &mut Cursor<'d>,
        args: &[Prim],
    ) -> Result<PrimView<'d>, ErrorCode> {
        if cur.charset() == Charset::Ascii {
            return zip_ascii(cur).map(PrimView::Str);
        }
        self.parse(cur, args).map(PrimView::Owned)
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::String(s) => {
                out.extend(s.bytes().map(|b| charset.encode(b)));
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// ASCII floating-point number (`Pfloat32` / `Pfloat64`).
struct FloatBase {
    name: &'static str,
}

impl BaseType for FloatBase {
    fn name(&self) -> &str {
        self.name
    }

    fn kind(&self) -> PrimKind {
        PrimKind::Float
    }

    fn parse(&self, cur: &mut Cursor<'_>, _args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        let mut text = String::new();
        let mut i = 0usize;
        let peek = |cur: &Cursor<'_>, i: usize| cur.peek_at(i).map(|b| cs.decode(b));
        if let Some(c @ (b'-' | b'+')) = peek(cur, i) {
            text.push(c as char);
            i += 1;
        }
        let mut digits = 0;
        while let Some(c) = peek(cur, i) {
            if c.is_ascii_digit() {
                text.push(c as char);
                i += 1;
                digits += 1;
            } else {
                break;
            }
        }
        if peek(cur, i) == Some(b'.') && peek(cur, i + 1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            i += 1;
            while let Some(c) = peek(cur, i) {
                if c.is_ascii_digit() {
                    text.push(c as char);
                    i += 1;
                    digits += 1;
                } else {
                    break;
                }
            }
        }
        if digits == 0 {
            return Err(ErrorCode::BadFloat);
        }
        // Optional exponent.
        if matches!(peek(cur, i), Some(b'e') | Some(b'E')) {
            let mut j = i + 1;
            if matches!(peek(cur, j), Some(b'-') | Some(b'+')) {
                j += 1;
            }
            if peek(cur, j).is_some_and(|c| c.is_ascii_digit()) {
                text.push('e');
                if matches!(peek(cur, i + 1), Some(b'-')) {
                    text.push('-');
                } else if matches!(peek(cur, i + 1), Some(b'+')) {
                    text.push('+');
                }
                i = j;
                while let Some(c) = peek(cur, i) {
                    if c.is_ascii_digit() {
                        text.push(c as char);
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
        }
        let v: f64 = text.parse().map_err(|_| ErrorCode::BadFloat)?;
        cur.advance(i);
        Ok(Prim::Float(v))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::Float(v) => {
                out.extend(v.to_string().bytes().map(|b| charset.encode(b)));
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// The void type: matches always, consumes nothing. Backs the absent branch
/// of `Popt` (§3: "the 'void' type, which always matches but never consumes
/// any input").
struct VoidBase;

impl BaseType for VoidBase {
    fn name(&self) -> &str {
        "Pvoid"
    }

    fn kind(&self) -> PrimKind {
        PrimKind::Unit
    }

    fn parse(&self, _cur: &mut Cursor<'_>, _args: &[Prim]) -> Result<Prim, ErrorCode> {
        Ok(Prim::Unit)
    }

    fn write(
        &self,
        _out: &mut Vec<u8>,
        _val: &Prim,
        _args: &[Prim],
        _charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        Ok(())
    }
}

/// Registers the miscellaneous base types.
pub fn register_all(reg: &mut Registry) {
    reg.register(Arc::new(IpBase));
    reg.register(Arc::new(HostnameBase));
    reg.register(Arc::new(DateBase));
    reg.register(Arc::new(ZipBase));
    reg.register(Arc::new(FloatBase { name: "Pfloat32" }));
    reg.register(Arc::new(FloatBase { name: "Pfloat64" }));
    reg.register(Arc::new(VoidBase));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RecordDiscipline;

    fn parse(ty: &str, data: &[u8], args: &[Prim]) -> Result<Prim, ErrorCode> {
        let reg = Registry::standard();
        let mut cur = Cursor::new(data).with_discipline(RecordDiscipline::None);
        reg.get(ty).expect(ty).parse(&mut cur, args)
    }

    #[test]
    fn ip_parses_figure_2_client() {
        assert_eq!(parse("Pip", b"207.136.97.49 -", &[]), Ok(Prim::Ip([207, 136, 97, 49])));
    }

    #[test]
    fn ip_rejections() {
        assert_eq!(parse("Pip", b"256.1.1.1", &[]), Err(ErrorCode::BadIp));
        assert_eq!(parse("Pip", b"1.2.3", &[]), Err(ErrorCode::BadIp));
        assert_eq!(parse("Pip", b"1.2.3.4.5", &[]), Err(ErrorCode::BadIp));
        assert_eq!(parse("Pip", b"1.2.3.4567", &[]), Err(ErrorCode::BadIp));
        assert_eq!(parse("Pip", b"tj62.aol.com", &[]), Err(ErrorCode::BadIp));
    }

    #[test]
    fn hostname_parses_figure_2_client() {
        assert_eq!(
            parse("Phostname", b"tj62.aol.com - -", &[]),
            Ok(Prim::String("tj62.aol.com".into()))
        );
        assert_eq!(
            parse("Phostname", b"www.research.att.com", &[]),
            Ok(Prim::String("www.research.att.com".into()))
        );
    }

    #[test]
    fn hostname_requires_a_letter() {
        assert_eq!(parse("Phostname", b"1.2.3.4", &[]), Err(ErrorCode::BadHostname));
        assert_eq!(parse("Phostname", b"...", &[]), Err(ErrorCode::BadHostname));
    }

    #[test]
    fn hostname_stops_at_trailing_dot() {
        // "host." followed by a space: the dot is not consumed.
        let reg = Registry::standard();
        let mut cur = Cursor::new(b"abc. rest").with_discipline(RecordDiscipline::None);
        let v = reg.get("Phostname").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::String("abc".into()));
        assert_eq!(cur.peek(), Some(b'.'));
    }

    #[test]
    fn date_with_terminator() {
        let v = parse("Pdate", b"15/Oct/1997:18:46:51 -0700] rest", &[Prim::Char(b']')]).unwrap();
        match v {
            Prim::Date(d) => assert_eq!(d.tz_minutes, -420),
            other => panic!("expected date, got {other:?}"),
        }
        assert_eq!(
            parse("Pdate", b"nonsense]", &[Prim::Char(b']')]),
            Err(ErrorCode::BadDate)
        );
    }

    #[test]
    fn zip_preserves_leading_zeros() {
        assert_eq!(parse("Pzip", b"07988|", &[]), Ok(Prim::String("07988".into())));
        assert_eq!(parse("Pzip", b"12345-6789|", &[]), Ok(Prim::String("12345-6789".into())));
        assert_eq!(parse("Pzip", b"1234|", &[]), Err(ErrorCode::BadZip));
        assert_eq!(parse("Pzip", b"123456|", &[]), Err(ErrorCode::BadZip));
    }

    #[test]
    fn floats() {
        assert_eq!(parse("Pfloat64", b"3.5x", &[]), Ok(Prim::Float(3.5)));
        assert_eq!(parse("Pfloat64", b"-2", &[]), Ok(Prim::Float(-2.0)));
        assert_eq!(parse("Pfloat64", b"1e3,", &[]), Ok(Prim::Float(1000.0)));
        assert_eq!(parse("Pfloat64", b"2.5e-1", &[]), Ok(Prim::Float(0.25)));
        assert_eq!(parse("Pfloat64", b".", &[]), Err(ErrorCode::BadFloat));
        // "1." leaves the dot unconsumed.
        let reg = Registry::standard();
        let mut cur = Cursor::new(b"1.x").with_discipline(RecordDiscipline::None);
        let v = reg.get("Pfloat64").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Float(1.0));
        assert_eq!(cur.peek(), Some(b'.'));
    }

    #[test]
    fn void_consumes_nothing() {
        let reg = Registry::standard();
        let mut cur = Cursor::new(b"abc").with_discipline(RecordDiscipline::None);
        let v = reg.get("Pvoid").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Unit);
        assert_eq!(cur.offset(), 0);
    }

    #[test]
    fn ip_round_trip() {
        let reg = Registry::standard();
        let mut out = Vec::new();
        reg.get("Pip")
            .unwrap()
            .write(&mut out, &Prim::Ip([135, 207, 23, 32]), &[], Charset::Ascii, Endian::Big)
            .unwrap();
        assert_eq!(out, b"135.207.23.32");
    }

    #[test]
    fn date_round_trip_preserves_original_form() {
        let reg = Registry::standard();
        let input = b"16/Oct/1997:14:32:22 -0700]";
        let mut cur = Cursor::new(input).with_discipline(RecordDiscipline::None);
        let v = reg.get("Pdate").unwrap().parse(&mut cur, &[Prim::Char(b']')]).unwrap();
        let mut out = Vec::new();
        reg.get("Pdate").unwrap().write(&mut out, &v, &[], Charset::Ascii, Endian::Big).unwrap();
        assert_eq!(out, b"16/Oct/1997:14:32:22 -0700");
    }
}
