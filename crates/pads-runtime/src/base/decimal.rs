//! Cobol decimal base types: zoned (DISPLAY) and packed (COMP-3).
//!
//! The Altair billing pipeline of the paper receives ~4000 Cobol files per
//! day; its copybooks declare `PIC 9` fields as zoned decimal and
//! `COMP-3` fields as packed decimal. These base types give the
//! `pads-cobol` translator direct targets.

use std::sync::Arc;

use crate::base::{arg_u64, BaseType, Registry};
use crate::encoding::{Charset, Endian};
use crate::error::ErrorCode;
use crate::io::Cursor;
use crate::prim::{Prim, PrimKind};

/// Zoned decimal (`Pebc_zoned(:digits:)`): one EBCDIC byte per digit, the
/// final byte's zone nibble optionally carrying the sign (`C`/`F` positive,
/// `D` negative).
struct ZonedBase;

impl BaseType for ZonedBase {
    fn name(&self) -> &str {
        "Pebc_zoned"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn kind(&self) -> PrimKind {
        PrimKind::Int
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let ndigits = arg_u64(args, 0)? as usize;
        if ndigits == 0 || ndigits > 18 {
            return Err(ErrorCode::EvalError);
        }
        let raw = cur.take(ndigits)?;
        let mut val: i64 = 0;
        let mut negative = false;
        for (i, &b) in raw.iter().enumerate() {
            let zone = b >> 4;
            let digit = b & 0x0F;
            if digit > 9 {
                return Err(ErrorCode::BadDecimal);
            }
            let last = i == ndigits - 1;
            match zone {
                0xF => {}
                0xC if last => {}
                0xD if last => negative = true,
                _ => return Err(ErrorCode::BadDecimal),
            }
            val = val * 10 + digit as i64;
        }
        Ok(Prim::Int(if negative { -val } else { val }))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        args: &[Prim],
        _charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        let ndigits = arg_u64(args, 0)? as usize;
        let v = val.as_i64().ok_or(ErrorCode::EvalError)?;
        let digits = format!("{:0>width$}", v.unsigned_abs(), width = ndigits);
        if digits.len() > ndigits {
            return Err(ErrorCode::RangeError);
        }
        let bytes: Vec<u8> = digits.bytes().map(|d| 0xF0 | (d - b'0')).collect();
        let mut bytes = bytes;
        if let Some(last) = bytes.last_mut() {
            let zone = if v < 0 { 0xD0 } else { 0xC0 };
            *last = zone | (*last & 0x0F);
        }
        out.extend_from_slice(&bytes);
        Ok(())
    }
}

/// Packed decimal (`Ppacked(:digits:)`, Cobol COMP-3): two digits per byte,
/// the final nibble carrying the sign (`C`/`F` positive, `D` negative).
/// Occupies `(digits + 2) / 2` bytes.
struct PackedBase;

/// Storage size in bytes of a packed decimal with `ndigits` digits.
pub fn packed_len(ndigits: usize) -> usize {
    ndigits / 2 + 1
}

impl BaseType for PackedBase {
    fn name(&self) -> &str {
        "Ppacked"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn kind(&self) -> PrimKind {
        PrimKind::Int
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let ndigits = arg_u64(args, 0)? as usize;
        if ndigits == 0 || ndigits > 18 {
            return Err(ErrorCode::EvalError);
        }
        let nbytes = packed_len(ndigits);
        let raw = cur.take(nbytes)?;
        let mut val: i64 = 0;
        let mut nibbles = Vec::with_capacity(nbytes * 2);
        for &b in raw {
            nibbles.push(b >> 4);
            nibbles.push(b & 0x0F);
        }
        let Some(sign) = nibbles.pop() else {
            return Err(ErrorCode::BadDecimal);
        };
        let negative = match sign {
            0xC | 0xF | 0xA | 0xE => false,
            0xD | 0xB => true,
            _ => return Err(ErrorCode::BadDecimal),
        };
        // When ndigits is even the leading nibble is a zero pad.
        if nibbles.len() > ndigits {
            let pad = nibbles.remove(0);
            if pad != 0 {
                return Err(ErrorCode::BadDecimal);
            }
        }
        for n in nibbles {
            if n > 9 {
                return Err(ErrorCode::BadDecimal);
            }
            val = val * 10 + n as i64;
        }
        Ok(Prim::Int(if negative { -val } else { val }))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        args: &[Prim],
        _charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        let ndigits = arg_u64(args, 0)? as usize;
        let v = val.as_i64().ok_or(ErrorCode::EvalError)?;
        let digits = format!("{:0>width$}", v.unsigned_abs(), width = ndigits);
        if digits.len() > ndigits {
            return Err(ErrorCode::RangeError);
        }
        let mut nibbles: Vec<u8> = Vec::with_capacity(ndigits + 2);
        if ndigits.is_multiple_of(2) {
            nibbles.push(0); // pad to a whole number of bytes
        }
        nibbles.extend(digits.bytes().map(|d| d - b'0'));
        nibbles.push(if v < 0 { 0xD } else { 0xC });
        for pair in nibbles.chunks(2) {
            out.push(pair[0] << 4 | pair[1]);
        }
        Ok(())
    }
}

/// Registers the decimal base types.
pub fn register_all(reg: &mut Registry) {
    reg.register(Arc::new(ZonedBase));
    reg.register(Arc::new(PackedBase));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RecordDiscipline;

    fn parse(ty: &str, data: &[u8], digits: u64) -> Result<Prim, ErrorCode> {
        let reg = Registry::standard();
        let mut cur = Cursor::new(data).with_discipline(RecordDiscipline::None);
        reg.get(ty).expect(ty).parse(&mut cur, &[Prim::Uint(digits)])
    }

    #[test]
    fn zoned_unsigned() {
        // 123 unsigned zoned: F1 F2 F3.
        assert_eq!(parse("Pebc_zoned", &[0xF1, 0xF2, 0xF3], 3), Ok(Prim::Int(123)));
    }

    #[test]
    fn zoned_signed() {
        // +123: F1 F2 C3; -123: F1 F2 D3.
        assert_eq!(parse("Pebc_zoned", &[0xF1, 0xF2, 0xC3], 3), Ok(Prim::Int(123)));
        assert_eq!(parse("Pebc_zoned", &[0xF1, 0xF2, 0xD3], 3), Ok(Prim::Int(-123)));
    }

    #[test]
    fn zoned_rejects_bad_zone_or_digit() {
        assert_eq!(parse("Pebc_zoned", &[0xC1, 0xF2, 0xF3], 3), Err(ErrorCode::BadDecimal));
        assert_eq!(parse("Pebc_zoned", &[0xF1, 0xFA, 0xF3], 3), Err(ErrorCode::BadDecimal));
    }

    #[test]
    fn packed_round_trip() {
        let reg = Registry::standard();
        let ty = reg.get("Ppacked").unwrap();
        for (v, nd) in [(0i64, 1), (5, 1), (-5, 1), (12345, 5), (-12345, 5), (99, 2), (-1, 3)] {
            let args = [Prim::Uint(nd)];
            let mut out = Vec::new();
            ty.write(&mut out, &Prim::Int(v), &args, Charset::Ascii, Endian::Big).unwrap();
            assert_eq!(out.len(), packed_len(nd as usize));
            let mut cur = Cursor::new(&out).with_discipline(RecordDiscipline::None);
            assert_eq!(ty.parse(&mut cur, &args).unwrap(), Prim::Int(v), "value {v} digits {nd}");
        }
    }

    #[test]
    fn packed_known_encoding() {
        // 12345 as COMP-3: 12 34 5C.
        assert_eq!(parse("Ppacked", &[0x12, 0x34, 0x5C], 5), Ok(Prim::Int(12345)));
        assert_eq!(parse("Ppacked", &[0x12, 0x34, 0x5D], 5), Ok(Prim::Int(-12345)));
        // Even digit count gets a leading pad nibble: 0012 34C for 1234 (4 digits).
        assert_eq!(parse("Ppacked", &[0x01, 0x23, 0x4C], 4), Ok(Prim::Int(1234)));
    }

    #[test]
    fn packed_rejects_bad_sign_nibble() {
        assert_eq!(parse("Ppacked", &[0x12, 0x34, 0x55], 5), Err(ErrorCode::BadDecimal));
    }

    #[test]
    fn zoned_round_trip() {
        let reg = Registry::standard();
        let ty = reg.get("Pebc_zoned").unwrap();
        for v in [0i64, 7, -7, 999, -999] {
            let args = [Prim::Uint(3)];
            let mut out = Vec::new();
            ty.write(&mut out, &Prim::Int(v), &args, Charset::Ascii, Endian::Big).unwrap();
            let mut cur = Cursor::new(&out).with_discipline(RecordDiscipline::None);
            assert_eq!(ty.parse(&mut cur, &args).unwrap(), Prim::Int(v));
        }
    }
}
