//! String and character base types.
//!
//! Parsing non-binary data "poses additional challenges because of the need
//! to handle delimiter values and to express richer termination conditions"
//! (§8). The string family covers the termination styles PADS supports:
//!
//! * `Pstring(:'c':)` — up to (not including) a terminator character, or to
//!   the end of the record when the terminator never appears;
//! * `Pstring_FW(:n:)` — exactly `n` characters;
//! * `Pstring_ME(:"re":)` — the longest match of a regular expression;
//! * `Pstring_SE(:"re":)` — up to (not including) the first position where a
//!   stop expression matches.

use std::sync::Arc;

use crate::base::{arg_char, arg_str, arg_u64, BaseType, Registry};
use crate::encoding::{Charset, Endian};
use crate::error::ErrorCode;
use crate::io::Cursor;
use crate::prim::{Prim, PrimKind};

fn decode_string(raw: &[u8], cs: Charset) -> String {
    cs.decode_text(raw)
}

fn encode_string(out: &mut Vec<u8>, s: &str, cs: Charset) {
    out.extend(s.bytes().map(|b| cs.encode(b)));
}

/// One character in a (possibly explicit) coding.
struct CharBase {
    name: &'static str,
    coding: Option<Charset>,
}

impl BaseType for CharBase {
    fn name(&self) -> &str {
        self.name
    }

    fn kind(&self) -> PrimKind {
        PrimKind::Char
    }

    fn parse(&self, cur: &mut Cursor<'_>, _args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = self.coding.unwrap_or(cur.charset());
        let b = cur.next_byte().ok_or(if cur.in_record() {
            ErrorCode::UnexpectedEor
        } else {
            ErrorCode::UnexpectedEof
        })?;
        Ok(Prim::Char(cs.decode(b)))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        let cs = self.coding.unwrap_or(charset);
        match val {
            Prim::Char(c) => {
                out.push(cs.encode(*c));
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// Terminator-delimited string.
struct StringTerm;

impl BaseType for StringTerm {
    fn name(&self) -> &str {
        "Pstring"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn kind(&self) -> PrimKind {
        PrimKind::String
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        let term = cs.encode(arg_char(args, 0)?);
        let len = cur.find_byte(term).unwrap_or(cur.remaining());
        let raw = cur.take(len)?;
        Ok(Prim::String(decode_string(raw, cs)))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::String(s) => {
                encode_string(out, s, charset);
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// Fixed-width string.
struct StringFw;

impl BaseType for StringFw {
    fn name(&self) -> &str {
        "Pstring_FW"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn kind(&self) -> PrimKind {
        PrimKind::String
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        let width = arg_u64(args, 0)? as usize;
        let raw = cur.take(width)?;
        Ok(Prim::String(decode_string(raw, cs)))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        let width = arg_u64(args, 0)? as usize;
        match val {
            Prim::String(s) if s.len() == width => {
                encode_string(out, s, charset);
                Ok(())
            }
            Prim::String(s) if s.len() < width => {
                // Pad on the right with spaces (Cobol convention).
                encode_string(out, s, charset);
                out.extend(std::iter::repeat_n(charset.encode(b' '), width - s.len()));
                Ok(())
            }
            Prim::String(_) => Err(ErrorCode::RangeError),
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// Regex-matched string (`_ME` = "matching expression").
struct StringMe;

impl BaseType for StringMe {
    fn name(&self) -> &str {
        "Pstring_ME"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn kind(&self) -> PrimKind {
        PrimKind::String
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        let pat = arg_str(args, 0)?;
        let re = cur.regex(pat)?;
        let raw = cur.match_regex(&re).ok_or(ErrorCode::RegexMismatch)?;
        Ok(Prim::String(decode_string(raw, cs)))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::String(s) => {
                encode_string(out, s, charset);
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// Stop-expression string (`_SE`): consumes up to the first regex match.
struct StringSe;

impl BaseType for StringSe {
    fn name(&self) -> &str {
        "Pstring_SE"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn kind(&self) -> PrimKind {
        PrimKind::String
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = cur.charset();
        let pat = arg_str(args, 0)?;
        let re = cur.regex(pat)?;
        let hay = cur.rest();
        let len = re.find(hay).map(|(s, _)| s).unwrap_or(hay.len());
        let raw = cur.take(len)?;
        Ok(Prim::String(decode_string(raw, cs)))
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        match val {
            Prim::String(s) => {
                encode_string(out, s, charset);
                Ok(())
            }
            _ => Err(ErrorCode::EvalError),
        }
    }
}

/// Registers the string/char family.
pub fn register_all(reg: &mut Registry) {
    reg.register(Arc::new(CharBase { name: "Pchar", coding: None }));
    reg.register(Arc::new(CharBase { name: "Pa_char", coding: Some(Charset::Ascii) }));
    reg.register(Arc::new(CharBase { name: "Pe_char", coding: Some(Charset::Ebcdic) }));
    reg.register(Arc::new(StringTerm));
    reg.register(Arc::new(StringFw));
    reg.register(Arc::new(StringMe));
    reg.register(Arc::new(StringSe));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RecordDiscipline;

    fn parse(ty: &str, data: &[u8], args: &[Prim]) -> Result<Prim, ErrorCode> {
        let reg = Registry::standard();
        let mut cur = Cursor::new(data).with_discipline(RecordDiscipline::None);
        reg.get(ty).expect(ty).parse(&mut cur, args)
    }

    #[test]
    fn terminated_string_stops_before_terminator() {
        let v = parse("Pstring", b"hello world", &[Prim::Char(b' ')]).unwrap();
        assert_eq!(v, Prim::String("hello".into()));
    }

    #[test]
    fn terminated_string_takes_rest_when_no_terminator() {
        let v = parse("Pstring", b"trailing", &[Prim::Char(b'|')]).unwrap();
        assert_eq!(v, Prim::String("trailing".into()));
    }

    #[test]
    fn empty_string_between_delimiters() {
        let v = parse("Pstring", b"|next", &[Prim::Char(b'|')]).unwrap();
        assert_eq!(v, Prim::String(String::new()));
    }

    #[test]
    fn fixed_width_string() {
        let v = parse("Pstring_FW", b"abcdef", &[Prim::Uint(4)]).unwrap();
        assert_eq!(v, Prim::String("abcd".into()));
        assert_eq!(
            parse("Pstring_FW", b"ab", &[Prim::Uint(4)]),
            Err(ErrorCode::UnexpectedEof)
        );
    }

    #[test]
    fn matching_expression_string() {
        let v = parse("Pstring_ME", b"abc123 rest", &[Prim::String(r"[a-z]+\d+".into())]).unwrap();
        assert_eq!(v, Prim::String("abc123".into()));
        assert_eq!(
            parse("Pstring_ME", b"123", &[Prim::String(r"[a-z]+".into())]),
            Err(ErrorCode::RegexMismatch)
        );
    }

    #[test]
    fn stop_expression_string() {
        let v = parse("Pstring_SE", b"key=value", &[Prim::String(r"=".into())]).unwrap();
        assert_eq!(v, Prim::String("key".into()));
        // No match: the rest of the input.
        let v = parse("Pstring_SE", b"justkey", &[Prim::String(r"=".into())]).unwrap();
        assert_eq!(v, Prim::String("justkey".into()));
    }

    #[test]
    fn chars_decode_ambient_charset() {
        let reg = Registry::standard();
        let data = [0xC1];
        let mut cur = Cursor::new(&data)
            .with_discipline(RecordDiscipline::None)
            .with_charset(Charset::Ebcdic);
        let v = reg.get("Pchar").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Char(b'A'));
        // Explicitly-coded char overrides the ambient charset.
        let mut cur = Cursor::new(&data).with_discipline(RecordDiscipline::None);
        let v = reg.get("Pe_char").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Char(b'A'));
    }

    #[test]
    fn string_terminator_respects_record_boundary() {
        let reg = Registry::standard();
        let mut cur = Cursor::new(b"abc\nx y\n");
        cur.begin_record().unwrap();
        let v = reg.get("Pstring").unwrap().parse(&mut cur, &[Prim::Char(b' ')]).unwrap();
        // The space is in the *next* record, so the string stops at EOR.
        assert_eq!(v, Prim::String("abc".into()));
    }

    #[test]
    fn fw_write_pads_with_spaces() {
        let reg = Registry::standard();
        let mut out = Vec::new();
        reg.get("Pstring_FW")
            .unwrap()
            .write(&mut out, &Prim::String("ab".into()), &[Prim::Uint(4)], Charset::Ascii, Endian::Big)
            .unwrap();
        assert_eq!(out, b"ab  ");
    }

    #[test]
    fn ebcdic_string_round_trip() {
        let reg = Registry::standard();
        let raw: Vec<u8> = b"HELLO".iter().map(|&b| Charset::Ebcdic.encode(b)).collect();
        let mut cur = Cursor::new(&raw)
            .with_discipline(RecordDiscipline::None)
            .with_charset(Charset::Ebcdic);
        let v = reg.get("Pstring_FW").unwrap().parse(&mut cur, &[Prim::Uint(5)]).unwrap();
        assert_eq!(v, Prim::String("HELLO".into()));
        let mut out = Vec::new();
        reg.get("Pstring_FW")
            .unwrap()
            .write(&mut out, &v, &[Prim::Uint(5)], Charset::Ebcdic, Endian::Big)
            .unwrap();
        assert_eq!(out, raw);
    }
}
