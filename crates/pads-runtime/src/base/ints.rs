//! Integer base-type families.
//!
//! Three orthogonal axes, as in the paper (§3): signedness × width (8–64
//! bits) × coding. The coding is either *ambient* (`Pint32` uses the
//! cursor's charset), explicit ASCII (`Pa_int32`), explicit EBCDIC
//! (`Pe_int32`), or binary (`Pb_int32`, using the cursor's ambient byte
//! order). Text codings additionally come in fixed-width variants
//! (`Puint16_FW(:3:)` is an unsigned 16-bit number written in exactly three
//! characters).

use std::sync::Arc;

use crate::base::{arg_u64, BaseType, Registry};
use crate::encoding::{Charset, Endian};
use crate::error::ErrorCode;
use crate::io::Cursor;
use crate::prim::{Prim, PrimKind};
use crate::scan::{skip_class, ClassBitmap};

/// ASCII `0`..`9` (bits 48–57 of word 0).
const DIGITS: ClassBitmap = ClassBitmap::from_bits([0x03FF_0000_0000_0000, 0, 0, 0]);

/// Which coding a textual integer type uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Coding {
    Ambient,
    Fixed(Charset),
}

impl Coding {
    fn charset(self, cur_charset: Charset) -> Charset {
        match self {
            Coding::Ambient => cur_charset,
            Coding::Fixed(cs) => cs,
        }
    }
}

/// Decimal-text integer base type (variable or fixed width).
struct TextInt {
    name: String,
    signed: bool,
    bits: u32,
    coding: Coding,
    fixed_width: bool,
}

impl TextInt {
    fn in_range(&self, v: i128) -> bool {
        if self.signed {
            let max = (1i128 << (self.bits - 1)) - 1;
            let min = -(1i128 << (self.bits - 1));
            v >= min && v <= max
        } else {
            v >= 0 && v < (1i128 << self.bits)
        }
    }
}

impl BaseType for TextInt {
    fn name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> (usize, usize) {
        if self.fixed_width {
            (1, 1)
        } else {
            (0, 0)
        }
    }

    fn kind(&self) -> PrimKind {
        if self.signed {
            PrimKind::Int
        } else {
            PrimKind::Uint
        }
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let cs = self.coding.charset(cur.charset());
        if self.fixed_width {
            let width = arg_u64(args, 0)? as usize;
            let raw = cur.take(width)?;
            parse_fixed(raw, cs, self.signed).and_then(|v| {
                if self.in_range(v) {
                    Ok(self.mk(v))
                } else {
                    Err(ErrorCode::RangeError)
                }
            })
        } else {
            let v = parse_variable(cur, cs, self.signed)?;
            if self.in_range(v) {
                Ok(self.mk(v))
            } else {
                Err(ErrorCode::RangeError)
            }
        }
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        args: &[Prim],
        charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        let cs = self.coding.charset(charset);
        let text = match (self.signed, val) {
            (true, Prim::Int(v)) => v.to_string(),
            (false, Prim::Uint(v)) => v.to_string(),
            // Tolerate cross-signedness when the value fits.
            (true, Prim::Uint(v)) => i64::try_from(*v).map_err(|_| ErrorCode::RangeError)?.to_string(),
            (false, Prim::Int(v)) => u64::try_from(*v).map_err(|_| ErrorCode::RangeError)?.to_string(),
            _ => return Err(ErrorCode::EvalError),
        };
        let text = if self.fixed_width {
            let width = arg_u64(args, 0)? as usize;
            if text.len() > width {
                return Err(ErrorCode::RangeError);
            }
            // Canonical fixed-width form is zero-padded on the left (sign
            // first for negatives).
            if let Some(rest) = text.strip_prefix('-') {
                format!("-{:0>width$}", rest, width = width - 1)
            } else {
                format!("{text:0>width$}")
            }
        } else {
            text
        };
        out.extend(text.bytes().map(|b| cs.encode(b)));
        Ok(())
    }

    fn default_value(&self, _args: &[Prim]) -> Prim {
        self.mk(0)
    }
}

impl TextInt {
    fn mk(&self, v: i128) -> Prim {
        if self.signed {
            Prim::Int(v as i64)
        } else {
            Prim::Uint(v as u64)
        }
    }
}

fn parse_variable(cur: &mut Cursor<'_>, cs: Charset, signed: bool) -> Result<i128, ErrorCode> {
    if cs == Charset::Ascii {
        // Slice fast path: find the digit run in bulk, fold it, advance
        // once. Consumption on error matches the byte loop (sign consumed
        // before InvalidDigit, overflowing digit left unconsumed) so
        // callers that don't restore see identical positions.
        let rest = cur.rest();
        let mut at = 0usize;
        let mut neg = false;
        if signed {
            match rest.first() {
                Some(b'-') => {
                    neg = true;
                    at = 1;
                }
                Some(b'+') => at = 1,
                _ => {}
            }
        }
        let n = skip_class(&rest[at..], &DIGITS);
        if n == 0 {
            cur.advance(at);
            return Err(ErrorCode::InvalidDigit);
        }
        let mut val: i128 = 0;
        for (k, &b) in rest[at..at + n].iter().enumerate() {
            val = val * 10 + (b - b'0') as i128;
            if val > u64::MAX as i128 + 1 {
                cur.advance(at + k);
                return Err(ErrorCode::RangeError);
            }
        }
        cur.advance(at + n);
        return Ok(if neg { -val } else { val });
    }
    let mut neg = false;
    if signed {
        match cur.peek().map(|b| cs.decode(b)) {
            Some(b'-') => {
                neg = true;
                cur.advance(1);
            }
            Some(b'+') => {
                cur.advance(1);
            }
            _ => {}
        }
    }
    let mut val: i128 = 0;
    let mut digits = 0usize;
    while let Some(d) = cur.peek().and_then(|b| cs.digit_value(b)) {
        val = val * 10 + d as i128;
        if val > u64::MAX as i128 + 1 {
            return Err(ErrorCode::RangeError);
        }
        cur.advance(1);
        digits += 1;
    }
    if digits == 0 {
        return Err(ErrorCode::InvalidDigit);
    }
    Ok(if neg { -val } else { val })
}

fn parse_fixed(raw: &[u8], cs: Charset, signed: bool) -> Result<i128, ErrorCode> {
    // ASCII decode is the identity, so the hot path scans the raw field in
    // place; only EBCDIC pays for a decoded copy.
    if cs == Charset::Ascii {
        return parse_fixed_ascii(raw, signed);
    }
    let decoded: Vec<u8> = raw.iter().map(|&b| cs.decode(b)).collect();
    parse_fixed_ascii(&decoded, signed)
}

fn parse_fixed_ascii(s: &[u8], signed: bool) -> Result<i128, ErrorCode> {
    // Leading spaces, optional sign, digits, optional trailing spaces.
    let mut i = 0;
    while i < s.len() && s[i] == b' ' {
        i += 1;
    }
    let mut neg = false;
    if signed && i < s.len() && (s[i] == b'-' || s[i] == b'+') {
        neg = s[i] == b'-';
        i += 1;
    }
    let mut val: i128 = 0;
    let mut digits = 0usize;
    while i < s.len() && s[i].is_ascii_digit() {
        val = val * 10 + (s[i] - b'0') as i128;
        if val > u64::MAX as i128 + 1 {
            return Err(ErrorCode::RangeError);
        }
        i += 1;
        digits += 1;
    }
    while i < s.len() && s[i] == b' ' {
        i += 1;
    }
    if digits == 0 || i != s.len() {
        return Err(ErrorCode::InvalidDigit);
    }
    Ok(if neg { -val } else { val })
}

/// Binary integer base type, width in bytes, ambient byte order.
struct BinInt {
    name: String,
    signed: bool,
    bytes: usize,
}

impl BaseType for BinInt {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> PrimKind {
        if self.signed {
            PrimKind::Int
        } else {
            PrimKind::Uint
        }
    }

    fn parse(&self, cur: &mut Cursor<'_>, _args: &[Prim]) -> Result<Prim, ErrorCode> {
        let raw = cur.take(self.bytes)?;
        let mut acc: u64 = 0;
        match cur.endian() {
            Endian::Big => {
                for &b in raw {
                    acc = acc << 8 | b as u64;
                }
            }
            Endian::Little => {
                for &b in raw.iter().rev() {
                    acc = acc << 8 | b as u64;
                }
            }
        }
        if self.signed {
            // Sign-extend from the declared width.
            let shift = 64 - self.bytes * 8;
            let v = ((acc << shift) as i64) >> shift;
            Ok(Prim::Int(v))
        } else {
            Ok(Prim::Uint(acc))
        }
    }

    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        _args: &[Prim],
        _charset: Charset,
        endian: Endian,
    ) -> Result<(), ErrorCode> {
        let bits = self.bytes as u32 * 8;
        let acc: u64 = match val {
            Prim::Uint(v) => {
                if self.bytes < 8 && *v >= 1u64 << bits {
                    return Err(ErrorCode::RangeError);
                }
                *v
            }
            Prim::Int(v) => {
                if self.bytes < 8 {
                    let max = (1i64 << (bits - 1)) - 1;
                    let min = -(1i64 << (bits - 1));
                    if self.signed && (*v < min || *v > max) {
                        return Err(ErrorCode::RangeError);
                    }
                    if !self.signed && (*v < 0 || *v >= 1i64 << bits) {
                        return Err(ErrorCode::RangeError);
                    }
                }
                *v as u64
            }
            _ => return Err(ErrorCode::EvalError),
        };
        let mut bytes = [0u8; 8];
        for (i, byte) in bytes.iter_mut().take(self.bytes).enumerate() {
            *byte = (acc >> (8 * (self.bytes - 1 - i)) & 0xff) as u8;
        }
        match endian {
            Endian::Big => out.extend_from_slice(&bytes[..self.bytes]),
            Endian::Little => out.extend(bytes[..self.bytes].iter().rev()),
        }
        Ok(())
    }

    fn default_value(&self, _args: &[Prim]) -> Prim {
        if self.signed {
            Prim::Int(0)
        } else {
            Prim::Uint(0)
        }
    }
}

/// Registers every integer family member into `reg`.
pub fn register_all(reg: &mut Registry) {
    for &(prefix, coding) in &[
        ("P", Coding::Ambient),
        ("Pa_", Coding::Fixed(Charset::Ascii)),
        ("Pe_", Coding::Fixed(Charset::Ebcdic)),
    ] {
        for &signed in &[true, false] {
            for &bits in &[8u32, 16, 32, 64] {
                let base = format!("{prefix}{}int{bits}", if signed { "" } else { "u" });
                reg.register(Arc::new(TextInt {
                    name: base.clone(),
                    signed,
                    bits,
                    coding,
                    fixed_width: false,
                }));
                reg.register(Arc::new(TextInt {
                    name: format!("{base}_FW"),
                    signed,
                    bits,
                    coding,
                    fixed_width: true,
                }));
            }
        }
    }
    for &signed in &[true, false] {
        for &bytes in &[1usize, 2, 4, 8] {
            let name = format!("Pb_{}int{}", if signed { "" } else { "u" }, bytes * 8);
            reg.register(Arc::new(BinInt { name, signed, bytes }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RecordDiscipline;

    fn parse_with(reg: &Registry, ty: &str, data: &[u8], args: &[Prim]) -> Result<Prim, ErrorCode> {
        let mut cur = Cursor::new(data).with_discipline(RecordDiscipline::None);
        reg.get(ty).expect(ty).parse(&mut cur, args)
    }

    #[test]
    fn ascii_uint_basics() {
        let reg = Registry::standard();
        assert_eq!(parse_with(&reg, "Puint32", b"1005022800|", &[]), Ok(Prim::Uint(1_005_022_800)));
        assert_eq!(parse_with(&reg, "Puint8", b"255", &[]), Ok(Prim::Uint(255)));
        assert_eq!(parse_with(&reg, "Puint8", b"256", &[]), Err(ErrorCode::RangeError));
        assert_eq!(parse_with(&reg, "Puint8", b"abc", &[]), Err(ErrorCode::InvalidDigit));
    }

    #[test]
    fn signed_parsing() {
        let reg = Registry::standard();
        assert_eq!(parse_with(&reg, "Pint32", b"-42", &[]), Ok(Prim::Int(-42)));
        assert_eq!(parse_with(&reg, "Pint32", b"+42", &[]), Ok(Prim::Int(42)));
        assert_eq!(parse_with(&reg, "Pint8", b"-128", &[]), Ok(Prim::Int(-128)));
        assert_eq!(parse_with(&reg, "Pint8", b"-129", &[]), Err(ErrorCode::RangeError));
        // Unsigned types do not accept a sign.
        assert_eq!(parse_with(&reg, "Puint32", b"-42", &[]), Err(ErrorCode::InvalidDigit));
    }

    #[test]
    fn fixed_width_text() {
        let reg = Registry::standard();
        let w = [Prim::Uint(3)];
        assert_eq!(parse_with(&reg, "Puint16_FW", b"200x", &w), Ok(Prim::Uint(200)));
        assert_eq!(parse_with(&reg, "Puint16_FW", b" 42", &w), Ok(Prim::Uint(42)));
        assert_eq!(parse_with(&reg, "Puint16_FW", b"4 2", &w), Err(ErrorCode::InvalidDigit));
        assert_eq!(parse_with(&reg, "Puint16_FW", b"12", &w), Err(ErrorCode::UnexpectedEof));
        assert_eq!(parse_with(&reg, "Pint32_FW", b" -7 ", &[Prim::Uint(4)]), Ok(Prim::Int(-7)));
    }

    #[test]
    fn ebcdic_digits() {
        let reg = Registry::standard();
        // "123" in EBCDIC is F1 F2 F3.
        assert_eq!(parse_with(&reg, "Pe_uint16", &[0xF1, 0xF2, 0xF3], &[]), Ok(Prim::Uint(123)));
        // Ambient type under an EBCDIC cursor behaves the same.
        let mut cur = Cursor::new(&[0xF9, 0xF9])
            .with_discipline(RecordDiscipline::None)
            .with_charset(Charset::Ebcdic);
        let v = reg.get("Puint8").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Uint(99));
        // ASCII digits are not EBCDIC digits.
        assert_eq!(parse_with(&reg, "Pe_uint16", b"123", &[]), Err(ErrorCode::InvalidDigit));
    }

    #[test]
    fn binary_big_and_little_endian() {
        let reg = Registry::standard();
        let data = [0x01, 0x02, 0x03, 0x04];
        let mut cur = Cursor::new(&data).with_discipline(RecordDiscipline::None);
        let v = reg.get("Pb_uint32").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Uint(0x0102_0304));
        let mut cur = Cursor::new(&data)
            .with_discipline(RecordDiscipline::None)
            .with_endian(Endian::Little);
        let v = reg.get("Pb_uint32").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Uint(0x0403_0201));
    }

    #[test]
    fn binary_sign_extension() {
        let reg = Registry::standard();
        let mut cur = Cursor::new(&[0xFF, 0xFE]).with_discipline(RecordDiscipline::None);
        let v = reg.get("Pb_int16").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Int(-2));
    }

    #[test]
    fn binary_round_trip() {
        let reg = Registry::standard();
        let ty = reg.get("Pb_int32").unwrap();
        for v in [-1i64, 0, 1, i32::MAX as i64, i32::MIN as i64] {
            let mut out = Vec::new();
            ty.write(&mut out, &Prim::Int(v), &[], Charset::Ascii, Endian::Big).unwrap();
            let mut cur = Cursor::new(&out).with_discipline(RecordDiscipline::None);
            assert_eq!(ty.parse(&mut cur, &[]).unwrap(), Prim::Int(v));
        }
    }

    #[test]
    fn text_round_trip() {
        let reg = Registry::standard();
        let ty = reg.get("Puint32").unwrap();
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::Uint(30), &[], Charset::Ascii, Endian::Big).unwrap();
        assert_eq!(out, b"30");
        let ty = reg.get("Pe_uint32").unwrap();
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::Uint(12), &[], Charset::Ascii, Endian::Big).unwrap();
        assert_eq!(out, vec![0xF1, 0xF2]);
    }

    #[test]
    fn fixed_width_write_zero_pads() {
        let reg = Registry::standard();
        let ty = reg.get("Puint16_FW").unwrap();
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::Uint(7), &[Prim::Uint(3)], Charset::Ascii, Endian::Big).unwrap();
        assert_eq!(out, b"007");
        let ty = reg.get("Pint32_FW").unwrap();
        let mut out = Vec::new();
        ty.write(&mut out, &Prim::Int(-7), &[Prim::Uint(4)], Charset::Ascii, Endian::Big).unwrap();
        assert_eq!(out, b"-007");
        let mut out = Vec::new();
        assert_eq!(
            ty.write(&mut out, &Prim::Int(12345), &[Prim::Uint(4)], Charset::Ascii, Endian::Big),
            Err(ErrorCode::RangeError)
        );
    }

    #[test]
    fn overflow_detection_on_huge_literals() {
        let reg = Registry::standard();
        assert_eq!(
            parse_with(&reg, "Puint64", b"99999999999999999999999", &[]),
            Err(ErrorCode::RangeError)
        );
        assert_eq!(
            parse_with(&reg, "Puint64", b"18446744073709551615", &[]),
            Ok(Prim::Uint(u64::MAX))
        );
    }
}
