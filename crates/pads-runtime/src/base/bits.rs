//! Bit-field base type (`Pbits`): the §9 future-work construct for binary
//! sources, in the style of PacketTypes/DataScript.
//!
//! `Pbits(:n:)` reads `n` bits (1–64), most significant bit first, crossing
//! byte boundaries. Consecutive `Pbits` fields pack densely; when a
//! byte-level read follows a partially consumed byte, the cursor pads
//! forward to the next byte boundary (C bit-field semantics).

use std::sync::Arc;

use crate::base::{arg_u64, BaseType, Registry};
use crate::encoding::{Charset, Endian};
use crate::error::ErrorCode;
use crate::io::Cursor;
use crate::prim::{Prim, PrimKind};

struct BitsBase;

impl BaseType for BitsBase {
    fn name(&self) -> &str {
        "Pbits"
    }

    fn arity(&self) -> (usize, usize) {
        (1, 1)
    }

    fn kind(&self) -> PrimKind {
        PrimKind::Uint
    }

    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode> {
        let n = arg_u64(args, 0)?;
        if n == 0 || n > 64 {
            return Err(ErrorCode::EvalError);
        }
        cur.read_bits(n as u32).map(Prim::Uint)
    }

    /// Writes the value back.
    ///
    /// # Errors
    ///
    /// Sub-byte widths cannot be written in isolation (the writer has no
    /// bit-level buffer); widths that are a multiple of 8 write big-endian
    /// bytes. Groups of sub-byte fields can be written by modelling the
    /// enclosing byte(s) with `Pb_uint8`/`Pb_uint16` overlays.
    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        args: &[Prim],
        _charset: Charset,
        _endian: Endian,
    ) -> Result<(), ErrorCode> {
        let n = arg_u64(args, 0)?;
        if n == 0 || n > 64 || n % 8 != 0 {
            return Err(ErrorCode::EvalError);
        }
        let v = val.as_u64().ok_or(ErrorCode::EvalError)?;
        let bytes = (n / 8) as usize;
        if bytes < 8 && v >= 1u64 << n {
            return Err(ErrorCode::RangeError);
        }
        for i in 0..bytes {
            out.push((v >> (8 * (bytes - 1 - i))) as u8);
        }
        Ok(())
    }
}

/// Registers the bit-field base type.
pub fn register_all(reg: &mut Registry) {
    reg.register(Arc::new(BitsBase));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RecordDiscipline;

    fn cursor(data: &[u8]) -> Cursor<'_> {
        Cursor::new(data).with_discipline(RecordDiscipline::None)
    }

    fn bits(cur: &mut Cursor<'_>, n: u64) -> Result<Prim, ErrorCode> {
        Registry::standard().get("Pbits").unwrap().parse(cur, &[Prim::Uint(n)])
    }

    #[test]
    fn packs_densely_within_a_byte() {
        // 0b1011_0110: fields of 1, 3, 4 bits.
        let data = [0b1011_0110u8];
        let mut cur = cursor(&data);
        assert_eq!(bits(&mut cur, 1), Ok(Prim::Uint(0b1)));
        assert_eq!(bits(&mut cur, 3), Ok(Prim::Uint(0b011)));
        assert_eq!(bits(&mut cur, 4), Ok(Prim::Uint(0b0110)));
        assert!(cur.at_eof());
    }

    #[test]
    fn crosses_byte_boundaries() {
        // 12-bit field spanning two bytes: 0xABC from AB C0.
        let data = [0xAB, 0xC5];
        let mut cur = cursor(&data);
        assert_eq!(bits(&mut cur, 12), Ok(Prim::Uint(0xABC)));
        assert_eq!(bits(&mut cur, 4), Ok(Prim::Uint(0x5)));
    }

    #[test]
    fn partial_bytes_pad_before_byte_reads() {
        // 4 bits consumed, then a byte-level read skips the low nibble.
        let data = [0xF0, 0x42];
        let mut cur = cursor(&data);
        assert_eq!(bits(&mut cur, 4), Ok(Prim::Uint(0xF)));
        assert_eq!(cur.next_byte(), Some(0x42));
    }

    #[test]
    fn eof_mid_field_is_reported() {
        let data = [0xFF];
        let mut cur = cursor(&data);
        assert_eq!(bits(&mut cur, 12), Err(ErrorCode::UnexpectedEof));
    }

    #[test]
    fn respects_record_limits() {
        let data = [0xFF, 0xFF, 0xFF];
        let mut cur = Cursor::new(&data).with_discipline(RecordDiscipline::FixedWidth(1));
        cur.begin_record().unwrap();
        assert_eq!(bits(&mut cur, 8), Ok(Prim::Uint(0xFF)));
        assert_eq!(bits(&mut cur, 1), Err(ErrorCode::UnexpectedEor));
    }

    #[test]
    fn checkpoint_restores_bit_position() {
        let data = [0b1010_1010u8];
        let mut cur = cursor(&data);
        assert_eq!(bits(&mut cur, 3), Ok(Prim::Uint(0b101)));
        let cp = cur.checkpoint();
        assert_eq!(bits(&mut cur, 3), Ok(Prim::Uint(0b010)));
        cur.restore(cp);
        assert_eq!(bits(&mut cur, 5), Ok(Prim::Uint(0b01010)));
    }

    #[test]
    fn byte_multiple_widths_round_trip() {
        let reg = Registry::standard();
        let ty = reg.get("Pbits").unwrap();
        for (v, n) in [(0xABu64, 8u64), (0xBEEF, 16), (0x00C0FFEE, 32)] {
            let args = [Prim::Uint(n)];
            let mut out = Vec::new();
            ty.write(&mut out, &Prim::Uint(v), &args, Charset::Ascii, Endian::Big).unwrap();
            let mut cur = cursor(&out);
            assert_eq!(ty.parse(&mut cur, &args).unwrap(), Prim::Uint(v));
        }
    }

    #[test]
    fn sub_byte_writes_are_rejected() {
        let reg = Registry::standard();
        let ty = reg.get("Pbits").unwrap();
        let mut out = Vec::new();
        assert_eq!(
            ty.write(&mut out, &Prim::Uint(3), &[Prim::Uint(4)], Charset::Ascii, Endian::Big),
            Err(ErrorCode::EvalError)
        );
    }

    #[test]
    fn invalid_widths_error() {
        let data = [0xFF];
        let mut cur = cursor(&data);
        assert_eq!(bits(&mut cur, 0), Err(ErrorCode::EvalError));
        assert_eq!(bits(&mut cur, 65), Err(ErrorCode::EvalError));
    }
}
