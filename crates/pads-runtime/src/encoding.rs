//! Character encodings and byte orders — the "ambient coding" of §3.
//!
//! PADS base types are coding-ambiguous until a coding is chosen: `Puint32`
//! uses the *ambient* coding (ASCII by default), while prefixed families
//! (`Pa_`, `Pe_`, `Pb_`) pin a coding explicitly. This module provides the
//! [`Charset`] ambient-coding switch, EBCDIC (code page 037) translation
//! tables, and the [`Endian`] ambient byte order for binary base types.

/// Ambient character coding for text-like base types and literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Charset {
    /// ASCII (the PADS default).
    #[default]
    Ascii,
    /// EBCDIC code page 037 (Cobol data sources).
    Ebcdic,
}

/// Ambient byte order for binary (`Pb_`) base types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Endian {
    /// Most-significant byte first (network order; the PADS default for
    /// binary telecom formats).
    #[default]
    Big,
    /// Least-significant byte first.
    Little,
}

/// EBCDIC→ASCII translation table (code page 037, Latin-1 subset folded to
/// ASCII). Unmapped code points become ASCII SUB (0x1A).
pub static EBCDIC_TO_ASCII: [u8; 256] = build_e2a();

/// ASCII→EBCDIC translation table (inverse of [`EBCDIC_TO_ASCII`] on the
/// mapped range). Unmapped bytes become EBCDIC SUB (0x3F).
pub static ASCII_TO_EBCDIC: [u8; 256] = build_a2e();

const fn pairs() -> [(u8, u8); 95 + 8] {
    // (ebcdic, ascii) for the printable ASCII range plus common controls.
    [
        (0x00, 0x00), // NUL
        (0x05, 0x09), // HT
        (0x25, 0x0A), // LF
        (0x0D, 0x0D), // CR
        (0x0C, 0x0C), // FF
        (0x0B, 0x0B), // VT
        (0x16, 0x08), // BS
        (0x2F, 0x07), // BEL
        (0x40, b' '),
        (0x5A, b'!'),
        (0x7F, b'"'),
        (0x7B, b'#'),
        (0x5B, b'$'),
        (0x6C, b'%'),
        (0x50, b'&'),
        (0x7D, b'\''),
        (0x4D, b'('),
        (0x5D, b')'),
        (0x5C, b'*'),
        (0x4E, b'+'),
        (0x6B, b','),
        (0x60, b'-'),
        (0x4B, b'.'),
        (0x61, b'/'),
        (0xF0, b'0'),
        (0xF1, b'1'),
        (0xF2, b'2'),
        (0xF3, b'3'),
        (0xF4, b'4'),
        (0xF5, b'5'),
        (0xF6, b'6'),
        (0xF7, b'7'),
        (0xF8, b'8'),
        (0xF9, b'9'),
        (0x7A, b':'),
        (0x5E, b';'),
        (0x4C, b'<'),
        (0x7E, b'='),
        (0x6E, b'>'),
        (0x6F, b'?'),
        (0x7C, b'@'),
        (0xC1, b'A'),
        (0xC2, b'B'),
        (0xC3, b'C'),
        (0xC4, b'D'),
        (0xC5, b'E'),
        (0xC6, b'F'),
        (0xC7, b'G'),
        (0xC8, b'H'),
        (0xC9, b'I'),
        (0xD1, b'J'),
        (0xD2, b'K'),
        (0xD3, b'L'),
        (0xD4, b'M'),
        (0xD5, b'N'),
        (0xD6, b'O'),
        (0xD7, b'P'),
        (0xD8, b'Q'),
        (0xD9, b'R'),
        (0xE2, b'S'),
        (0xE3, b'T'),
        (0xE4, b'U'),
        (0xE5, b'V'),
        (0xE6, b'W'),
        (0xE7, b'X'),
        (0xE8, b'Y'),
        (0xE9, b'Z'),
        (0xBA, b'['),
        (0xE0, b'\\'),
        (0xBB, b']'),
        (0x5F, b'^'), // EBCDIC NOT SIGN folded to caret
        (0x6D, b'_'),
        (0x79, b'`'),
        (0x81, b'a'),
        (0x82, b'b'),
        (0x83, b'c'),
        (0x84, b'd'),
        (0x85, b'e'),
        (0x86, b'f'),
        (0x87, b'g'),
        (0x88, b'h'),
        (0x89, b'i'),
        (0x91, b'j'),
        (0x92, b'k'),
        (0x93, b'l'),
        (0x94, b'm'),
        (0x95, b'n'),
        (0x96, b'o'),
        (0x97, b'p'),
        (0x98, b'q'),
        (0x99, b'r'),
        (0xA2, b's'),
        (0xA3, b't'),
        (0xA4, b'u'),
        (0xA5, b'v'),
        (0xA6, b'w'),
        (0xA7, b'x'),
        (0xA8, b'y'),
        (0xA9, b'z'),
        (0xC0, b'{'),
        (0x4F, b'|'),
        (0xD0, b'}'),
        (0xA1, b'~'),
    ]
}

const fn build_e2a() -> [u8; 256] {
    let mut t = [0x1Au8; 256];
    let ps = pairs();
    let mut i = 0;
    while i < ps.len() {
        t[ps[i].0 as usize] = ps[i].1;
        i += 1;
    }
    t
}

const fn build_a2e() -> [u8; 256] {
    let mut t = [0x3Fu8; 256];
    let ps = pairs();
    let mut i = 0;
    while i < ps.len() {
        t[ps[i].1 as usize] = ps[i].0;
        i += 1;
    }
    t
}

impl Charset {
    /// Decodes one raw input byte to its logical ASCII value.
    pub fn decode(self, b: u8) -> u8 {
        match self {
            Charset::Ascii => b,
            Charset::Ebcdic => EBCDIC_TO_ASCII[b as usize],
        }
    }

    /// Encodes one logical ASCII byte to the raw on-disk byte.
    pub fn encode(self, b: u8) -> u8 {
        match self {
            Charset::Ascii => b,
            Charset::Ebcdic => ASCII_TO_EBCDIC[b as usize],
        }
    }

    /// Decodes a raw byte slice into a logical ASCII string (lossy for
    /// unmapped EBCDIC code points, which become SUB).
    pub fn decode_bytes(self, bytes: &[u8]) -> Vec<u8> {
        bytes.iter().map(|&b| self.decode(b)).collect()
    }

    /// Decodes a raw byte slice into a `String`, treating each decoded
    /// byte as one `char` (Latin-1 style for bytes above 0x7F). Pure-ASCII
    /// input in the ASCII charset is copied in bulk instead of pushed
    /// char-by-char — the hot case for every text field in a log record.
    pub fn decode_text(self, raw: &[u8]) -> String {
        self.decode_text_cow(raw).into_owned()
    }

    /// Like [`decode_text`](Self::decode_text), but borrows the input when
    /// decoding is the identity: ASCII charset, pure-ASCII bytes. This is
    /// the zero-copy tier — callers that only inspect the text (date
    /// parsing, constraint checks) never allocate on the clean path, and
    /// `Cow::into_owned` reproduces `decode_text` byte for byte.
    pub fn decode_text_cow(self, raw: &[u8]) -> std::borrow::Cow<'_, str> {
        if self == Charset::Ascii && raw.is_ascii() {
            if let Ok(s) = std::str::from_utf8(raw) {
                return std::borrow::Cow::Borrowed(s);
            }
        }
        std::borrow::Cow::Owned(raw.iter().map(|&b| self.decode(b) as char).collect())
    }

    /// Encodes a logical ASCII string into raw bytes.
    pub fn encode_bytes(self, bytes: &[u8]) -> Vec<u8> {
        bytes.iter().map(|&b| self.encode(b)).collect()
    }

    /// The raw byte representing the ASCII digit value `d` (0–9).
    pub fn digit(self, d: u8) -> u8 {
        debug_assert!(d < 10);
        self.encode(b'0' + d)
    }

    /// Decodes a raw byte as a decimal digit if it is one in this charset.
    pub fn digit_value(self, raw: u8) -> Option<u8> {
        let a = self.decode(raw);
        a.is_ascii_digit().then(|| a - b'0')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_is_identity() {
        for b in 0..=255u8 {
            assert_eq!(Charset::Ascii.decode(b), b);
            assert_eq!(Charset::Ascii.encode(b), b);
        }
    }

    #[test]
    fn ebcdic_round_trips_printable_ascii() {
        for a in 0x20..=0x7Eu8 {
            let e = Charset::Ebcdic.encode(a);
            assert_ne!(e, 0x3F, "printable {a:#x} should be mapped");
            assert_eq!(Charset::Ebcdic.decode(e), a, "round trip for {:?}", a as char);
        }
    }

    #[test]
    fn ebcdic_digits_are_f0_to_f9() {
        for d in 0..10u8 {
            assert_eq!(Charset::Ebcdic.digit(d), 0xF0 + d);
            assert_eq!(Charset::Ebcdic.digit_value(0xF0 + d), Some(d));
        }
        assert_eq!(Charset::Ebcdic.digit_value(b'5'), None);
    }

    #[test]
    fn ebcdic_known_letters() {
        assert_eq!(Charset::Ebcdic.decode(0xC1), b'A');
        assert_eq!(Charset::Ebcdic.decode(0x81), b'a');
        assert_eq!(Charset::Ebcdic.decode(0x40), b' ');
        assert_eq!(Charset::Ebcdic.encode(b'|'), 0x4F);
    }

    #[test]
    fn unmapped_ebcdic_becomes_sub() {
        assert_eq!(Charset::Ebcdic.decode(0x04), 0x1A);
    }
}
