//! Parallel record-sharded parsing.
//!
//! The paper's deployments (§1) parse multi-gigabyte daily feeds — Sirius
//! call detail, web logs — whose record disciplines make the data
//! *embarrassingly splittable*: a newline-delimited source can be cut at any
//! newline, a fixed-width source at any multiple of the width, and both
//! halves parsed independently, because every record-bounded read is
//! position-independent. This module exploits that: [`plan_shards`] splits a
//! source into contiguous shards at record boundaries found by the
//! [`scan`](crate::scan) kernels, and [`run_sharded`] parses the shards on
//! worker threads that *stream* records through bounded channels into an
//! in-order merge, so at most `max_inflight` records per shard are ever
//! retained — the merge consumes each record the moment its turn comes,
//! which is what lets a checkpoint journal commit progressively during a
//! parallel run.
//!
//! # Determinism contract
//!
//! The merged output — values, parse descriptors, and the
//! [`ErrorBudget`] tally — is byte-identical to a sequential parse under
//! every [`OnExhausted`](crate::recovery::OnExhausted) mode. Two mechanisms
//! guarantee it:
//!
//! 1. **Workers parse with source-level limits stripped.** A shard cannot
//!    know how many errors earlier shards produced, so workers run with
//!    `max_errs`/`max_panic_skip` removed (the per-record
//!    `max_record_errs` cap is positional and stays). The merge folds each
//!    record's error delta into the cumulative budget in record order; as
//!    long as that fold never crosses a limit, the sequential engine would
//!    not have degraded either, and the streamed records are exactly its
//!    output.
//! 2. **Sequential replay from the first divergence.** The first record
//!    whose fold crosses a source limit — or the first shard that produces
//!    fewer records than planned (a panicked worker surfaces this way) —
//!    is the first point where sequential behaviour could differ. The
//!    merge stops *before consuming that record* and re-parses from its
//!    byte offset sequentially under the full policy with the
//!    budget-as-of-the-previous-record carried in. Re-parsing the tripping
//!    record itself under the real policy reproduces the budget-exhaustion
//!    transition (and its observer event) at exactly the record where the
//!    sequential engine fires it; `Stop` then ends after that record,
//!    `SkipRecord` and `BestEffort` continue under their degraded modes.

use std::sync::mpsc;
use std::thread;

use crate::encoding::Charset;
use crate::io::RecordDiscipline;
use crate::recovery::{ErrorBudget, RecoveryPolicy};
use crate::scan;

/// One contiguous byte range of the source, aligned to record boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the plan (0-based).
    pub index: usize,
    /// First byte of the shard (a record start).
    pub start: usize,
    /// One past the last byte (a record end, or the end of the source).
    pub end: usize,
    /// Global index of the shard's first record.
    pub first_record: usize,
    /// Number of records the shard holds.
    pub records: usize,
}

/// A partition of a source into record-aligned shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shards, contiguous and in source order. Never empty.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// A single shard covering `0..len` with `records` records.
    fn single(len: usize, records: usize) -> ShardPlan {
        ShardPlan {
            shards: vec![Shard { index: 0, start: 0, end: len, first_record: 0, records }],
        }
    }

    /// Builds a plan from record-aligned byte boundaries. `bounds` must be
    /// strictly increasing interior cut points; `records_in` counts the
    /// records of a byte range.
    fn from_bounds(
        len: usize,
        bounds: Vec<usize>,
        records_in: impl Fn(usize, usize) -> usize,
    ) -> ShardPlan {
        let mut shards = Vec::with_capacity(bounds.len() + 1);
        let mut start = 0;
        let mut first_record = 0;
        for end in bounds.into_iter().chain(std::iter::once(len)) {
            let records = records_in(start, end);
            shards.push(Shard { index: shards.len(), start, end, first_record, records });
            first_record += records;
            start = end;
        }
        ShardPlan { shards }
    }

    /// Total records across all shards.
    pub fn total_records(&self) -> usize {
        self.shards.iter().map(|s| s.records).sum()
    }
}

/// Splits `data` into at most `jobs` contiguous shards at record boundaries
/// of `disc`. With `jobs <= 1`, an empty source, or the
/// [`RecordDiscipline::None`] discipline (the whole source is one record),
/// the plan is a single shard.
///
/// Shards are byte-balanced: each interior boundary is the first record
/// boundary at or after an even byte split. Sources with fewer boundaries
/// than jobs simply produce fewer shards.
pub fn plan_shards(
    data: &[u8],
    disc: RecordDiscipline,
    charset: Charset,
    jobs: usize,
) -> ShardPlan {
    let len = data.len();
    match disc {
        RecordDiscipline::None => ShardPlan::single(len, usize::from(len > 0)),
        RecordDiscipline::Newline => {
            let nl = charset.encode(b'\n');
            let records_in = |s: usize, e: usize| {
                let mut n = scan::count_byte(&data[s..e], nl);
                // A final record without a trailing newline still counts.
                if e == len && e > s && data[e - 1] != nl {
                    n += 1;
                }
                n
            };
            if jobs <= 1 || len == 0 {
                return ShardPlan::single(len, records_in(0, len));
            }
            let mut bounds = Vec::with_capacity(jobs - 1);
            let mut prev = 0usize;
            for i in 1..jobs {
                let target = len * i / jobs;
                let from = target.max(prev);
                if from >= len {
                    break;
                }
                if let Some(off) = scan::find_byte(&data[from..], nl) {
                    let b = from + off + 1;
                    if b > prev && b < len {
                        bounds.push(b);
                        prev = b;
                    }
                }
            }
            ShardPlan::from_bounds(len, bounds, records_in)
        }
        RecordDiscipline::FixedWidth(w) => {
            if w == 0 {
                return ShardPlan::single(len, 0);
            }
            let total = len.div_ceil(w);
            let records_in = |s: usize, e: usize| (e - s).div_ceil(w);
            if jobs <= 1 || len == 0 {
                return ShardPlan::single(len, total);
            }
            let mut bounds = Vec::with_capacity(jobs - 1);
            let mut prev = 0usize;
            for i in 1..jobs {
                let b = (total * i / jobs) * w;
                if b > prev && b < len {
                    bounds.push(b);
                    prev = b;
                }
            }
            ShardPlan::from_bounds(len, bounds, records_in)
        }
        RecordDiscipline::LengthPrefixed { header_bytes, endian } => {
            // Record starts are only discoverable by walking the headers,
            // mirroring `Cursor::begin_record`'s framing (including its
            // malformed-header recovery: the rest of the source becomes
            // one record).
            let mut starts = Vec::new();
            let mut pos = 0usize;
            while pos < len {
                starts.push(pos);
                if header_bytes == 0 || header_bytes > len - pos {
                    break;
                }
                let hdr = &data[pos..pos + header_bytes];
                let mut rec_len: usize = 0;
                let fold = |l: usize, b: u8| {
                    l.checked_mul(256).map_or(usize::MAX, |l| l | b as usize)
                };
                match endian {
                    crate::encoding::Endian::Big => {
                        for &b in hdr {
                            rec_len = fold(rec_len, b);
                        }
                    }
                    crate::encoding::Endian::Little => {
                        for &b in hdr.iter().rev() {
                            rec_len = fold(rec_len, b);
                        }
                    }
                }
                let body = pos + header_bytes;
                if rec_len > len - body {
                    break;
                }
                pos = body + rec_len;
            }
            let total = starts.len();
            let records_in = |s: usize, e: usize| {
                starts.iter().filter(|&&p| s <= p && p < e).count()
            };
            if jobs <= 1 || total <= 1 {
                return ShardPlan::single(len, total);
            }
            let mut bounds = Vec::with_capacity(jobs - 1);
            let mut prev = 0usize;
            for i in 1..jobs {
                let target = len * i / jobs;
                // First record start at or after the even byte split.
                if let Some(&b) = starts.iter().find(|&&p| p >= target) {
                    if b > prev && b < len {
                        bounds.push(b);
                        prev = b;
                    }
                }
            }
            ShardPlan::from_bounds(len, bounds, records_in)
        }
    }
}

/// Default bound on in-flight records per shard channel: deep enough to
/// decouple workers from merge stalls, shallow enough to keep retained
/// memory O(jobs · max_inflight) instead of O(all records).
pub const DEFAULT_MAX_INFLIGHT: usize = 1024;

/// One parsed record streamed from a worker to the in-order merge.
#[derive(Debug)]
pub struct RecordMsg<T, E> {
    /// The parsed item (value + descriptor in the real engines).
    pub item: T,
    /// Errors this record added to the budget (the `note_record` delta).
    pub nerr: u32,
    /// Panic-skip bytes this record added to the budget.
    pub panic_skipped: u64,
    /// One past the record's last byte, in the plan's coordinates.
    pub end_offset: usize,
    /// Engine-specific per-record side data (e.g. a metrics harvest),
    /// merged in record order.
    pub extra: Option<E>,
}

/// The sending half a worker streams its shard's records through. Bounded:
/// `send` blocks once `max_inflight` records are queued ahead of the merge.
#[derive(Debug)]
pub struct ShardSender<T, E> {
    tx: mpsc::SyncSender<RecordMsg<T, E>>,
}

impl<T, E> ShardSender<T, E> {
    /// Queues one record for the merge, blocking while the channel is at
    /// capacity. Returns `false` when the merge has hung up (it diverted to
    /// sequential replay or consumed the shard's planned record count) —
    /// the worker should stop parsing.
    pub fn send(&self, msg: RecordMsg<T, E>) -> bool {
        self.tx.send(msg).is_ok()
    }
}

/// Where the in-order merge is, reported to the consumer with every record
/// so it can checkpoint progressively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Index of the record just consumed, in the plan's coordinates.
    pub record: usize,
    /// One past the record's last byte, in the plan's coordinates.
    pub end_offset: usize,
    /// The cumulative budget *after* folding this record.
    pub budget: ErrorBudget,
}

/// A committed position to resume from: everything before byte `offset` /
/// record `record` has been consumed, and `budget` is the tally as of that
/// boundary. Offsets and record indices are in the coordinates of whatever
/// the shard plan covers (callers resuming mid-source plan over the tail
/// slice and rebase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumePoint {
    /// First unconsumed byte.
    pub offset: usize,
    /// Index of the first unconsumed record.
    pub record: usize,
    /// The budget tally at the boundary.
    pub budget: ErrorBudget,
}

/// Parses a planned source on one thread per shard, streaming records
/// through bounded channels into an in-order merge that hands each record
/// to `consume` the moment its turn comes.
///
/// `worker` parses one shard, sending a [`RecordMsg`] per record through
/// its [`ShardSender`] (it must strip source-level limits from its policy —
/// see the module docs — and stop when `send` returns `false`). `replay`
/// parses sequentially from a [`ResumePoint`] **to the end of the plan**
/// under the full `policy`, calling its emit callback with
/// `(item, end_offset, budget_after_record, extra)` per record and
/// returning the final budget. `consume` receives every merged record, in
/// record order, exactly once.
///
/// `carried` is the budget tally at the plan's start (non-default when
/// resuming from a checkpoint). With a single shard — or a carried budget
/// already exhausted or stopped — the whole plan goes through `replay`,
/// which streams with O(1) retention by construction.
///
/// Returns the final cumulative budget.
pub fn run_sharded<T, E, W, R, C>(
    plan: &ShardPlan,
    policy: &RecoveryPolicy,
    carried: ErrorBudget,
    max_inflight: usize,
    worker: W,
    replay: R,
    mut consume: C,
) -> ErrorBudget
where
    T: Send,
    E: Send,
    W: Fn(&Shard, ShardSender<T, E>) + Sync,
    R: FnOnce(ResumePoint, &mut dyn FnMut(T, usize, ErrorBudget, Option<E>)) -> ErrorBudget,
    C: FnMut(T, Option<E>, &Progress),
{
    let shards = &plan.shards;
    if carried.stopped() {
        // A stopped budget ends the parse before any record; nothing to do.
        return carried;
    }
    let mut cum = carried;
    let mut next_record = 0usize;
    let mut divert: Option<ResumePoint> = None;
    if shards.len() <= 1 || carried.exhausted() {
        // One shard gains nothing from a worker thread, and an exhausted
        // carried budget degrades from the very first record: both stream
        // through the sequential engine directly.
        divert = Some(ResumePoint { offset: 0, record: 0, budget: carried });
    } else {
        thread::scope(|scope| {
            let worker = &worker;
            let mut handles = Vec::with_capacity(shards.len());
            let mut rxs = Vec::with_capacity(shards.len());
            for sh in shards {
                let (tx, rx) = mpsc::sync_channel(max_inflight.max(1));
                let sender = ShardSender { tx };
                handles.push(scope.spawn(move || worker(sh, sender)));
                rxs.push(rx);
            }
            let mut prev_end = 0usize;
            'merge: for (i, rx) in rxs.iter().enumerate() {
                for _ in 0..shards[i].records {
                    let Ok(msg) = rx.recv() else {
                        // The worker hung up short of its planned record
                        // count (panic safety net, or framing disagreement):
                        // sequential replay takes over from the last
                        // consumed boundary.
                        divert =
                            Some(ResumePoint { offset: prev_end, record: next_record, budget: cum });
                        break 'merge;
                    };
                    let before = cum;
                    cum.note_record(policy, msg.nerr, msg.panic_skipped);
                    if cum.exhausted() && !before.exhausted() {
                        // This record trips a source limit. Do not consume
                        // it: replay re-parses it under the full policy so
                        // the degradation (and its observer transition)
                        // lands exactly where the sequential engine puts it.
                        cum = before;
                        divert = Some(ResumePoint {
                            offset: prev_end,
                            record: next_record,
                            budget: before,
                        });
                        break 'merge;
                    }
                    consume(
                        msg.item,
                        msg.extra,
                        &Progress { record: next_record, end_offset: msg.end_offset, budget: cum },
                    );
                    next_record += 1;
                    prev_end = msg.end_offset;
                }
            }
            // Dropping the receivers unblocks any worker parked on a full
            // channel (its next send returns false); join to absorb worker
            // panics — a panicked shard already diverted to replay above.
            drop(rxs);
            for h in handles {
                let _ = h.join();
            }
        });
    }
    if let Some(from) = divert {
        let mut emit = |item: T, end_offset: usize, budget: ErrorBudget, extra: Option<E>| {
            consume(item, extra, &Progress { record: next_record, end_offset, budget });
            next_record += 1;
        };
        cum = replay(from, &mut emit);
    }
    cum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Endian;
    use crate::recovery::OnExhausted;

    fn newline_plan(data: &[u8], jobs: usize) -> ShardPlan {
        plan_shards(data, RecordDiscipline::Newline, Charset::Ascii, jobs)
    }

    fn assert_plan_invariants(data: &[u8], plan: &ShardPlan, expected_records: usize) {
        assert!(!plan.shards.is_empty());
        assert_eq!(plan.shards[0].start, 0);
        assert_eq!(plan.shards.last().map(|s| s.end), Some(data.len()));
        let mut first_record = 0;
        let mut prev_end = 0;
        for (i, s) in plan.shards.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.start, prev_end, "shards must be contiguous");
            assert_eq!(s.first_record, first_record);
            prev_end = s.end;
            first_record += s.records;
        }
        assert_eq!(plan.total_records(), expected_records);
    }

    #[test]
    fn newline_plans_split_on_record_boundaries() {
        let data = b"aa\nbb\ncc\ndd\nee\nff\n";
        for jobs in 1..=6 {
            let plan = newline_plan(data, jobs);
            assert_plan_invariants(data, &plan, 6);
            assert!(plan.shards.len() <= jobs.max(1));
            for s in &plan.shards {
                if s.end < data.len() {
                    assert_eq!(data[s.end - 1], b'\n', "boundary must follow a newline");
                }
            }
        }
    }

    #[test]
    fn newline_plan_counts_trailing_partial_record() {
        let plan = newline_plan(b"aa\nbb\ncc", 2);
        assert_plan_invariants(b"aa\nbb\ncc", &plan, 3);
    }

    #[test]
    fn degenerate_sources_yield_single_shards() {
        assert_eq!(newline_plan(b"", 4).shards.len(), 1);
        assert_eq!(newline_plan(b"no newline", 4).shards.len(), 1);
        let plan = plan_shards(b"abc", RecordDiscipline::None, Charset::Ascii, 4);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.total_records(), 1);
        let plan = plan_shards(b"abc", RecordDiscipline::FixedWidth(0), Charset::Ascii, 4);
        assert_eq!(plan.shards.len(), 1);
    }

    #[test]
    fn fixed_width_plans_split_at_width_multiples() {
        let data = [7u8; 100];
        let plan = plan_shards(&data, RecordDiscipline::FixedWidth(8), Charset::Ascii, 4);
        assert_plan_invariants(&data, &plan, 13);
        for s in &plan.shards {
            if s.end < data.len() {
                assert_eq!(s.end % 8, 0);
            }
        }
    }

    #[test]
    fn length_prefixed_plans_walk_headers() {
        // Records: [len=3]xyz [len=1]q [len=2]zz, 1-byte headers.
        let data = [3u8, b'x', b'y', b'z', 1, b'q', 2, b'z', b'z'];
        let disc = RecordDiscipline::LengthPrefixed { header_bytes: 1, endian: Endian::Big };
        let plan = plan_shards(&data, disc, Charset::Ascii, 3);
        assert_plan_invariants(&data, &plan, 3);
        for s in &plan.shards {
            if s.end < data.len() {
                assert!([0, 4, 6, 9].contains(&s.end), "boundary {} not a record start", s.end);
            }
        }
    }

    #[test]
    fn length_prefixed_overrun_groups_tail_into_one_record() {
        // Second header claims 200 bytes: the rest of the source is one
        // malformed record, exactly as `begin_record` frames it.
        let data = [2u8, b'a', b'b', 200, b'x', b'y'];
        let disc = RecordDiscipline::LengthPrefixed { header_bytes: 1, endian: Endian::Big };
        let plan = plan_shards(&data, disc, Charset::Ascii, 4);
        assert_plan_invariants(&data, &plan, 2);
    }

    // A toy "parser" for run_sharded tests: each record is one newline-line;
    // lines containing 'X' count one error each. Workers stream each line
    // with its error delta and end offset; `extra` marks worker-parsed
    // records so tests can tell streamed output from replayed output.
    fn toy_worker(data: &[u8]) -> impl Fn(&Shard, ShardSender<String, u64>) + Sync + '_ {
        move |shard, tx| {
            for (line, end) in split_records(data, shard.start, shard.end) {
                let nerr = u32::from(line.contains(&b'X'));
                let msg = RecordMsg {
                    item: String::from_utf8_lossy(line).into_owned(),
                    nerr,
                    panic_skipped: 0,
                    end_offset: end,
                    extra: Some(1),
                };
                if !tx.send(msg) {
                    break;
                }
            }
        }
    }

    // The sequential "engine": parses from the resume point to the source
    // end with the full policy, stopping/degrading as the policy dictates.
    fn toy_replay(
        data: &[u8],
        policy: RecoveryPolicy,
    ) -> impl FnOnce(ResumePoint, &mut dyn FnMut(String, usize, ErrorBudget, Option<u64>)) -> ErrorBudget + '_
    {
        move |from, emit| {
            let mut budget = from.budget;
            for (line, end) in split_records(data, from.offset, data.len()) {
                if budget.stopped() {
                    break;
                }
                if budget.exhausted() && policy.on_exhausted == OnExhausted::SkipRecord {
                    budget.note_skipped_record();
                    emit("<skipped>".to_owned(), end, budget, None);
                    continue;
                }
                let nerr = u32::from(line.contains(&b'X'));
                budget.note_record(&policy, nerr, 0);
                emit(String::from_utf8_lossy(line).into_owned(), end, budget, None);
            }
            budget
        }
    }

    // Newline-framed records of `data[start..end]` with their absolute end
    // offsets (one past the terminator, or the slice end for a partial
    // final record).
    fn split_records(data: &[u8], start: usize, end: usize) -> Vec<(&[u8], usize)> {
        let mut out = Vec::new();
        let mut rec_start = start;
        for i in start..end {
            if data[i] == b'\n' {
                out.push((&data[rec_start..i], i + 1));
                rec_start = i + 1;
            }
        }
        if rec_start < end {
            out.push((&data[rec_start..end], end));
        }
        out
    }

    struct ToyRun {
        items: Vec<String>,
        budget: ErrorBudget,
        /// Records consumed from workers (vs. replayed).
        streamed: u64,
        progress: Vec<Progress>,
    }

    fn run_toy_resumed(
        data: &[u8],
        policy: RecoveryPolicy,
        jobs: usize,
        carried: ErrorBudget,
    ) -> ToyRun {
        let plan = newline_plan(data, jobs);
        let mut items = Vec::new();
        let mut streamed = 0;
        let mut progress = Vec::new();
        let budget = run_sharded(
            &plan,
            &policy,
            carried,
            4,
            toy_worker(data),
            toy_replay(data, policy),
            |item, extra, p: &Progress| {
                items.push(item);
                streamed += extra.unwrap_or(0);
                progress.push(*p);
            },
        );
        ToyRun { items, budget, streamed, progress }
    }

    fn run_toy(data: &[u8], policy: RecoveryPolicy, jobs: usize) -> ToyRun {
        run_toy_resumed(data, policy, jobs, ErrorBudget::new())
    }

    #[test]
    fn sharded_matches_sequential_without_limits() {
        let data = b"one\ntwo\nthrXe\nfour\nfive\nsiX\nseven\neight\n";
        let seq = run_toy(data, RecoveryPolicy::unlimited(), 1);
        for jobs in 2..=5 {
            let par = run_toy(data, RecoveryPolicy::unlimited(), jobs);
            assert_eq!(par.items, seq.items, "jobs={jobs}");
            assert_eq!(par.budget, seq.budget, "jobs={jobs}");
            assert_eq!(par.streamed, par.items.len() as u64, "jobs={jobs}: all streamed");
        }
    }

    #[test]
    fn progress_is_monotonic_and_budget_folds_in_order() {
        let data = b"a\nXb\nc\nXd\ne\n";
        let par = run_toy(data, RecoveryPolicy::unlimited(), 3);
        let mut prev_record = None;
        let mut prev_end = 0;
        let mut prev_errs = 0;
        for p in &par.progress {
            assert_eq!(p.record, prev_record.map_or(0, |r: usize| r + 1), "dense record index");
            assert!(p.end_offset > prev_end, "offsets advance");
            assert!(p.budget.errs >= prev_errs, "budget is monotone");
            prev_record = Some(p.record);
            prev_end = p.end_offset;
            prev_errs = p.budget.errs;
        }
        assert_eq!(prev_end, data.len());
        assert_eq!(prev_errs, 2);
    }

    #[test]
    fn stop_mode_replays_and_discards_past_stop_point() {
        // max_errs = 1: the second 'X' line trips Stop; everything after it
        // must be absent, exactly as sequentially. The tripping record
        // itself is emitted (by replay, under the full policy).
        let policy = RecoveryPolicy::unlimited().with_max_errs(1);
        let data = b"a\nX1\nb\nX2\nc\nd\ne\nf\ng\nh\n";
        let seq = run_toy(data, policy, 1);
        assert!(seq.budget.stopped());
        assert_eq!(seq.items.last().map(String::as_str), Some("X2"));
        for jobs in 2..=4 {
            let par = run_toy(data, policy, jobs);
            assert_eq!(par.items, seq.items, "jobs={jobs}");
            assert_eq!(par.budget, seq.budget, "jobs={jobs}");
        }
    }

    #[test]
    fn skip_record_mode_replays_degraded_tail() {
        let policy = RecoveryPolicy::unlimited()
            .with_max_errs(0)
            .with_on_exhausted(OnExhausted::SkipRecord);
        let data = b"a\nb\nXbad\nc\nd\ne\nf\ng\n";
        let seq = run_toy(data, policy, 1);
        assert!(seq.budget.exhausted() && !seq.budget.stopped());
        assert!(seq.items.iter().any(|s| s == "<skipped>"));
        for jobs in 2..=4 {
            let par = run_toy(data, policy, jobs);
            assert_eq!(par.items, seq.items, "jobs={jobs}");
            assert_eq!(par.budget, seq.budget, "jobs={jobs}");
        }
    }

    #[test]
    fn clean_prefix_records_stream_before_a_trip() {
        // The trip is in the last shard: every record before it must have
        // been consumed straight off the worker channels, not replayed.
        let policy = RecoveryPolicy::unlimited().with_max_errs(0);
        let data = b"a\nb\nc\nd\ne\nf\ng\nXlast\n";
        let par = run_toy(data, policy, 4);
        let seq = run_toy(data, policy, 1);
        assert_eq!(par.items, seq.items);
        assert_eq!(par.budget, seq.budget);
        assert!(par.streamed >= 2, "clean prefix records should stream without replay");
        assert!(par.streamed < par.items.len() as u64, "the tripping record replays");
    }

    #[test]
    fn single_shard_plan_uses_replay_directly() {
        let policy = RecoveryPolicy::unlimited();
        let run = run_toy(b"only\n", policy, 1);
        assert_eq!(run.items, vec!["only".to_owned()]);
        assert_eq!(run.streamed, 0, "single-shard plans stream through replay");
    }

    #[test]
    fn carried_stopped_budget_yields_no_records() {
        let policy = RecoveryPolicy::unlimited().with_max_errs(0);
        let mut carried = ErrorBudget::new();
        carried.note_record(&policy, 1, 0);
        assert!(carried.stopped());
        let run = run_toy_resumed(b"a\nb\n", policy, 4, carried);
        assert!(run.items.is_empty());
        assert_eq!(run.budget, carried);
    }

    #[test]
    fn carried_exhausted_budget_degrades_from_first_record() {
        let policy = RecoveryPolicy::unlimited()
            .with_max_errs(0)
            .with_on_exhausted(OnExhausted::SkipRecord);
        let mut carried = ErrorBudget::new();
        carried.note_record(&policy, 1, 0);
        assert!(carried.exhausted() && !carried.stopped());
        let run = run_toy_resumed(b"a\nb\n", policy, 4, carried);
        assert_eq!(run.items, vec!["<skipped>".to_owned(), "<skipped>".to_owned()]);
        assert_eq!(run.budget.skipped_records, carried.skipped_records + 2);
    }

    #[test]
    fn tight_channel_bound_still_merges_everything() {
        let data = b"a\nb\nc\nd\ne\nf\ng\nh\ni\nj\nk\nl\n";
        let plan = newline_plan(data, 3);
        let mut items = Vec::new();
        let policy = RecoveryPolicy::unlimited();
        let budget = run_sharded(
            &plan,
            &policy,
            ErrorBudget::new(),
            1, // max_inflight: every worker blocks after one queued record
            toy_worker(data),
            toy_replay(data, policy),
            |item: String, _extra, _p: &Progress| items.push(item),
        );
        let seq = run_toy(data, policy, 1);
        assert_eq!(items, seq.items);
        assert_eq!(budget, seq.budget);
    }

    #[test]
    fn panicked_worker_diverts_to_replay() {
        let data = b"a\nb\nc\nd\ne\nf\ng\nh\n";
        let plan = newline_plan(data, 4);
        assert!(plan.shards.len() > 1);
        let panic_in = plan.shards[1].start..plan.shards[1].end;
        let policy = RecoveryPolicy::unlimited();
        let mut items = Vec::new();
        let budget = run_sharded(
            &plan,
            &policy,
            ErrorBudget::new(),
            4,
            |shard: &Shard, tx: ShardSender<String, u64>| {
                assert!(shard.start != panic_in.start, "worker panic safety net");
                toy_worker(data)(shard, tx);
            },
            toy_replay(data, policy),
            |item: String, _extra, _p: &Progress| items.push(item),
        );
        let seq = run_toy(data, policy, 1);
        assert_eq!(items, seq.items);
        assert_eq!(budget, seq.budget);
    }
}
