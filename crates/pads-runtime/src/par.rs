//! Parallel record-sharded parsing.
//!
//! The paper's deployments (§1) parse multi-gigabyte daily feeds — Sirius
//! call detail, web logs — whose record disciplines make the data
//! *embarrassingly splittable*: a newline-delimited source can be cut at any
//! newline, a fixed-width source at any multiple of the width, and both
//! halves parsed independently, because every record-bounded read is
//! position-independent. This module exploits that: [`plan_shards`] splits a
//! source into contiguous shards at record boundaries found by the
//! [`scan`](crate::scan) kernels, and [`run_sharded`] parses the shards on
//! worker threads and merges the results deterministically, in shard order.
//!
//! # Determinism contract
//!
//! The merged output — values, parse descriptors, and the
//! [`ErrorBudget`] tally — is byte-identical to a sequential parse under
//! every [`OnExhausted`](crate::recovery::OnExhausted) mode. Two mechanisms
//! guarantee it:
//!
//! 1. **Workers parse with source-level limits stripped.** A shard cannot
//!    know how many errors earlier shards produced, so workers run with
//!    `max_errs`/`max_panic_skip` removed (the per-record
//!    `max_record_errs` cap is positional and stays). As long as the
//!    *cumulative* budget never crosses a limit, the sequential engine
//!    would not have degraded either, and the shard outputs are exactly
//!    its outputs.
//! 2. **Sequential replay past the first divergence.** The merge folds
//!    shard budgets in order; the first shard whose absorption crosses a
//!    source limit (or whose item count disagrees with its planned record
//!    count) is the first point where sequential behaviour could differ —
//!    so its results and every later shard's are discarded and re-parsed
//!    sequentially from that shard's start with the carried-in budget.
//!    `Stop` discards everything past the stop point; `SkipRecord` and
//!    `BestEffort` re-parse the tail under their degraded modes.

use std::thread;

use crate::encoding::Charset;
use crate::io::RecordDiscipline;
use crate::recovery::{ErrorBudget, RecoveryPolicy};
use crate::scan;

/// One contiguous byte range of the source, aligned to record boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the plan (0-based).
    pub index: usize,
    /// First byte of the shard (a record start).
    pub start: usize,
    /// One past the last byte (a record end, or the end of the source).
    pub end: usize,
    /// Global index of the shard's first record.
    pub first_record: usize,
    /// Number of records the shard holds.
    pub records: usize,
}

/// A partition of a source into record-aligned shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shards, contiguous and in source order. Never empty.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// A single shard covering `0..len` with `records` records.
    fn single(len: usize, records: usize) -> ShardPlan {
        ShardPlan {
            shards: vec![Shard { index: 0, start: 0, end: len, first_record: 0, records }],
        }
    }

    /// Builds a plan from record-aligned byte boundaries. `bounds` must be
    /// strictly increasing interior cut points; `records_in` counts the
    /// records of a byte range.
    fn from_bounds(
        len: usize,
        bounds: Vec<usize>,
        records_in: impl Fn(usize, usize) -> usize,
    ) -> ShardPlan {
        let mut shards = Vec::with_capacity(bounds.len() + 1);
        let mut start = 0;
        let mut first_record = 0;
        for end in bounds.into_iter().chain(std::iter::once(len)) {
            let records = records_in(start, end);
            shards.push(Shard { index: shards.len(), start, end, first_record, records });
            first_record += records;
            start = end;
        }
        ShardPlan { shards }
    }

    /// Total records across all shards.
    pub fn total_records(&self) -> usize {
        self.shards.iter().map(|s| s.records).sum()
    }
}

/// Splits `data` into at most `jobs` contiguous shards at record boundaries
/// of `disc`. With `jobs <= 1`, an empty source, or the
/// [`RecordDiscipline::None`] discipline (the whole source is one record),
/// the plan is a single shard.
///
/// Shards are byte-balanced: each interior boundary is the first record
/// boundary at or after an even byte split. Sources with fewer boundaries
/// than jobs simply produce fewer shards.
pub fn plan_shards(
    data: &[u8],
    disc: RecordDiscipline,
    charset: Charset,
    jobs: usize,
) -> ShardPlan {
    let len = data.len();
    match disc {
        RecordDiscipline::None => ShardPlan::single(len, usize::from(len > 0)),
        RecordDiscipline::Newline => {
            let nl = charset.encode(b'\n');
            let records_in = |s: usize, e: usize| {
                let mut n = scan::count_byte(&data[s..e], nl);
                // A final record without a trailing newline still counts.
                if e == len && e > s && data[e - 1] != nl {
                    n += 1;
                }
                n
            };
            if jobs <= 1 || len == 0 {
                return ShardPlan::single(len, records_in(0, len));
            }
            let mut bounds = Vec::with_capacity(jobs - 1);
            let mut prev = 0usize;
            for i in 1..jobs {
                let target = len * i / jobs;
                let from = target.max(prev);
                if from >= len {
                    break;
                }
                if let Some(off) = scan::find_byte(&data[from..], nl) {
                    let b = from + off + 1;
                    if b > prev && b < len {
                        bounds.push(b);
                        prev = b;
                    }
                }
            }
            ShardPlan::from_bounds(len, bounds, records_in)
        }
        RecordDiscipline::FixedWidth(w) => {
            if w == 0 {
                return ShardPlan::single(len, 0);
            }
            let total = len.div_ceil(w);
            let records_in = |s: usize, e: usize| (e - s).div_ceil(w);
            if jobs <= 1 || len == 0 {
                return ShardPlan::single(len, total);
            }
            let mut bounds = Vec::with_capacity(jobs - 1);
            let mut prev = 0usize;
            for i in 1..jobs {
                let b = (total * i / jobs) * w;
                if b > prev && b < len {
                    bounds.push(b);
                    prev = b;
                }
            }
            ShardPlan::from_bounds(len, bounds, records_in)
        }
        RecordDiscipline::LengthPrefixed { header_bytes, endian } => {
            // Record starts are only discoverable by walking the headers,
            // mirroring `Cursor::begin_record`'s framing (including its
            // malformed-header recovery: the rest of the source becomes
            // one record).
            let mut starts = Vec::new();
            let mut pos = 0usize;
            while pos < len {
                starts.push(pos);
                if header_bytes == 0 || header_bytes > len - pos {
                    break;
                }
                let hdr = &data[pos..pos + header_bytes];
                let mut rec_len: usize = 0;
                let fold = |l: usize, b: u8| {
                    l.checked_mul(256).map_or(usize::MAX, |l| l | b as usize)
                };
                match endian {
                    crate::encoding::Endian::Big => {
                        for &b in hdr {
                            rec_len = fold(rec_len, b);
                        }
                    }
                    crate::encoding::Endian::Little => {
                        for &b in hdr.iter().rev() {
                            rec_len = fold(rec_len, b);
                        }
                    }
                }
                let body = pos + header_bytes;
                if rec_len > len - body {
                    break;
                }
                pos = body + rec_len;
            }
            let total = starts.len();
            let records_in = |s: usize, e: usize| {
                starts.iter().filter(|&&p| s <= p && p < e).count()
            };
            if jobs <= 1 || total <= 1 {
                return ShardPlan::single(len, total);
            }
            let mut bounds = Vec::with_capacity(jobs - 1);
            let mut prev = 0usize;
            for i in 1..jobs {
                let target = len * i / jobs;
                // First record start at or after the even byte split.
                if let Some(&b) = starts.iter().find(|&&p| p >= target) {
                    if b > prev && b < len {
                        bounds.push(b);
                        prev = b;
                    }
                }
            }
            ShardPlan::from_bounds(len, bounds, records_in)
        }
    }
}

/// What one shard produced: one item per record, the shard-local budget
/// tally, and an engine-specific extra (e.g. a metrics snapshot).
#[derive(Debug)]
pub struct ShardOutcome<T, E = ()> {
    /// One parsed item per record, in record order.
    pub items: Vec<T>,
    /// The shard-local [`ErrorBudget`] (parsed with source limits
    /// stripped, so its trip flags are never set).
    pub budget: ErrorBudget,
    /// Engine-specific side data merged in shard order.
    pub extra: E,
}

/// Parses a planned source on one thread per shard and merges the outcomes
/// deterministically.
///
/// `worker` parses one shard in isolation (it must strip source-level
/// limits from its policy — see the module docs); `replay` parses
/// sequentially from a shard's start **to the end of the source** with a
/// carried-in budget and the *full* policy. `replay` runs when a shard's
/// outcome could diverge from the sequential engine: its item count
/// disagrees with the plan, its thread failed, or absorbing its budget
/// crosses a source limit of `policy`.
///
/// Returns the merged items, the final budget, and the per-segment extras
/// (one per merged shard, plus one for the replayed tail when replay ran).
pub fn run_sharded<T, E, W, R>(
    plan: &ShardPlan,
    policy: &RecoveryPolicy,
    worker: W,
    replay: R,
) -> (Vec<T>, ErrorBudget, Vec<E>)
where
    T: Send,
    E: Send,
    W: Fn(&Shard) -> ShardOutcome<T, E> + Sync,
    R: FnOnce(&Shard, ErrorBudget) -> ShardOutcome<T, E>,
{
    let shards = &plan.shards;
    let source_end = shards.last().map_or(0, |s| s.end);
    if shards.len() <= 1 {
        let shard = shards.first().copied().unwrap_or(Shard {
            index: 0,
            start: 0,
            end: 0,
            first_record: 0,
            records: 0,
        });
        let out = replay(&shard, ErrorBudget::new());
        return (out.items, out.budget, vec![out.extra]);
    }

    let results: Vec<Option<ShardOutcome<T, E>>> = thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> =
            shards.iter().map(|sh| scope.spawn(move || worker(sh))).collect();
        // A panicked worker yields None and triggers sequential replay of
        // its shard; parsers are panic-free, so this is a safety net.
        handles.into_iter().map(|h| h.join().ok()).collect()
    });

    let mut items = Vec::with_capacity(plan.total_records());
    let mut extras = Vec::with_capacity(shards.len());
    let mut cum = ErrorBudget::new();
    let mut replay_from = None;
    for (i, res) in results.into_iter().enumerate() {
        let shard = &shards[i];
        let Some(out) = res else {
            replay_from = Some(i);
            break;
        };
        if out.items.len() != shard.records {
            replay_from = Some(i);
            break;
        }
        let mut next = cum;
        next.absorb(&out.budget);
        let tripped = policy.max_errs.is_some_and(|m| next.errs > m)
            || policy.max_panic_skip.is_some_and(|m| next.panic_skipped > m);
        if tripped {
            // The trip happened inside this shard; only a sequential
            // re-parse applies the degradation at the right record.
            replay_from = Some(i);
            break;
        }
        cum = next;
        items.extend(out.items);
        extras.push(out.extra);
    }

    if let Some(i) = replay_from {
        let tail = Shard {
            index: shards[i].index,
            start: shards[i].start,
            end: source_end,
            first_record: shards[i].first_record,
            records: shards[i..].iter().map(|s| s.records).sum(),
        };
        let out = replay(&tail, cum);
        cum = out.budget;
        items.extend(out.items);
        extras.push(out.extra);
    }
    (items, cum, extras)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Endian;
    use crate::recovery::OnExhausted;

    fn newline_plan(data: &[u8], jobs: usize) -> ShardPlan {
        plan_shards(data, RecordDiscipline::Newline, Charset::Ascii, jobs)
    }

    fn assert_plan_invariants(data: &[u8], plan: &ShardPlan, expected_records: usize) {
        assert!(!plan.shards.is_empty());
        assert_eq!(plan.shards[0].start, 0);
        assert_eq!(plan.shards.last().map(|s| s.end), Some(data.len()));
        let mut first_record = 0;
        let mut prev_end = 0;
        for (i, s) in plan.shards.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.start, prev_end, "shards must be contiguous");
            assert_eq!(s.first_record, first_record);
            prev_end = s.end;
            first_record += s.records;
        }
        assert_eq!(plan.total_records(), expected_records);
    }

    #[test]
    fn newline_plans_split_on_record_boundaries() {
        let data = b"aa\nbb\ncc\ndd\nee\nff\n";
        for jobs in 1..=6 {
            let plan = newline_plan(data, jobs);
            assert_plan_invariants(data, &plan, 6);
            assert!(plan.shards.len() <= jobs.max(1));
            for s in &plan.shards {
                if s.end < data.len() {
                    assert_eq!(data[s.end - 1], b'\n', "boundary must follow a newline");
                }
            }
        }
    }

    #[test]
    fn newline_plan_counts_trailing_partial_record() {
        let plan = newline_plan(b"aa\nbb\ncc", 2);
        assert_plan_invariants(b"aa\nbb\ncc", &plan, 3);
    }

    #[test]
    fn degenerate_sources_yield_single_shards() {
        assert_eq!(newline_plan(b"", 4).shards.len(), 1);
        assert_eq!(newline_plan(b"no newline", 4).shards.len(), 1);
        let plan = plan_shards(b"abc", RecordDiscipline::None, Charset::Ascii, 4);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.total_records(), 1);
        let plan = plan_shards(b"abc", RecordDiscipline::FixedWidth(0), Charset::Ascii, 4);
        assert_eq!(plan.shards.len(), 1);
    }

    #[test]
    fn fixed_width_plans_split_at_width_multiples() {
        let data = [7u8; 100];
        let plan = plan_shards(&data, RecordDiscipline::FixedWidth(8), Charset::Ascii, 4);
        assert_plan_invariants(&data, &plan, 13);
        for s in &plan.shards {
            if s.end < data.len() {
                assert_eq!(s.end % 8, 0);
            }
        }
    }

    #[test]
    fn length_prefixed_plans_walk_headers() {
        // Records: [len=3]xyz [len=1]q [len=2]zz, 1-byte headers.
        let data = [3u8, b'x', b'y', b'z', 1, b'q', 2, b'z', b'z'];
        let disc = RecordDiscipline::LengthPrefixed { header_bytes: 1, endian: Endian::Big };
        let plan = plan_shards(&data, disc, Charset::Ascii, 3);
        assert_plan_invariants(&data, &plan, 3);
        for s in &plan.shards {
            if s.end < data.len() {
                assert!([0, 4, 6, 9].contains(&s.end), "boundary {} not a record start", s.end);
            }
        }
    }

    #[test]
    fn length_prefixed_overrun_groups_tail_into_one_record() {
        // Second header claims 200 bytes: the rest of the source is one
        // malformed record, exactly as `begin_record` frames it.
        let data = [2u8, b'a', b'b', 200, b'x', b'y'];
        let disc = RecordDiscipline::LengthPrefixed { header_bytes: 1, endian: Endian::Big };
        let plan = plan_shards(&data, disc, Charset::Ascii, 4);
        assert_plan_invariants(&data, &plan, 2);
    }

    // A toy "parser" for run_sharded tests: each record is one newline-line;
    // lines containing 'X' count one error each.
    fn toy_worker(data: &[u8]) -> impl Fn(&Shard) -> ShardOutcome<String, u64> + Sync + '_ {
        move |shard| {
            let mut items = Vec::new();
            let mut budget = ErrorBudget::new();
            let unlimited = RecoveryPolicy::unlimited();
            for line in split_records(&data[shard.start..shard.end]) {
                let nerr = u32::from(line.contains(&b'X'));
                budget.note_record(&unlimited, nerr, 0);
                items.push(String::from_utf8_lossy(line).into_owned());
            }
            let extra = items.len() as u64;
            ShardOutcome { items, budget, extra }
        }
    }

    // The sequential "engine": parses from `shard.start` to the source end
    // with the full policy, stopping/degrading as the policy dictates.
    fn toy_replay(
        data: &[u8],
        policy: RecoveryPolicy,
    ) -> impl FnOnce(&Shard, ErrorBudget) -> ShardOutcome<String, u64> + '_ {
        move |shard, carried| {
            let mut items = Vec::new();
            let mut budget = carried;
            for line in split_records(&data[shard.start..]) {
                if budget.stopped() {
                    break;
                }
                if budget.exhausted() && policy.on_exhausted == OnExhausted::SkipRecord {
                    budget.note_skipped_record();
                    items.push("<skipped>".to_owned());
                    continue;
                }
                let nerr = u32::from(line.contains(&b'X'));
                budget.note_record(&policy, nerr, 0);
                items.push(String::from_utf8_lossy(line).into_owned());
            }
            let extra = items.len() as u64;
            ShardOutcome { items, budget, extra }
        }
    }

    fn split_records(data: &[u8]) -> Vec<&[u8]> {
        let mut out = Vec::new();
        let mut start = 0;
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' {
                out.push(&data[start..i]);
                start = i + 1;
            }
        }
        if start < data.len() {
            out.push(&data[start..]);
        }
        out
    }

    fn run_toy(
        data: &[u8],
        policy: RecoveryPolicy,
        jobs: usize,
    ) -> (Vec<String>, ErrorBudget, Vec<u64>) {
        let plan = newline_plan(data, jobs);
        run_sharded(&plan, &policy, toy_worker(data), toy_replay(data, policy))
    }

    #[test]
    fn sharded_matches_sequential_without_limits() {
        let data = b"one\ntwo\nthrXe\nfour\nfive\nsiX\nseven\neight\n";
        let (seq_items, seq_budget, _) = run_toy(data, RecoveryPolicy::unlimited(), 1);
        for jobs in 2..=5 {
            let (items, budget, extras) = run_toy(data, RecoveryPolicy::unlimited(), jobs);
            assert_eq!(items, seq_items, "jobs={jobs}");
            assert_eq!(budget, seq_budget, "jobs={jobs}");
            assert_eq!(extras.iter().sum::<u64>(), items.len() as u64);
        }
    }

    #[test]
    fn stop_mode_replays_and_discards_past_stop_point() {
        // max_errs = 1: the second 'X' line trips Stop; everything after it
        // must be absent, exactly as sequentially.
        let policy = RecoveryPolicy::unlimited().with_max_errs(1);
        let data = b"a\nX1\nb\nX2\nc\nd\ne\nf\ng\nh\n";
        let (seq_items, seq_budget, _) = run_toy(data, policy, 1);
        assert!(seq_budget.stopped());
        for jobs in 2..=4 {
            let (items, budget, _) = run_toy(data, policy, jobs);
            assert_eq!(items, seq_items, "jobs={jobs}");
            assert_eq!(budget, seq_budget, "jobs={jobs}");
        }
    }

    #[test]
    fn skip_record_mode_replays_degraded_tail() {
        let policy = RecoveryPolicy::unlimited()
            .with_max_errs(0)
            .with_on_exhausted(OnExhausted::SkipRecord);
        let data = b"a\nb\nXbad\nc\nd\ne\nf\ng\n";
        let (seq_items, seq_budget, _) = run_toy(data, policy, 1);
        assert!(seq_budget.exhausted() && !seq_budget.stopped());
        assert!(seq_items.iter().any(|s| s == "<skipped>"));
        for jobs in 2..=4 {
            let (items, budget, _) = run_toy(data, policy, jobs);
            assert_eq!(items, seq_items, "jobs={jobs}");
            assert_eq!(budget, seq_budget, "jobs={jobs}");
        }
    }

    #[test]
    fn clean_prefix_shards_are_kept_before_a_trip() {
        // The trip is in the last shard: earlier shards' parallel results
        // must be kept (extras has one entry per merged segment).
        let policy = RecoveryPolicy::unlimited().with_max_errs(0);
        let data = b"a\nb\nc\nd\ne\nf\ng\nXlast\n";
        let plan = newline_plan(data, 4);
        let (items, budget, extras) =
            run_sharded(&plan, &policy, toy_worker(data), toy_replay(data, policy));
        let (seq_items, seq_budget, _) = run_toy(data, policy, 1);
        assert_eq!(items, seq_items);
        assert_eq!(budget, seq_budget);
        assert!(extras.len() >= 2, "clean prefix shards should merge without replay");
    }

    #[test]
    fn single_shard_plan_uses_replay_directly() {
        let policy = RecoveryPolicy::unlimited();
        let (items, _, extras) = run_toy(b"only\n", policy, 1);
        assert_eq!(items, vec!["only".to_owned()]);
        assert_eq!(extras, vec![1]);
    }
}
