//! Error budgets and graceful degradation.
//!
//! The paper's generated C runtime exposes discipline knobs (`Pmax_errs`,
//! `Perror_rep` in the Figure 6 library) that bound how much error-handling
//! work a hostile or badly corrupted source can trigger. This module is the
//! Rust analogue: a [`RecoveryPolicy`] limits recorded errors per record and
//! per source plus the total bytes consumed by panic-mode resynchronisation,
//! and an [`OnExhausted`] mode says what happens when a limit is hit —
//! stop, skip records wholesale, or keep parsing with error detail
//! suppressed. The running tally lives in an [`ErrorBudget`] carried by the
//! [`Cursor`](crate::io::Cursor) so both the interpreting parser and
//! generated parsers share one discipline.

/// What to do once the error budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OnExhausted {
    /// Stop the parse at the next record boundary. Remaining input is left
    /// unread; iterators end, and `parse_source` reports no further errors.
    #[default]
    Stop,
    /// Keep framing records but skip their contents: each subsequent record
    /// yields a default value and a single
    /// [`ErrorCode::BudgetExhausted`](crate::error::ErrorCode::BudgetExhausted)
    /// descriptor. Record counts and byte accounting are preserved at
    /// near-zero per-record cost.
    SkipRecord,
    /// Keep parsing every record, but drop per-node error detail from its
    /// descriptor (the error *count* survives). Bounds descriptor memory to
    /// O(1) per record while still materialising values.
    BestEffort,
}

impl std::str::FromStr for OnExhausted {
    type Err = String;

    fn from_str(s: &str) -> Result<OnExhausted, String> {
        match s {
            "stop" => Ok(OnExhausted::Stop),
            "skip" | "skip-record" => Ok(OnExhausted::SkipRecord),
            "best-effort" => Ok(OnExhausted::BestEffort),
            other => Err(format!(
                "unknown overflow mode `{other}` (expected stop, skip, or best-effort)"
            )),
        }
    }
}

impl std::fmt::Display for OnExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OnExhausted::Stop => "stop",
            OnExhausted::SkipRecord => "skip",
            OnExhausted::BestEffort => "best-effort",
        })
    }
}

/// Limits on error-handling work (the `Pmax_errs` / `Perror_rep`
/// discipline). The default policy is unlimited: every error is recorded in
/// full, matching the paper's never-abort semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RecoveryPolicy {
    /// Maximum recorded errors across the whole source before
    /// [`on_exhausted`](RecoveryPolicy::on_exhausted) applies.
    pub max_errs: Option<u64>,
    /// Maximum errors whose *detail* (per-node descriptors) is kept for a
    /// single record; past this the record descriptor is flattened to its
    /// aggregate count and first error.
    pub max_record_errs: Option<u32>,
    /// Maximum total bytes skipped by panic-mode resynchronisation before
    /// [`on_exhausted`](RecoveryPolicy::on_exhausted) applies.
    pub max_panic_skip: Option<u64>,
    /// Degradation mode once a source-level limit trips.
    pub on_exhausted: OnExhausted,
}

impl RecoveryPolicy {
    /// No limits (the default): record everything, never degrade.
    pub fn unlimited() -> RecoveryPolicy {
        RecoveryPolicy::default()
    }

    /// Sets the per-source error limit (builder style).
    pub fn with_max_errs(mut self, n: u64) -> RecoveryPolicy {
        self.max_errs = Some(n);
        self
    }

    /// Sets the per-record error-detail limit (builder style).
    pub fn with_max_record_errs(mut self, n: u32) -> RecoveryPolicy {
        self.max_record_errs = Some(n);
        self
    }

    /// Sets the panic-skip byte limit (builder style).
    pub fn with_max_panic_skip(mut self, n: u64) -> RecoveryPolicy {
        self.max_panic_skip = Some(n);
        self
    }

    /// Sets the exhaustion mode (builder style).
    pub fn with_on_exhausted(mut self, mode: OnExhausted) -> RecoveryPolicy {
        self.on_exhausted = mode;
        self
    }

    /// Whether any source-level limit exists.
    pub fn is_limited(&self) -> bool {
        self.max_errs.is_some() || self.max_panic_skip.is_some()
    }
}

/// The running tally a policy is checked against. Monotone: checkpoints and
/// restores on the cursor do not roll it back (a failed union branch still
/// did the work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorBudget {
    /// Total errors recorded across closed records.
    pub errs: u64,
    /// Records closed with at least one error.
    pub bad_records: u64,
    /// Records skipped wholesale under [`OnExhausted::SkipRecord`].
    pub skipped_records: u64,
    /// Total bytes skipped by panic-mode resynchronisation.
    pub panic_skipped: u64,
    exhausted: bool,
    stopped: bool,
}

impl ErrorBudget {
    /// A fresh, empty tally.
    pub fn new() -> ErrorBudget {
        ErrorBudget::default()
    }

    /// Folds one closed record into the tally and applies `policy`.
    pub fn note_record(&mut self, policy: &RecoveryPolicy, nerr: u32, panic_skipped: u64) {
        self.errs = self.errs.saturating_add(nerr as u64);
        self.panic_skipped = self.panic_skipped.saturating_add(panic_skipped);
        if nerr > 0 {
            self.bad_records += 1;
        }
        let over = policy.max_errs.is_some_and(|m| self.errs > m)
            || policy.max_panic_skip.is_some_and(|m| self.panic_skipped > m);
        if over && !self.exhausted {
            self.exhausted = true;
            if policy.on_exhausted == OnExhausted::Stop {
                self.stopped = true;
            }
        }
    }

    /// Records one budget-skipped record.
    pub fn note_skipped_record(&mut self) {
        self.skipped_records += 1;
    }

    /// Folds another tally into this one: saturating sums of the counters
    /// and a logical OR of the trip flags. Used by the sharded engine
    /// ([`crate::par`]) to merge shard-local budgets in shard order; shards
    /// parsed with source limits stripped always carry untripped flags, so
    /// the merged flags stay faithful to the sequential run.
    pub fn absorb(&mut self, other: &ErrorBudget) {
        self.errs = self.errs.saturating_add(other.errs);
        self.bad_records = self.bad_records.saturating_add(other.bad_records);
        self.skipped_records = self.skipped_records.saturating_add(other.skipped_records);
        self.panic_skipped = self.panic_skipped.saturating_add(other.panic_skipped);
        self.exhausted |= other.exhausted;
        self.stopped |= other.stopped;
    }

    /// Whether a source-level limit has tripped.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Whether the parse should stop entirely.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Decomposes the tally for serialisation (checkpoint journals): the
    /// four counters in declaration order (`errs`, `bad_records`,
    /// `skipped_records`, `panic_skipped`) plus the two trip flags.
    pub fn to_parts(&self) -> ([u64; 4], bool, bool) {
        (
            [self.errs, self.bad_records, self.skipped_records, self.panic_skipped],
            self.exhausted,
            self.stopped,
        )
    }

    /// Rebuilds a tally from [`to_parts`](ErrorBudget::to_parts) output.
    /// Counter order must match: `errs`, `bad_records`, `skipped_records`,
    /// `panic_skipped`.
    pub fn from_parts(counters: [u64; 4], exhausted: bool, stopped: bool) -> ErrorBudget {
        ErrorBudget {
            errs: counters[0],
            bad_records: counters[1],
            skipped_records: counters[2],
            panic_skipped: counters[3],
            exhausted,
            stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_exhausts() {
        let policy = RecoveryPolicy::unlimited();
        let mut b = ErrorBudget::new();
        for _ in 0..10_000 {
            b.note_record(&policy, 100, 50);
        }
        assert!(!b.exhausted());
        assert!(!b.stopped());
        assert_eq!(b.errs, 1_000_000);
    }

    #[test]
    fn max_errs_trips_and_stop_stops() {
        let policy = RecoveryPolicy::unlimited().with_max_errs(5);
        let mut b = ErrorBudget::new();
        b.note_record(&policy, 3, 0);
        assert!(!b.exhausted());
        b.note_record(&policy, 3, 0);
        assert!(b.exhausted());
        assert!(b.stopped());
    }

    #[test]
    fn skip_record_mode_exhausts_without_stopping() {
        let policy = RecoveryPolicy::unlimited()
            .with_max_errs(0)
            .with_on_exhausted(OnExhausted::SkipRecord);
        let mut b = ErrorBudget::new();
        b.note_record(&policy, 1, 0);
        assert!(b.exhausted());
        assert!(!b.stopped());
    }

    #[test]
    fn panic_skip_budget_trips() {
        let policy = RecoveryPolicy::unlimited()
            .with_max_panic_skip(10)
            .with_on_exhausted(OnExhausted::BestEffort);
        let mut b = ErrorBudget::new();
        b.note_record(&policy, 0, 11);
        assert!(b.exhausted());
        assert!(!b.stopped());
    }

    #[test]
    fn absorb_sums_counters_and_ors_flags() {
        let policy = RecoveryPolicy::unlimited().with_max_errs(3);
        let mut a = ErrorBudget::new();
        a.note_record(&policy, 2, 5);
        let mut b = ErrorBudget::new();
        b.note_record(&policy, 1, 0);
        b.note_skipped_record();
        a.absorb(&b);
        assert_eq!(a.errs, 3);
        assert_eq!(a.bad_records, 2);
        assert_eq!(a.skipped_records, 1);
        assert_eq!(a.panic_skipped, 5);
        assert!(!a.exhausted());
        let mut tripped = ErrorBudget::new();
        tripped.note_record(&policy, 4, 0);
        assert!(tripped.stopped());
        a.absorb(&tripped);
        assert!(a.exhausted() && a.stopped());
    }

    #[test]
    fn mode_parses_from_cli_spellings() {
        assert_eq!("stop".parse(), Ok(OnExhausted::Stop));
        assert_eq!("skip".parse(), Ok(OnExhausted::SkipRecord));
        assert_eq!("skip-record".parse(), Ok(OnExhausted::SkipRecord));
        assert_eq!("best-effort".parse(), Ok(OnExhausted::BestEffort));
        assert!("bogus".parse::<OnExhausted>().is_err());
    }
}
