//! Base types: the atomic layer of PADS descriptions.
//!
//! The PADS library ships a collection of broadly useful base types
//! (`Puint8`, `Pstring`, `Pdate`, `Pip`, …), and the set is *user
//! extensible*: §6 of the paper describes how base-type specifications are
//! read from files and backed by user C libraries. Here the same role is
//! played by the [`BaseType`] trait and the [`Registry`]: the standard
//! registry holds every built-in family, and applications may register their
//! own implementations under new names.

use std::collections::HashMap;
use std::sync::Arc;

use crate::encoding::{Charset, Endian};
use crate::error::ErrorCode;
use crate::io::Cursor;
use crate::prim::{Prim, PrimKind};

pub mod bits;
pub mod decimal;
pub mod ints;
pub mod misc;
pub mod strings;

/// A parsed primitive that may borrow its text from the input buffer.
///
/// The zero-copy tier of the base-type API: [`BaseType::parse_view`] returns
/// this instead of an always-owned [`Prim`], so string-kinded types
/// (`Phostname`, `Pzip`, …) can hand back a slice of the cursor's buffer on
/// the ASCII identity path and only fall back to an owned `Prim` when
/// decoding actually rewrites bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimView<'d> {
    /// Text borrowed directly from the input buffer (ASCII identity path).
    Str(&'d str),
    /// The owned fallback — exactly what [`BaseType::parse`] returns.
    Owned(Prim),
}

impl PrimView<'_> {
    /// Converts to an owned primitive, copying borrowed text.
    pub fn into_prim(self) -> Prim {
        match self {
            PrimView::Str(s) => Prim::String(s.to_owned()),
            PrimView::Owned(p) => p,
        }
    }

    /// The text of a string-kinded view, borrowed or owned.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PrimView::Str(s) => Some(s),
            PrimView::Owned(p) => p.as_str(),
        }
    }
}

/// A parseable, printable atomic type.
///
/// # Contract
///
/// * `parse` may consume input before failing; the caller (the interpreting
///   parser or generated code) checkpoints the cursor and restores it when
///   `parse` returns an error.
/// * `write` must emit bytes that `parse` would accept and that reproduce
///   the original input for values produced by `parse` (modulo documented
///   canonicalisations such as numeric zero-padding in fixed-width types).
pub trait BaseType: Send + Sync {
    /// The name used in descriptions, e.g. `"Puint32"`.
    fn name(&self) -> &str;

    /// Minimum and maximum number of type parameters.
    fn arity(&self) -> (usize, usize) {
        (0, 0)
    }

    /// The kind of primitive this type produces.
    fn kind(&self) -> PrimKind;

    /// Parses one value at the cursor.
    ///
    /// # Errors
    ///
    /// An [`ErrorCode`] describing the syntax problem. The cursor may have
    /// consumed bytes; callers restore it.
    fn parse(&self, cur: &mut Cursor<'_>, args: &[Prim]) -> Result<Prim, ErrorCode>;

    /// Zero-copy variant of [`parse`](BaseType::parse): types whose text
    /// survives verbatim in the input buffer may return a borrowed view.
    ///
    /// The default delegates to `parse`, so implementors opt in per type.
    /// Overrides must be observationally identical to `parse`:
    /// `parse_view(cur, args).map(PrimView::into_prim)` produces the same
    /// result, cursor movement, and errors as `parse(cur, args)`.
    ///
    /// # Errors
    ///
    /// Exactly the errors `parse` would report.
    fn parse_view<'d>(
        &self,
        cur: &mut Cursor<'d>,
        args: &[Prim],
    ) -> Result<PrimView<'d>, ErrorCode> {
        self.parse(cur, args).map(PrimView::Owned)
    }

    /// Writes `val` in this type's on-disk form.
    ///
    /// # Errors
    ///
    /// An [`ErrorCode`] when `val` has the wrong kind or cannot be
    /// represented (e.g. out of range for the width).
    fn write(
        &self,
        out: &mut Vec<u8>,
        val: &Prim,
        args: &[Prim],
        charset: Charset,
        endian: Endian,
    ) -> Result<(), ErrorCode>;

    /// A default value of this type's kind, used to fill representations
    /// whose mask does not request parsing.
    fn default_value(&self, _args: &[Prim]) -> Prim {
        match self.kind() {
            PrimKind::Unit => Prim::Unit,
            PrimKind::Bool => Prim::Bool(false),
            PrimKind::Char => Prim::Char(0),
            PrimKind::Int => Prim::Int(0),
            PrimKind::Uint => Prim::Uint(0),
            PrimKind::Float => Prim::Float(0.0),
            PrimKind::String => Prim::String(String::new()),
            PrimKind::Bytes => Prim::Bytes(Vec::new()),
            PrimKind::Ip => Prim::Ip([0; 4]),
            PrimKind::Date => Prim::Date(crate::date::PDate {
                epoch: 0,
                tz_minutes: 0,
                style: crate::date::DateStyle::Epoch,
            }),
        }
    }
}

/// A name-indexed collection of base types.
///
/// # Examples
///
/// ```
/// use pads_runtime::base::Registry;
///
/// let reg = Registry::standard();
/// assert!(reg.get("Puint32").is_some());
/// assert!(reg.get("Pstring").is_some());
/// assert!(reg.get("NoSuchType").is_none());
/// ```
#[derive(Clone)]
pub struct Registry {
    map: HashMap<String, Arc<dyn BaseType>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { map: HashMap::new() }
    }

    /// The standard registry with every built-in base type.
    pub fn standard() -> Registry {
        let mut reg = Registry::new();
        bits::register_all(&mut reg);
        ints::register_all(&mut reg);
        strings::register_all(&mut reg);
        misc::register_all(&mut reg);
        decimal::register_all(&mut reg);
        reg
    }

    /// Registers (or replaces) a base type under its own name.
    pub fn register(&mut self, bt: Arc<dyn BaseType>) {
        self.map.insert(bt.name().to_owned(), bt);
    }

    /// Looks up a base type by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn BaseType>> {
        self.map.get(name)
    }

    /// Whether `name` names a registered base type.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Iterates over registered names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Number of registered base types.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.names().collect();
        names.sort_unstable();
        f.debug_struct("Registry").field("types", &names).finish()
    }
}

/// Extracts a `u64` argument at `idx`, for width-parameterised types.
pub(crate) fn arg_u64(args: &[Prim], idx: usize) -> Result<u64, ErrorCode> {
    args.get(idx).and_then(Prim::as_u64).ok_or(ErrorCode::EvalError)
}

/// Extracts a character argument at `idx` (terminators).
pub(crate) fn arg_char(args: &[Prim], idx: usize) -> Result<u8, ErrorCode> {
    match args.get(idx) {
        Some(Prim::Char(c)) => Ok(*c),
        Some(Prim::String(s)) if s.len() == 1 => Ok(s.as_bytes()[0]),
        Some(p) => p.as_u64().map(|v| v as u8).ok_or(ErrorCode::EvalError),
        None => Err(ErrorCode::EvalError),
    }
}

/// Extracts a string argument at `idx` (regex patterns).
pub(crate) fn arg_str(args: &[Prim], idx: usize) -> Result<&str, ErrorCode> {
    args.get(idx).and_then(Prim::as_str).ok_or(ErrorCode::EvalError)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_core_families() {
        let reg = Registry::standard();
        for name in [
            "Pint8", "Pint16", "Pint32", "Pint64", "Puint8", "Puint16", "Puint32", "Puint64",
            "Pa_uint32", "Pe_uint32", "Puint16_FW", "Pa_int64_FW", "Pb_uint32", "Pb_int16",
            "Pchar", "Pa_char", "Pe_char", "Pstring", "Pstring_FW", "Pstring_ME", "Pstring_SE",
            "Pfloat32", "Pfloat64", "Pdate", "Pip", "Phostname", "Pzip", "Pvoid",
            "Pebc_zoned", "Ppacked", "Pbits",
        ] {
            assert!(reg.contains(name), "missing base type {name}");
        }
    }

    #[test]
    fn user_types_can_be_registered_and_shadow() {
        struct Always42;
        impl BaseType for Always42 {
            fn name(&self) -> &str {
                "Pmeaning"
            }
            fn kind(&self) -> PrimKind {
                PrimKind::Uint
            }
            fn parse(&self, _: &mut Cursor<'_>, _: &[Prim]) -> Result<Prim, ErrorCode> {
                Ok(Prim::Uint(42))
            }
            fn write(
                &self,
                out: &mut Vec<u8>,
                _: &Prim,
                _: &[Prim],
                _: Charset,
                _: Endian,
            ) -> Result<(), ErrorCode> {
                out.extend_from_slice(b"42");
                Ok(())
            }
        }
        let mut reg = Registry::standard();
        let before = reg.len();
        reg.register(Arc::new(Always42));
        assert_eq!(reg.len(), before + 1);
        let mut cur = Cursor::new(b"");
        let v = reg.get("Pmeaning").unwrap().parse(&mut cur, &[]).unwrap();
        assert_eq!(v, Prim::Uint(42));
    }

    #[test]
    fn default_values_match_kinds() {
        let reg = Registry::standard();
        let d = reg.get("Puint32").unwrap().default_value(&[]);
        assert_eq!(d, Prim::Uint(0));
        let d = reg.get("Pstring").unwrap().default_value(&[]);
        assert_eq!(d, Prim::String(String::new()));
        let d = reg.get("Pip").unwrap().default_value(&[]);
        assert_eq!(d, Prim::Ip([0; 4]));
    }
}
