//! Interned structure names.
//!
//! Field, branch, and variant names appear in every [`Value`] and
//! [`ParseDesc`] node, but the set of distinct names is fixed by the
//! schema. [`Name`] makes the per-record cost of carrying them a pointer
//! copy (generated parsers embed `&'static str`s) or an atomic refcount
//! bump (the interpreter interns each schema name once into an
//! `Arc<str>`), instead of a fresh heap `String` per node per record —
//! the same dense-interning discipline the metrics `ObsSchema` uses for
//! node ids.
//!
//! `Name` dereferences to `str` and compares against `str`/`String`
//! transparently, so consumers keep treating names as plain strings.
//!
//! [`Value`]: https://docs.rs/pads
//! [`ParseDesc`]: crate::pd::ParseDesc

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned structure name: either a `&'static str` baked into
/// generated code, or a shared `Arc<str>` interned once per schema.
#[derive(Clone)]
pub struct Name(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static str),
    Shared(Arc<str>),
}

impl Name {
    /// The empty name (placeholder for unnamed slots).
    pub const EMPTY: Name = Name::from_static("");

    /// Wraps a static string — free to construct and to clone.
    pub const fn from_static(s: &'static str) -> Name {
        Name(Repr::Static(s))
    }

    /// Interns an owned string into a shared allocation; subsequent
    /// clones are refcount bumps.
    pub fn shared(s: &str) -> Name {
        Name(Repr::Shared(Arc::from(s)))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Name {
    fn default() -> Name {
        Name::EMPTY
    }
}

impl std::ops::Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&'static str> for Name {
    fn from(s: &'static str) -> Name {
        Name::from_static(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name(Repr::Shared(Arc::from(s)))
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Name {
        Name::shared(s)
    }
}

impl From<Name> for String {
    fn from(n: Name) -> String {
        n.as_str().to_owned()
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Name {}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Name) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Name) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_shared_compare_as_strings() {
        let a = Name::from_static("host");
        let b = Name::shared("host");
        assert_eq!(a, b);
        assert_eq!(a, "host");
        assert_eq!("host", b);
        assert_eq!(a, "host".to_owned());
        assert!(a == *"host");
    }

    #[test]
    fn conversions() {
        let n: Name = "ip".into();
        assert_eq!(n.as_str(), "ip");
        let n: Name = String::from("tag").into();
        assert_eq!(&*n, "tag");
        let s: String = n.into();
        assert_eq!(s, "tag");
    }

    #[test]
    fn borrow_allows_str_keyed_lookup() {
        let mut m = std::collections::HashMap::new();
        m.insert(Name::from_static("k"), 1);
        assert_eq!(m.get("k"), Some(&1));
    }

    #[test]
    fn ordering_and_display() {
        let mut v = vec![Name::from_static("b"), Name::shared("a")];
        v.sort();
        assert_eq!(format!("{} {}", v[0], v[1]), "a b");
        assert_eq!(format!("{:?}", v[0]), "\"a\"");
    }
}
