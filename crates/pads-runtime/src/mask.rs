//! Masks: run-time control over which constraints are checked and which
//! parts of the in-memory representation are materialised.
//!
//! The paper (§3, §4) motivates masks with the Hancock call-detail streams:
//! one description records *all* known semantic properties, and each
//! application pays only for the checks it needs. A [`Mask`] is a tree whose
//! shape mirrors the described type; every node carries a [`BaseMask`] for
//! its own value and a second one for its compound-level (`Pwhere`)
//! predicate, matching `compoundLevel` in the generated C (Figure 6).

use std::collections::BTreeMap;

/// Per-node mask flags (`Pbase_m` in the paper's C library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BaseMask {
    /// Skip the component entirely where possible: no constraint checking,
    /// and the representation is not guaranteed to be filled in.
    Ignore,
    /// Fill in the representation but do not run constraints (`P_Set`).
    Set,
    /// Run constraints but do not promise a representation (`P_Check`).
    Check,
    /// Fill in the representation and run constraints (`P_CheckAndSet`).
    #[default]
    CheckAndSet,
}

impl BaseMask {
    /// Whether constraints should be evaluated under this mask.
    pub fn checks(self) -> bool {
        matches!(self, BaseMask::Check | BaseMask::CheckAndSet)
    }

    /// Whether the representation should be materialised under this mask.
    pub fn sets(self) -> bool {
        matches!(self, BaseMask::Set | BaseMask::CheckAndSet)
    }
}

impl std::fmt::Display for BaseMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BaseMask::Ignore => "Ignore",
            BaseMask::Set => "Set",
            BaseMask::Check => "Check",
            BaseMask::CheckAndSet => "CheckAndSet",
        };
        f.write_str(s)
    }
}

/// Path component used to address array elements in a mask tree.
///
/// Named struct fields and union branches are addressed by name; array
/// elements collectively use this constant (`"elt"`).
pub const ELT: &str = "elt";

/// A structure-mirroring mask tree.
///
/// Children not explicitly overridden inherit this node's flags, so
/// `Mask::all(BaseMask::CheckAndSet)` is the paper's
/// `entry_t_m_init(p, &mask, P_CheckAndSet)`.
///
/// # Examples
///
/// ```
/// use pads_runtime::mask::{BaseMask, Mask};
///
/// // Check everything except the event sequence's Pwhere sort constraint —
/// // the Figure 7 configuration.
/// let mut mask = Mask::all(BaseMask::CheckAndSet);
/// mask.set_compound_at("events", BaseMask::Set);
/// assert!(!mask.child("events").compound().checks());
/// assert!(mask.child("header").base().checks());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Mask {
    base: BaseMask,
    compound: BaseMask,
    children: BTreeMap<String, Mask>,
}

impl Mask {
    /// A mask applying `m` uniformly to every node, value and compound alike.
    pub fn all(m: BaseMask) -> Mask {
        Mask { base: m, compound: m, children: BTreeMap::new() }
    }

    /// The flags for this node's own value and constraint.
    pub fn base(&self) -> BaseMask {
        self.base
    }

    /// The flags for this node's compound-level (`Pwhere`) predicate.
    pub fn compound(&self) -> BaseMask {
        self.compound
    }

    /// Sets this node's value flags.
    pub fn set_base(&mut self, m: BaseMask) -> &mut Mask {
        self.base = m;
        self
    }

    /// Sets this node's compound-level flags.
    pub fn set_compound(&mut self, m: BaseMask) -> &mut Mask {
        self.compound = m;
        self
    }

    /// Whether this node carries no per-child overrides — [`child`](Mask::child)
    /// would return a node identical to this one for every name, so callers
    /// holding a leaf mask may reuse it for all descendants instead of
    /// materialising children (the uniform `Mask::all(..)` fast path).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Returns the effective mask for the named child: the explicit override
    /// when present, otherwise a childless mask inheriting this node's flags.
    ///
    /// Array elements are addressed with [`ELT`].
    pub fn child(&self, name: &str) -> Mask {
        match self.children.get(name) {
            Some(m) => m.clone(),
            None => Mask { base: self.base, compound: self.compound, children: BTreeMap::new() },
        }
    }

    /// Mutable access to the named child, creating it (inheriting the current
    /// flags) if absent.
    pub fn child_mut(&mut self, name: &str) -> &mut Mask {
        let inherit = Mask { base: self.base, compound: self.compound, children: BTreeMap::new() };
        self.children.entry(name.to_owned()).or_insert(inherit)
    }

    /// Sets the *value* flags of the node addressed by a dot-separated path
    /// (e.g. `"events.elt.tstamp"`), creating intermediate nodes as needed.
    /// Intermediate nodes keep their inherited flags.
    pub fn set_at(&mut self, path: &str, m: BaseMask) -> &mut Mask {
        self.node_mut(path).base = m;
        self
    }

    /// Sets the *compound* flags of the node addressed by `path`.
    pub fn set_compound_at(&mut self, path: &str, m: BaseMask) -> &mut Mask {
        self.node_mut(path).compound = m;
        self
    }

    fn node_mut(&mut self, path: &str) -> &mut Mask {
        let mut node = self;
        if path.is_empty() {
            return node;
        }
        for part in path.split('.') {
            node = node.child_mut(part);
        }
        node
    }
}

impl std::fmt::Display for Mask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn go(m: &Mask, name: &str, indent: usize, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            writeln!(
                f,
                "{:indent$}{name}: base={} compound={}",
                "",
                m.base,
                m.compound,
                indent = indent
            )?;
            for (k, v) in &m.children {
                go(v, k, indent + 2, f)?;
            }
            Ok(())
        }
        go(self, "<mask>", 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_inherits_uniformly() {
        let m = Mask::all(BaseMask::Check);
        assert_eq!(m.child("anything").base(), BaseMask::Check);
        assert_eq!(m.child("a").child("b").compound(), BaseMask::Check);
    }

    #[test]
    fn path_override_is_local() {
        let mut m = Mask::all(BaseMask::CheckAndSet);
        m.set_at("events.elt.tstamp", BaseMask::Set);
        assert_eq!(m.child("events").child(ELT).child("tstamp").base(), BaseMask::Set);
        assert_eq!(m.child("events").child(ELT).child("state").base(), BaseMask::CheckAndSet);
        assert_eq!(m.child("header").base(), BaseMask::CheckAndSet);
    }

    #[test]
    fn figure7_configuration() {
        // mask = CheckAndSet everywhere; events compound level only Set.
        let mut m = Mask::all(BaseMask::CheckAndSet);
        m.set_compound_at("events", BaseMask::Set);
        let ev = m.child("events");
        assert!(ev.base().checks());
        assert!(!ev.compound().checks());
        assert!(ev.compound().sets());
    }

    #[test]
    fn mask_semantics() {
        assert!(!BaseMask::Ignore.checks() && !BaseMask::Ignore.sets());
        assert!(!BaseMask::Set.checks() && BaseMask::Set.sets());
        assert!(BaseMask::Check.checks() && !BaseMask::Check.sets());
        assert!(BaseMask::CheckAndSet.checks() && BaseMask::CheckAndSet.sets());
    }

    #[test]
    fn empty_path_addresses_root() {
        let mut m = Mask::all(BaseMask::CheckAndSet);
        m.set_at("", BaseMask::Ignore);
        assert_eq!(m.base(), BaseMask::Ignore);
    }
}
