//! Observer hooks for the data path.
//!
//! A [`Observer`] receives structured events from both parsing engines —
//! the interpreter in `pads-core` and the modules emitted by
//! `pads-codegen` — as they consume input: type entry/exit with byte
//! offsets, per-descriptor errors, recovery actions, and record
//! boundaries. The hooks are carried by the [`Cursor`](crate::io::Cursor)
//! so generated modules need no new dependencies, and the
//! record-boundary, error, and recovery events are emitted centrally from
//! the shared budget-accounting path, guaranteeing that both engines
//! produce identical event streams for the same input.
//!
//! The trait lives here (rather than in the `pads-observe` crate that
//! provides the metrics and trace sinks) for the same reason a logging
//! facade is split from its backends: the runtime owns the event
//! vocabulary ([`Pos`], [`Loc`], [`ErrorCode`], [`ParseDesc`]) and the
//! emission points, while sinks plug in from outside.
//!
//! When no observer is attached the hooks cost a single `Option`
//! discriminant test per site; the `ablation_observer` bench in
//! `crates/bench` keeps that claim honest.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::error::{ErrorCode, Loc, Pos};
use crate::pd::ParseDesc;
use crate::recovery::OnExhausted;

/// A recovery action taken by the error-budget machinery (PR 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// Panic-mode resynchronisation discarded `bytes` bytes to reach the
    /// record boundary.
    PanicSkip {
        /// Bytes discarded between the failure point and the boundary.
        bytes: u64,
    },
    /// A whole record was framed and skipped without parsing
    /// ([`OnExhausted::SkipRecord`]).
    SkipRecord,
    /// The error budget just transitioned to exhausted under `mode`.
    BudgetExhausted {
        /// The degradation mode now in force.
        mode: OnExhausted,
    },
}

/// Receiver for parse events. All methods default to no-ops so sinks
/// implement only what they need.
///
/// Event guarantees:
///
/// * `type_enter`/`type_exit` bracket every *named* type parse and nest
///   properly; failed attempts (e.g. union branches that backtrack) still
///   produce a balanced pair, with the failure visible in the exit's
///   [`ParseDesc`].
/// * `error` fires once per descriptor error surviving in a closed
///   record (after per-record truncation), plus once per source-level
///   root error — exactly the errors a caller of
///   [`ParseDesc::errors`] would see.
/// * `record` fires once per closed or skipped record, in order.
/// * `recovery` fires when the budget machinery acts: panic-mode skips,
///   wholesale record skips, and the exhaustion transition itself.
pub trait Observer {
    /// A named type's parse begins at `pos`.
    fn type_enter(&mut self, _name: &str, _pos: Pos) {}

    /// The parse entered at `start` ended at `end`; `pd` is its final
    /// descriptor.
    fn type_exit(&mut self, _name: &str, _start: Pos, _end: Pos, _pd: &ParseDesc) {}

    /// A descriptor error at `path` (dotted field path, `""` for the
    /// root).
    fn error(&mut self, _path: &str, _code: ErrorCode, _loc: Option<Loc>) {}

    /// The recovery machinery acted at `pos`.
    fn recovery(&mut self, _event: RecoveryEvent, _pos: Pos) {}

    /// Record `index` closed covering `span` with `nerr` errors.
    fn record(&mut self, _index: usize, _span: Loc, _nerr: u32) {}
}

/// A shared, clonable handle to an observer, carried by the cursor.
///
/// Interior mutability lets the caller keep a handle to the sink and read
/// it out after the parse while the cursor (and its clones — union
/// backtracking clones cursors freely) holds the same observer.
#[derive(Clone)]
pub struct ObsHandle(Rc<RefCell<dyn Observer>>);

impl ObsHandle {
    /// Wraps a sink in a shared handle.
    pub fn new<O: Observer + 'static>(obs: O) -> ObsHandle {
        ObsHandle(Rc::new(RefCell::new(obs)))
    }

    /// Wraps an already-shared sink, e.g. one the caller wants to keep a
    /// reading handle to.
    pub fn from_rc(rc: Rc<RefCell<dyn Observer>>) -> ObsHandle {
        ObsHandle(rc)
    }

    /// Runs `f` against the sink. Re-entrant use (a sink that somehow
    /// triggers another event while handling one) is silently dropped
    /// rather than panicking: the data path must never abort.
    #[inline]
    pub fn with(&self, f: impl FnOnce(&mut dyn Observer)) {
        if let Ok(mut obs) = self.0.try_borrow_mut() {
            f(&mut *obs);
        }
    }
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ObsHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        enters: usize,
        errors: usize,
    }

    impl Observer for Counter {
        fn type_enter(&mut self, _name: &str, _pos: Pos) {
            self.enters += 1;
        }
        fn error(&mut self, _path: &str, _code: ErrorCode, _loc: Option<Loc>) {
            self.errors += 1;
        }
    }

    #[test]
    fn handle_shares_one_sink_across_clones() {
        let sink = Rc::new(RefCell::new(Counter::default()));
        let h = ObsHandle::from_rc(sink.clone());
        let h2 = h.clone();
        h.with(|o| o.type_enter("a", Pos::default()));
        h2.with(|o| o.type_enter("b", Pos::default()));
        h2.with(|o| o.error("", ErrorCode::LitMismatch, None));
        assert_eq!(sink.borrow().enters, 2);
        assert_eq!(sink.borrow().errors, 1);
    }

    #[test]
    fn default_methods_are_noops() {
        struct Nop;
        impl Observer for Nop {}
        let h = ObsHandle::new(Nop);
        h.with(|o| {
            o.type_enter("x", Pos::default());
            o.type_exit("x", Pos::default(), Pos::default(), &ParseDesc::default());
            o.recovery(RecoveryEvent::SkipRecord, Pos::default());
            o.record(0, Loc::at(Pos::default()), 0);
        });
    }
}
