//! Primitive values produced by base types.
//!
//! [`Prim`] is the atomic layer of the in-memory representation: every PADS
//! base type parses to exactly one `Prim`. Compound values (structs, unions,
//! arrays) live in the `pads` core crate and embed `Prim` at the leaves.

use crate::date::PDate;

/// The category of value a base type produces, used by the checker (for
/// expression typing) and by accumulators (to pick a statistics kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimKind {
    /// No value (matched literals, `Pvoid`).
    Unit,
    /// Boolean.
    Bool,
    /// A single character (logical ASCII).
    Char,
    /// Signed integer.
    Int,
    /// Unsigned integer.
    Uint,
    /// Floating point.
    Float,
    /// Text.
    String,
    /// Raw bytes.
    Bytes,
    /// IPv4 address.
    Ip,
    /// Date/time.
    Date,
}

/// A primitive (base-type) value.
#[derive(Debug, Clone, PartialEq)]
pub enum Prim {
    /// No value.
    Unit,
    /// Boolean.
    Bool(bool),
    /// One logical-ASCII character.
    Char(u8),
    /// Signed integer (all `PintN` widths normalise to `i64`).
    Int(i64),
    /// Unsigned integer (all `PuintN` widths normalise to `u64`).
    Uint(u64),
    /// Floating point.
    Float(f64),
    /// Text (decoded to logical ASCII / UTF-8).
    String(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// IPv4 address octets.
    Ip([u8; 4]),
    /// Date/time.
    Date(PDate),
}

impl Prim {
    /// The kind of this value.
    pub fn kind(&self) -> PrimKind {
        match self {
            Prim::Unit => PrimKind::Unit,
            Prim::Bool(_) => PrimKind::Bool,
            Prim::Char(_) => PrimKind::Char,
            Prim::Int(_) => PrimKind::Int,
            Prim::Uint(_) => PrimKind::Uint,
            Prim::Float(_) => PrimKind::Float,
            Prim::String(_) => PrimKind::String,
            Prim::Bytes(_) => PrimKind::Bytes,
            Prim::Ip(_) => PrimKind::Ip,
            Prim::Date(_) => PrimKind::Date,
        }
    }

    /// Numeric view as `i64` (integers, chars, bools, dates-as-epoch).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Prim::Int(v) => Some(*v),
            Prim::Uint(v) => i64::try_from(*v).ok(),
            Prim::Char(c) => Some(*c as i64),
            Prim::Bool(b) => Some(*b as i64),
            Prim::Date(d) => Some(d.epoch),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Prim::Uint(v) => Some(*v),
            Prim::Int(v) => u64::try_from(*v).ok(),
            Prim::Char(c) => Some(*c as u64),
            Prim::Bool(b) => Some(*b as u64),
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Prim::Float(v) => Some(*v),
            Prim::Int(v) => Some(*v as f64),
            Prim::Uint(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Prim::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Prim::String(s) => Some(s),
            _ => None,
        }
    }

    /// Whether two primitives compare equal under the description language's
    /// loose numeric equality (`Int 3 == Uint 3`, `Char 'a' == Uint 97`).
    pub fn loose_eq(&self, other: &Prim) -> bool {
        if self == other {
            return true;
        }
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl std::fmt::Display for Prim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Prim::Unit => f.write_str(""),
            Prim::Bool(b) => write!(f, "{b}"),
            Prim::Char(c) => write!(f, "{}", *c as char),
            Prim::Int(v) => write!(f, "{v}"),
            Prim::Uint(v) => write!(f, "{v}"),
            Prim::Float(v) => write!(f, "{v}"),
            Prim::String(s) => f.write_str(s),
            Prim::Bytes(b) => {
                for byte in b {
                    write!(f, "\\x{byte:02x}")?;
                }
                Ok(())
            }
            Prim::Ip(o) => write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3]),
            Prim::Date(d) => write!(f, "{d}"),
        }
    }
}

impl Default for Prim {
    /// The unit primitive.
    fn default() -> Prim {
        Prim::Unit
    }
}

impl From<bool> for Prim {
    fn from(v: bool) -> Prim {
        Prim::Bool(v)
    }
}

impl From<i64> for Prim {
    fn from(v: i64) -> Prim {
        Prim::Int(v)
    }
}

impl From<u64> for Prim {
    fn from(v: u64) -> Prim {
        Prim::Uint(v)
    }
}

impl From<f64> for Prim {
    fn from(v: f64) -> Prim {
        Prim::Float(v)
    }
}

impl From<String> for Prim {
    fn from(v: String) -> Prim {
        Prim::String(v)
    }
}

impl From<&str> for Prim {
    fn from(v: &str) -> Prim {
        Prim::from(std::borrow::Cow::Borrowed(v))
    }
}

impl From<std::borrow::Cow<'_, str>> for Prim {
    fn from(v: std::borrow::Cow<'_, str>) -> Prim {
        // `into_owned` moves when the cow already owns — the only copy
        // left is the unavoidable one for genuinely borrowed text.
        Prim::String(v.into_owned())
    }
}

impl From<PDate> for Prim {
    fn from(v: PDate) -> Prim {
        Prim::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loose_equality_crosses_numeric_kinds() {
        assert!(Prim::Int(3).loose_eq(&Prim::Uint(3)));
        assert!(Prim::Char(b'a').loose_eq(&Prim::Uint(97)));
        assert!(Prim::Float(2.5).loose_eq(&Prim::Float(2.5)));
        assert!(Prim::Uint(3).loose_eq(&Prim::Float(3.0)));
        assert!(!Prim::Int(3).loose_eq(&Prim::Uint(4)));
        assert!(!Prim::String("3".into()).loose_eq(&Prim::Uint(3)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Prim::Ip([135, 207, 23, 32]).to_string(), "135.207.23.32");
        assert_eq!(Prim::Char(b'-').to_string(), "-");
        assert_eq!(Prim::Bytes(vec![0xde, 0xad]).to_string(), "\\xde\\xad");
        assert_eq!(Prim::Uint(30).to_string(), "30");
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Prim::Uint(u64::MAX).as_i64(), None);
        assert_eq!(Prim::Int(-1).as_u64(), None);
        assert_eq!(Prim::Bool(true).as_i64(), Some(1));
        assert_eq!(Prim::Int(-2).as_f64(), Some(-2.0));
    }
}
