//! Runtime support for the PADS data description language.
//!
//! This crate is the Rust analogue of the ~30,000-line C runtime described
//! in §6 of *PADS: a domain-specific language for processing ad hoc data*
//! (Fisher & Gruber, PLDI 2005). It provides everything the interpreting
//! parser and generated parsers share:
//!
//! * [`error`] — error codes, locations, and parse states;
//! * [`pd`] — parse descriptors, the error half of every parse result;
//! * [`mask`] — run-time masks selecting which constraints to check;
//! * [`encoding`] — ambient codings: ASCII, EBCDIC (cp037), byte orders;
//! * [`date`] — civil-time conversion and the `Pdate` styles;
//! * [`prim`] — primitive values produced by base types;
//! * [`io`] — the record-disciplined input [`io::Cursor`];
//! * [`base`] — the user-extensible base type [`base::Registry`]
//!   with the full built-in families (`Pint*`/`Puint*` in ASCII, EBCDIC and
//!   binary codings, strings, dates, IP addresses, Cobol decimals, …);
//! * [`recovery`] — error budgets and graceful-degradation policies
//!   (the `Pmax_errs` / `Perror_rep` discipline);
//! * [`fault`] — deterministic fault injection for adversarial testing;
//! * [`observe`] — the [`observe::Observer`] hook both engines emit
//!   parse events to (sinks live in the `pads-observe` crate);
//! * [`metrics`] — the dense-ID, `Send`-able [`metrics::MetricsCore`]
//!   counter slabs behind the metrics hot path, plus the per-node cost
//!   profiler;
//! * [`summary`] — bounded-memory histograms and quantile estimates;
//! * [`cache`] — the bounded LRU [`cache::KeyedCache`] behind the
//!   compiled-regex and VM program caches.
//!
//! # Examples
//!
//! Parsing a single base-type value directly from bytes:
//!
//! ```
//! use pads_runtime::base::Registry;
//! use pads_runtime::io::{Cursor, RecordDiscipline};
//! use pads_runtime::prim::Prim;
//!
//! # fn main() -> Result<(), pads_runtime::error::ErrorCode> {
//! let registry = Registry::standard();
//! let mut cursor = Cursor::new(b"1005022800|...").with_discipline(RecordDiscipline::None);
//! let value = registry.get("Puint32").unwrap().parse(&mut cursor, &[])?;
//! assert_eq!(value, Prim::Uint(1_005_022_800));
//! # Ok(())
//! # }
//! ```

// Parsers must never abort on data: panics are bugs here, so new
// `unwrap`/`expect` sites are rejected outright (test code is exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod base;
pub mod cache;
pub mod date;
pub mod encoding;
pub mod error;
pub mod fault;
pub mod io;
pub mod mask;
pub mod metrics;
pub mod name;
pub mod observe;
pub mod par;
pub mod pd;
pub mod prim;
pub mod recovery;
pub mod scan;
pub mod summary;

pub use arena::{AShape, AVal, AValRef, NameId, NameTable, ValueArena};
pub use base::{BaseType, PrimView, Registry};
pub use cache::KeyedCache;
pub use encoding::{Charset, Endian};
pub use error::{ErrorCode, Loc, ParseState, Pos};
pub use fault::{FaultPlan, FaultReader, KillPlan};
pub use io::{Cursor, RecordDiscipline};
pub use mask::{BaseMask, Mask};
pub use metrics::{MetricsCore, MetricsHandle, ObsSchema, TypeStat, WorkerObs};
pub use name::Name;
pub use observe::{ObsHandle, Observer, RecoveryEvent};
pub use par::{
    plan_shards, run_sharded, Progress, RecordMsg, ResumePoint, Shard, ShardPlan, ShardSender,
    DEFAULT_MAX_INFLIGHT,
};
pub use pd::{ParseDesc, PdKind, SparseElts};
pub use prim::{Prim, PrimKind};
pub use recovery::{ErrorBudget, OnExhausted, RecoveryPolicy};
pub use scan::{count_byte, find_byte, find_byte2, find_literal, skip_class, ClassBitmap};
