//! Bulk byte-scanning kernels.
//!
//! The paper's PADS systems ingest multi-gigabyte daily feeds (§1: Sirius
//! call detail, web logs at 300 M calls/day), so the inner loops that find
//! record boundaries, literal delimiters, and character-class runs must not
//! go byte-at-a-time. This module provides SWAR (SIMD-within-a-register)
//! kernels in the style of `memchr`: each processes a word of input per
//! step using only portable integer arithmetic, so it is fast everywhere
//! without depending on platform intrinsics.
//!
//! All kernels operate on a plain `&[u8]` slice. Callers that must respect
//! a record boundary (the cursor's `limit()`) slice the haystack *once*
//! before calling, replacing the per-byte limit checks of the old loops
//! with a single precomputed bound.
//!
//! Every kernel is paired with property tests asserting byte-for-byte
//! equivalence with the naive loop it replaces.

const WORD: usize = core::mem::size_of::<usize>();
const LO: usize = usize::from_ne_bytes([0x01; WORD]);
const HI: usize = usize::from_ne_bytes([0x80; WORD]);

/// Reads a native-endian word from `s` at `i` (caller guarantees bounds).
#[inline(always)]
fn load_word(s: &[u8], i: usize) -> usize {
    let mut w = [0u8; WORD];
    // Always in bounds: callers only invoke with `i + WORD <= s.len()`.
    // The copy compiles to a single unaligned word load.
    if let Some(chunk) = s.get(i..i + WORD) {
        w.copy_from_slice(chunk);
    }
    usize::from_ne_bytes(w)
}

/// SWAR trick: a word whose high bit is set in every byte of `w` that is
/// zero (Mycroft's "has zero byte" test).
#[inline(always)]
fn zero_bytes(w: usize) -> usize {
    w.wrapping_sub(LO) & !w & HI
}

/// Index of the first zero-byte marker in `m` (native endianness).
#[inline(always)]
fn first_marker(m: usize) -> usize {
    debug_assert!(m != 0);
    if cfg!(target_endian = "little") {
        (m.trailing_zeros() / 8) as usize
    } else {
        (m.leading_zeros() / 8) as usize
    }
}

/// Offset of the first occurrence of `needle` in `hay`, or `None`.
///
/// Replaces `hay.iter().position(|&b| b == needle)` in the cursor's
/// newline/terminator discovery.
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    let splat = usize::from_ne_bytes([needle; WORD]);
    let mut i = 0;
    while i + WORD <= hay.len() {
        let m = zero_bytes(load_word(hay, i) ^ splat);
        if m != 0 {
            return Some(i + first_marker(m));
        }
        i += WORD;
    }
    while i < hay.len() {
        if hay[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Offset of the first occurrence of either `a` or `b` in `hay`.
///
/// Used when a scan must stop at whichever of two delimiters comes first
/// (e.g. a field terminator or the record's newline).
#[inline]
pub fn find_byte2(hay: &[u8], a: u8, b: u8) -> Option<usize> {
    let sa = usize::from_ne_bytes([a; WORD]);
    let sb = usize::from_ne_bytes([b; WORD]);
    let mut i = 0;
    while i + WORD <= hay.len() {
        let w = load_word(hay, i);
        let m = zero_bytes(w ^ sa) | zero_bytes(w ^ sb);
        if m != 0 {
            return Some(i + first_marker(m));
        }
        i += WORD;
    }
    while i < hay.len() {
        if hay[i] == a || hay[i] == b {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Offset of the first occurrence of the literal `needle` in `hay`.
///
/// Skips to candidate positions with [`find_byte`] on the first needle
/// byte, then verifies the remainder — the classic two-phase substring
/// search that is fast when the first byte is rare (delimiters are).
#[inline]
pub fn find_literal(hay: &[u8], needle: &[u8]) -> Option<usize> {
    let (&first, rest) = needle.split_first()?;
    if hay.len() < needle.len() {
        return None;
    }
    let mut base = 0;
    let last_start = hay.len() - needle.len();
    while base <= last_start {
        match find_byte(&hay[base..=last_start + rest.len()], first) {
            Some(off) => {
                let cand = base + off;
                if cand > last_start {
                    return None;
                }
                if &hay[cand + 1..cand + needle.len()] == rest {
                    return Some(cand);
                }
                base = cand + 1;
            }
            None => return None,
        }
    }
    None
}

/// Number of occurrences of `needle` in `hay`.
///
/// Used by the shard planner to count record boundaries without
/// materialising their positions: each SWAR step counts all matches in a
/// word at once (one high-bit marker per matching byte).
#[inline]
pub fn count_byte(hay: &[u8], needle: u8) -> usize {
    let splat = usize::from_ne_bytes([needle; WORD]);
    let mut count = 0;
    let mut i = 0;
    while i + WORD <= hay.len() {
        count += zero_bytes(load_word(hay, i) ^ splat).count_ones() as usize;
        i += WORD;
    }
    while i < hay.len() {
        count += (hay[i] == needle) as usize;
        i += 1;
    }
    count
}

/// A 256-bit membership bitmap over byte values, laid out exactly like
/// `pads-regex`'s `ByteSet`: bit `b` lives at `bits[b >> 6] & (1 << (b & 63))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassBitmap {
    /// The four 64-bit words of the bitmap.
    pub bits: [u64; 4],
}

impl ClassBitmap {
    /// The empty class.
    pub const fn new() -> ClassBitmap {
        ClassBitmap { bits: [0; 4] }
    }

    /// Builds a class from raw bitmap words (e.g. a regex `ByteSet`).
    pub const fn from_bits(bits: [u64; 4]) -> ClassBitmap {
        ClassBitmap { bits }
    }

    /// A class holding the given bytes.
    pub fn of(bytes: &[u8]) -> ClassBitmap {
        let mut c = ClassBitmap::new();
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// The ASCII digit class `[0-9]`.
    pub fn ascii_digits() -> ClassBitmap {
        let mut c = ClassBitmap::new();
        let mut b = b'0';
        while b <= b'9' {
            c.insert(b);
            b += 1;
        }
        c
    }

    /// Adds `b` to the class.
    #[inline]
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Whether `b` is in the class.
    #[inline(always)]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }
}

/// Length of the longest prefix of `hay` whose bytes are all members of
/// `class`.
///
/// Replaces per-byte `is_ascii_digit()`-style loops in the integer readers
/// and the single-class star loops in the regex VM. The bitmap lookup is a
/// shift/mask pair with no branches besides the loop itself; unrolling four
/// bytes per iteration keeps the loop-carried work down without the
/// precomputation cost a full SWAR class test would need.
#[inline]
pub fn skip_class(hay: &[u8], class: &ClassBitmap) -> usize {
    let mut i = 0;
    while i + 4 <= hay.len() {
        if !class.contains(hay[i]) {
            return i;
        }
        if !class.contains(hay[i + 1]) {
            return i + 1;
        }
        if !class.contains(hay[i + 2]) {
            return i + 2;
        }
        if !class.contains(hay[i + 3]) {
            return i + 3;
        }
        i += 4;
    }
    while i < hay.len() {
        if !class.contains(hay[i]) {
            return i;
        }
        i += 1;
    }
    hay.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proptest::{collection, sample};

    #[test]
    fn find_byte_basics() {
        assert_eq!(find_byte(b"", b'x'), None);
        assert_eq!(find_byte(b"x", b'x'), Some(0));
        assert_eq!(find_byte(b"abcdef", b'f'), Some(5));
        assert_eq!(find_byte(b"abcdefgh_ijklmnop", b'_'), Some(8));
        assert_eq!(find_byte(b"abcdefghijklmnopqrstuvwx\n", b'\n'), Some(24));
        assert_eq!(find_byte(b"abcdefghijklmnop", b'z'), None);
        assert_eq!(find_byte(&[0u8; 40], 0), Some(0));
    }

    #[test]
    fn find_byte2_basics() {
        assert_eq!(find_byte2(b"", b'a', b'b'), None);
        assert_eq!(find_byte2(b"xxbxxaxx", b'a', b'b'), Some(2));
        assert_eq!(find_byte2(b"xxaxxbxx", b'a', b'b'), Some(2));
        assert_eq!(find_byte2(b"xxxxxxxxxxxxxxxxq", b'q', b'q'), Some(16));
        assert_eq!(find_byte2(b"no match here!", b'z', b'q'), None);
    }

    #[test]
    fn find_literal_basics() {
        assert_eq!(find_literal(b"hello world", b"world"), Some(6));
        assert_eq!(find_literal(b"hello world", b"wards"), None);
        assert_eq!(find_literal(b"aaab", b"aab"), Some(1));
        assert_eq!(find_literal(b"abc", b""), None);
        assert_eq!(find_literal(b"ab", b"abc"), None);
        assert_eq!(find_literal(b"abcabcabd", b"abd"), Some(6));
        assert_eq!(find_literal(b"xyz", b"xyz"), Some(0));
    }

    #[test]
    fn count_byte_basics() {
        assert_eq!(count_byte(b"", b'\n'), 0);
        assert_eq!(count_byte(b"a\nb\nc", b'\n'), 2);
        assert_eq!(count_byte(b"\n\n\n\n\n\n\n\n\n\n\n\n\n\n\n\n\n", b'\n'), 17);
        assert_eq!(count_byte(b"no newline at all....", b'\n'), 0);
    }

    #[test]
    fn skip_class_basics() {
        let digits = ClassBitmap::ascii_digits();
        assert_eq!(skip_class(b"12345x", &digits), 5);
        assert_eq!(skip_class(b"", &digits), 0);
        assert_eq!(skip_class(b"x123", &digits), 0);
        assert_eq!(skip_class(b"123456789012345678", &digits), 18);
        let high = ClassBitmap::of(&[0xFF, 0xFE]);
        assert_eq!(skip_class(&[0xFF, 0xFE, 0xFF, 0x00], &high), 3);
    }

    #[test]
    fn class_bitmap_layout_matches_regex_byteset() {
        // bit b lives at bits[b >> 6] & (1 << (b & 63)), same as ByteSet.
        let c = ClassBitmap::of(&[0, 63, 64, 127, 128, 255]);
        assert_eq!(c.bits[0], 1 | 1 << 63);
        assert_eq!(c.bits[1], 1 | 1 << 63);
        assert_eq!(c.bits[2], 1);
        assert_eq!(c.bits[3], 1 << 63);
        for b in 0..=255u8 {
            assert_eq!(
                c.contains(b),
                matches!(b, 0 | 63 | 64 | 127 | 128 | 255),
                "byte {b}"
            );
        }
    }

    // ---- property tests: kernels == naive loops ------------------------

    fn bytes_strategy() -> BoxedStrategy<Vec<u8>> {
        // Bias toward a tiny alphabet so needles actually occur, mixed
        // with full-range bytes to exercise the SWAR carry paths.
        collection::vec(sample::select(vec![b'a', b'b', b'\n', 0u8, 0x7F, 0x80, 0xFF]), 0..64)
            .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn find_byte_matches_naive(hay in bytes_strategy(), needle in sample::select(vec![b'a', b'\n', 0u8, 0x80u8, 0xFFu8])) {
            let naive = hay.iter().position(|&b| b == needle);
            prop_assert_eq!(find_byte(&hay, needle), naive);
        }

        #[test]
        fn find_byte2_matches_naive(hay in bytes_strategy(), a in sample::select(vec![b'a', b'\n', 0u8, 0xFFu8]), b in sample::select(vec![b'b', b'\n', 0x80u8])) {
            let naive = hay.iter().position(|&x| x == a || x == b);
            prop_assert_eq!(find_byte2(&hay, a, b), naive);
        }

        #[test]
        fn count_byte_matches_naive(hay in bytes_strategy(), needle in sample::select(vec![b'a', b'\n', 0u8, 0x80u8, 0xFFu8])) {
            let naive = hay.iter().filter(|&&b| b == needle).count();
            prop_assert_eq!(count_byte(&hay, needle), naive);
        }

        #[test]
        fn find_literal_matches_naive(hay in bytes_strategy(), needle in collection::vec(sample::select(vec![b'a', b'b', b'\n']), 1..4)) {
            let naive = if hay.len() >= needle.len() {
                (0..=hay.len() - needle.len()).find(|&i| hay[i..i + needle.len()] == needle[..])
            } else {
                None
            };
            prop_assert_eq!(find_literal(&hay, &needle), naive);
        }

        #[test]
        fn skip_class_matches_naive(hay in bytes_strategy(), members in collection::vec(sample::select(vec![b'a', b'b', b'\n', 0u8, 0xFFu8]), 0..4)) {
            let class = ClassBitmap::of(&members);
            let naive = hay.iter().position(|&b| !class.contains(b)).unwrap_or(hay.len());
            prop_assert_eq!(skip_class(&hay, &class), naive);
        }
    }
}
