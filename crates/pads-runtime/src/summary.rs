//! Small-space statistical summaries: streaming histograms and quantile
//! estimates.
//!
//! §9 of the paper plans to "augment the statistical profiling library with
//! functions that use randomized and approximate techniques to create small
//! summaries such as histograms … or quantile summaries" (citing
//! Gilbert et al. and Guha et al.). This module provides both in bounded
//! memory: an equi-width [`Histogram`] that doubles its range as values
//! arrive, and reservoir-sampling [`Quantiles`].

/// A fixed-bucket, equi-width streaming histogram whose range grows by
/// doubling (merging adjacent buckets), so memory stays constant while the
/// data's range is unknown in advance.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    count: u64,
    started: bool,
}

impl Histogram {
    /// Creates a histogram with `nbuckets` buckets (at least 2, rounded up
    /// to even so halving merges cleanly).
    pub fn new(nbuckets: usize) -> Histogram {
        let n = nbuckets.max(2).next_multiple_of(2);
        Histogram { lo: 0.0, width: 1.0, buckets: vec![0; n], count: 0, started: false }
    }

    fn span(&self) -> f64 {
        self.width * self.buckets.len() as f64
    }

    /// Adds one observation.
    pub fn add(&mut self, v: f64) {
        self.add_n(v, 1);
    }

    /// Adds `n` observations of the same value in one bucket update —
    /// the batched-latency hot path (`metrics::LATENCY_BATCH` identical
    /// samples per clock read) without `n` bucket searches. Equivalent
    /// to calling [`add`](Self::add) `n` times.
    pub fn add_n(&mut self, v: f64, n: u64) {
        if !v.is_finite() || n == 0 {
            return;
        }
        self.count += n;
        if !self.started {
            self.started = true;
            self.lo = v.floor();
            self.width = 1.0;
        }
        // Grow right: double the width, merging pairs into the left half.
        while v >= self.lo + self.span() {
            self.merge_right();
        }
        // Grow left: extend the range downward, merging pairs into the
        // right half.
        while v < self.lo {
            self.merge_left();
        }
        let idx = ((v - self.lo) / self.width) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += n;
    }

    fn merge_right(&mut self) {
        let n = self.buckets.len();
        for i in 0..n / 2 {
            self.buckets[i] = self.buckets[2 * i] + self.buckets[2 * i + 1];
        }
        for b in &mut self.buckets[n / 2..] {
            *b = 0;
        }
        self.width *= 2.0;
    }

    fn merge_left(&mut self) {
        let n = self.buckets.len();
        for i in (0..n / 2).rev() {
            self.buckets[n / 2 + i] = self.buckets[2 * i] + self.buckets[2 * i + 1];
        }
        for b in &mut self.buckets[..n / 2] {
            *b = 0;
        }
        self.lo -= self.span();
        self.width *= 2.0;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The bucket boundaries and counts: `(bucket_lo, bucket_hi, count)`.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = self.lo + self.width * i as f64;
                (lo, lo + self.width, c)
            })
            .collect()
    }

    /// Renders a compact text histogram (non-empty buckets only).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (lo, hi, c) in self.buckets() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat((c * 40 / peak).max(1) as usize);
            let _ = writeln!(out, "[{lo:>12.0}, {hi:>12.0}) {c:>8} {bar}");
        }
        out
    }
}

/// Reservoir-sampling quantile estimator: a uniform sample of bounded size
/// over an unbounded stream, queried for arbitrary quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantiles {
    sample: Vec<f64>,
    cap: usize,
    seen: u64,
    state: u64,
}

impl Quantiles {
    /// Creates an estimator keeping at most `cap` samples, seeded
    /// deterministically.
    pub fn new(cap: usize, seed: u64) -> Quantiles {
        Quantiles { sample: Vec::new(), cap: cap.max(1), seen: 0, state: seed | 1 }
    }

    fn next_rand(&mut self) -> u64 {
        // splitmix64: small, fast, good enough for reservoir positions.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Adds one observation (classic Algorithm R).
    pub fn add(&mut self, v: f64) {
        self.add_n(v, 1);
    }

    /// Adds `n` observations of the same value. While the reservoir is
    /// filling, this is exactly `n` calls to [`add`](Self::add); once
    /// full, one replacement draw stands in for the run — each slot's
    /// inclusion probability still shrinks as `cap/seen`, and since the
    /// `n` values are identical (one batched clock read), which of the
    /// run survives is indistinguishable. One draw per batch instead of
    /// [`LATENCY_BATCH`](crate::metrics) is what keeps record-close off
    /// the metrics-overhead budget.
    pub fn add_n(&mut self, v: f64, n: u64) {
        if !v.is_finite() || n == 0 {
            return;
        }
        let mut left = n;
        while left > 0 && self.sample.len() < self.cap {
            self.sample.push(v);
            self.seen += 1;
            left -= 1;
        }
        if left > 0 {
            self.seen += left;
            let j = self.next_rand() % self.seen;
            if (j as usize) < self.cap {
                self.sample[j as usize] = v;
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sample.is_empty() {
            return None;
        }
        let mut s = self.sample.clone();
        s.sort_by(f64::total_cmp);
        let pos = (q.clamp(0.0, 1.0) * (s.len() - 1) as f64).round() as usize;
        Some(s[pos])
    }

    /// The conventional five-number summary (min, p25, median, p75, max).
    pub fn five_numbers(&self) -> Option<[f64; 5]> {
        Some([
            self.quantile(0.0)?,
            self.quantile(0.25)?,
            self.quantile(0.5)?,
            self.quantile(0.75)?,
            self.quantile(1.0)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_everything() {
        let mut h = Histogram::new(8);
        for v in 0..1000 {
            h.add(v as f64);
        }
        assert_eq!(h.count(), 1000);
        let total: u64 = h.buckets().iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn histogram_expands_right_and_left() {
        let mut h = Histogram::new(4);
        h.add(10.0);
        h.add(1_000_000.0); // forces right expansion
        h.add(-500.0); // forces left expansion
        assert_eq!(h.count(), 3);
        let total: u64 = h.buckets().iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 3);
        let bs = h.buckets();
        assert!(bs.first().unwrap().0 <= -500.0);
        assert!(bs.last().unwrap().1 > 1_000_000.0);
    }

    #[test]
    fn histogram_approximates_a_uniform_distribution() {
        let mut h = Histogram::new(16);
        for i in 0..16_000 {
            h.add((i % 1600) as f64);
        }
        // Every non-empty bucket should hold roughly count/nonempty.
        let nonempty: Vec<u64> =
            h.buckets().iter().map(|(_, _, c)| *c).filter(|&c| c > 0).collect();
        let expect = 16_000 / nonempty.len() as u64;
        for c in nonempty {
            assert!(c > expect / 4 && c < expect * 4, "c = {c}, expect ~{expect}");
        }
    }

    #[test]
    fn quantiles_exact_when_under_capacity() {
        let mut q = Quantiles::new(100, 42);
        for v in 1..=99 {
            q.add(v as f64);
        }
        assert_eq!(q.quantile(0.5), Some(50.0));
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(99.0));
    }

    #[test]
    fn quantiles_approximate_over_large_streams() {
        let mut q = Quantiles::new(512, 7);
        for v in 0..100_000 {
            q.add(v as f64);
        }
        let med = q.quantile(0.5).unwrap();
        assert!((med - 50_000.0).abs() < 10_000.0, "median ~{med}");
        let p95 = q.quantile(0.95).unwrap();
        assert!(p95 > 85_000.0, "p95 ~{p95}");
        assert_eq!(q.count(), 100_000);
    }

    #[test]
    fn five_number_summary() {
        let mut q = Quantiles::new(10, 1);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            q.add(v);
        }
        assert_eq!(q.five_numbers(), Some([1.0, 2.0, 3.0, 4.0, 5.0]));
        let empty = Quantiles::new(10, 1);
        assert_eq!(empty.five_numbers(), None);
    }

    #[test]
    fn summaries_ignore_non_finite_values() {
        let mut h = Histogram::new(4);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.count(), 0);
        let mut q = Quantiles::new(4, 3);
        q.add(f64::NAN);
        assert_eq!(q.count(), 0);
    }

    #[test]
    fn render_is_nonempty_for_nonempty_histograms() {
        let mut h = Histogram::new(4);
        for v in [1.0, 2.0, 2.5, 9.0] {
            h.add(v);
        }
        let text = h.render();
        assert!(text.contains('#'), "{text}");
    }
}
