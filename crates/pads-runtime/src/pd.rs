//! Parse descriptors: the error side of every parse result.
//!
//! A PADS parse returns a *pair*: the in-memory representation and a parse
//! descriptor that mirrors its structure (paper §1, §4, Figure 6). The
//! descriptor records, per node, the parse state, the number of errors in
//! the subtree, the first error's code, and its location — enough for an
//! application to halt, discard, or repair in whatever way it needs.

use crate::error::{ErrorCode, Loc, ParseState};

/// Structure-specific payload of a [`ParseDesc`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PdKind {
    /// Base types, enums, literals.
    #[default]
    Base,
    /// One descriptor per named field, in declaration order.
    Struct {
        /// `(field name, descriptor)` pairs.
        fields: Vec<(String, ParseDesc)>,
    },
    /// Descriptor of the branch that was taken.
    Union {
        /// Name of the branch taken.
        branch: String,
        /// Descriptor of the taken branch's value.
        pd: Box<ParseDesc>,
    },
    /// One descriptor per element, plus element-error aggregates
    /// (`neerr` / `firstError` in the paper's generated XML Schema).
    Array {
        /// Per-element descriptors.
        elts: Vec<ParseDesc>,
        /// Number of elements containing errors.
        neerr: u32,
        /// Index of the first erroneous element.
        first_error: Option<usize>,
    },
    /// `Popt`: descriptor of the present value, if any.
    Opt {
        /// Descriptor for the value when present.
        inner: Option<Box<ParseDesc>>,
    },
    /// Descriptor of the underlying type of a `Ptypedef`.
    Typedef {
        /// Underlying descriptor.
        inner: Box<ParseDesc>,
    },
}

/// A parse descriptor node (`*_pd` in the paper's generated C).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParseDesc {
    /// Overall state of this node's parse.
    pub state: ParseState,
    /// Total number of errors detected in this subtree.
    pub nerr: u32,
    /// Code of the first error detected in this subtree.
    pub err_code: ErrorCode,
    /// Location of the first error.
    pub loc: Option<Loc>,
    /// Structure-shaped children.
    pub kind: PdKind,
}

impl ParseDesc {
    /// A clean descriptor for a leaf value.
    pub fn ok() -> ParseDesc {
        ParseDesc::default()
    }

    /// A leaf descriptor carrying one error.
    pub fn error(code: ErrorCode, loc: Loc) -> ParseDesc {
        ParseDesc {
            state: ParseState::Ok,
            nerr: 1,
            err_code: code,
            loc: Some(loc),
            kind: PdKind::Base,
        }
    }

    /// Whether this subtree is error-free.
    pub fn is_ok(&self) -> bool {
        self.nerr == 0
    }

    /// Records an error on this node (first error wins for code/location).
    pub fn add_error(&mut self, code: ErrorCode, loc: Loc) {
        self.nerr += 1;
        if self.err_code == ErrorCode::Good {
            self.err_code = code;
            self.loc = Some(loc);
        }
    }

    /// Records a source-level condition (budget exhaustion, trailing data)
    /// that must stay visible at the root of the descriptor tree: unlike
    /// [`add_error`](ParseDesc::add_error), the code also replaces the
    /// synthetic `NestedError` placeholder so [`errors`](ParseDesc::errors)
    /// reports it even when nested components failed first.
    pub fn add_root_error(&mut self, code: ErrorCode, loc: Loc) {
        self.nerr += 1;
        if matches!(self.err_code, ErrorCode::Good | ErrorCode::NestedError) {
            self.err_code = code;
            self.loc = Some(loc);
        }
    }

    /// Records a panic-mode resynchronisation that skipped the byte span
    /// `loc`. The node is marked [`ParseState::Panic`] and the skip is kept
    /// observable in [`errors`](ParseDesc::errors) even when the node
    /// already carries other errors: struct descriptors get a synthetic
    /// `(panic)` child, other shapes promote `PanicSkipped` over the
    /// synthetic `NestedError` placeholder.
    pub fn note_panic_skip(&mut self, loc: Loc) {
        self.state = ParseState::Panic;
        self.nerr += 1;
        if let PdKind::Struct { fields } = &mut self.kind {
            fields.push(("(panic)".to_owned(), ParseDesc::error(ErrorCode::PanicSkipped, loc)));
            if self.err_code == ErrorCode::Good {
                self.err_code = ErrorCode::NestedError;
                self.loc = Some(loc);
            }
        } else if matches!(self.err_code, ErrorCode::Good | ErrorCode::NestedError) {
            self.err_code = ErrorCode::PanicSkipped;
            self.loc = Some(loc);
        }
    }

    /// Folds a child's errors into this node. The child keeps its own
    /// detail; the parent's `nerr` aggregates and its first error becomes
    /// `NestedError` if it had none of its own.
    pub fn absorb(&mut self, child: &ParseDesc) {
        if child.nerr > 0 {
            self.nerr += child.nerr;
            if self.err_code == ErrorCode::Good {
                self.err_code = ErrorCode::NestedError;
                self.loc = child.loc;
            }
        }
        if child.state != ParseState::Ok && self.state == ParseState::Ok {
            self.state = child.state;
        }
    }

    /// Walks the subtree yielding `(path, code, loc)` for every node whose
    /// own error code is set (excluding the synthetic `NestedError`).
    pub fn errors(&self) -> Vec<(String, ErrorCode, Option<Loc>)> {
        let mut out = Vec::new();
        fn go(pd: &ParseDesc, path: &str, out: &mut Vec<(String, ErrorCode, Option<Loc>)>) {
            if pd.err_code.is_error() && pd.err_code != ErrorCode::NestedError {
                out.push((path.to_owned(), pd.err_code, pd.loc));
            }
            let join = |name: &str| {
                if path.is_empty() {
                    name.to_owned()
                } else {
                    format!("{path}.{name}")
                }
            };
            match &pd.kind {
                PdKind::Base => {}
                PdKind::Struct { fields } => {
                    for (name, child) in fields {
                        go(child, &join(name), out);
                    }
                }
                PdKind::Union { branch, pd } => go(pd, &join(branch), out),
                PdKind::Array { elts, .. } => {
                    for (i, child) in elts.iter().enumerate() {
                        go(child, &join(&format!("[{i}]")), out);
                    }
                }
                PdKind::Opt { inner } => {
                    if let Some(inner) = inner {
                        go(inner, path, out);
                    }
                }
                PdKind::Typedef { inner } => go(inner, path, out),
            }
        }
        go(self, "", &mut out);
        out
    }

    /// Walks the subtree calling `f` with every error code [`errors`]
    /// would report, in the same order — but without building path
    /// strings or collecting. This is the metrics hot path's view of a
    /// closed record: per-code counters need the codes only, so the walk
    /// allocates nothing.
    ///
    /// [`errors`]: ParseDesc::errors
    pub fn visit_error_codes(&self, f: &mut dyn FnMut(ErrorCode)) {
        if self.err_code.is_error() && self.err_code != ErrorCode::NestedError {
            f(self.err_code);
        }
        match &self.kind {
            PdKind::Base => {}
            PdKind::Struct { fields } => {
                for (_, child) in fields {
                    child.visit_error_codes(f);
                }
            }
            PdKind::Union { pd, .. } => pd.visit_error_codes(f),
            PdKind::Array { elts, .. } => {
                for child in elts {
                    child.visit_error_codes(f);
                }
            }
            PdKind::Opt { inner } => {
                if let Some(inner) = inner {
                    inner.visit_error_codes(f);
                }
            }
            PdKind::Typedef { inner } => inner.visit_error_codes(f),
        }
    }

    /// Drops per-node error detail, flattening this descriptor to a leaf
    /// carrying only the aggregates (`state`, `nerr`, first error, its
    /// location). Used when a [`RecoveryPolicy`](crate::recovery::RecoveryPolicy)
    /// caps per-record error detail or degrades to best-effort parsing:
    /// error *counts* stay truthful while descriptor memory becomes O(1).
    ///
    /// When the first error is the synthetic `NestedError`, the first real
    /// child error is promoted first so the flattened node still names a
    /// concrete problem.
    pub fn truncate_detail(&mut self) {
        if self.err_code == ErrorCode::NestedError {
            if let Some((_, code, loc)) = self.errors().into_iter().next() {
                self.err_code = code;
                self.loc = loc;
            }
        }
        self.kind = PdKind::Base;
    }

    /// Shifts every location in the subtree by `offset_delta` bytes and
    /// `record_delta` records. Used by the parallel engine to translate
    /// shard-local coordinates (each worker parses its shard as if it
    /// started at offset 0, record 0) back into whole-source coordinates
    /// during the deterministic merge. Record-relative byte offsets are
    /// unchanged: a shard boundary is always a record boundary.
    pub fn rebase(&mut self, offset_delta: usize, record_delta: usize) {
        let shift = |pos: &mut crate::error::Pos| {
            pos.offset += offset_delta;
            pos.record += record_delta;
        };
        if let Some(loc) = &mut self.loc {
            shift(&mut loc.begin);
            shift(&mut loc.end);
        }
        match &mut self.kind {
            PdKind::Base => {}
            PdKind::Struct { fields } => {
                for (_, child) in fields {
                    child.rebase(offset_delta, record_delta);
                }
            }
            PdKind::Union { pd, .. } => pd.rebase(offset_delta, record_delta),
            PdKind::Array { elts, .. } => {
                for child in elts {
                    child.rebase(offset_delta, record_delta);
                }
            }
            PdKind::Opt { inner } => {
                if let Some(inner) = inner {
                    inner.rebase(offset_delta, record_delta);
                }
            }
            PdKind::Typedef { inner } => inner.rebase(offset_delta, record_delta),
        }
    }

    /// Looks up the descriptor of a named struct field.
    pub fn field(&self, name: &str) -> Option<&ParseDesc> {
        match &self.kind {
            PdKind::Struct { fields } => {
                fields.iter().find(|(n, _)| n == name).map(|(_, pd)| pd)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for ParseDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pstate={} nerr={} errCode={}", self.state, self.nerr, self.err_code)?;
        if let Some(loc) = self.loc {
            write!(f, " loc={loc}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Pos;

    fn loc(offset: usize) -> Loc {
        Loc::at(Pos { offset, record: 0, byte: offset })
    }

    #[test]
    fn first_error_wins() {
        let mut pd = ParseDesc::ok();
        pd.add_error(ErrorCode::LitMismatch, loc(3));
        pd.add_error(ErrorCode::RangeError, loc(9));
        assert_eq!(pd.nerr, 2);
        assert_eq!(pd.err_code, ErrorCode::LitMismatch);
        assert_eq!(pd.loc, Some(loc(3)));
    }

    #[test]
    fn absorb_aggregates_and_marks_nested() {
        let mut parent = ParseDesc::ok();
        let child = ParseDesc::error(ErrorCode::RangeError, loc(5));
        parent.absorb(&child);
        assert_eq!(parent.nerr, 1);
        assert_eq!(parent.err_code, ErrorCode::NestedError);
        assert_eq!(parent.loc, Some(loc(5)));
    }

    #[test]
    fn absorb_propagates_state() {
        let mut parent = ParseDesc::ok();
        let mut child = ParseDesc::ok();
        child.state = ParseState::Panic;
        parent.absorb(&child);
        assert_eq!(parent.state, ParseState::Panic);
    }

    #[test]
    fn truncate_detail_flattens_and_promotes_first_real_error() {
        let bad = ParseDesc::error(ErrorCode::RangeError, loc(7));
        let mut pd = ParseDesc {
            nerr: 2,
            err_code: ErrorCode::NestedError,
            loc: Some(loc(7)),
            state: ParseState::Partial,
            kind: PdKind::Struct {
                fields: vec![
                    ("a".into(), bad),
                    ("b".into(), ParseDesc::error(ErrorCode::LitMismatch, loc(9))),
                ],
            },
        };
        pd.truncate_detail();
        assert_eq!(pd.kind, PdKind::Base);
        assert_eq!(pd.nerr, 2);
        assert_eq!(pd.err_code, ErrorCode::RangeError);
        assert_eq!(pd.loc, Some(loc(7)));
        assert_eq!(pd.state, ParseState::Partial);
    }

    #[test]
    fn note_panic_skip_stays_observable_on_structs() {
        let mut pd = ParseDesc {
            nerr: 1,
            err_code: ErrorCode::LitMismatch,
            loc: Some(loc(2)),
            state: ParseState::Ok,
            kind: PdKind::Struct {
                fields: vec![("a".into(), ParseDesc::ok())],
            },
        };
        pd.note_panic_skip(Loc::new(loc(4).begin, loc(9).begin));
        assert_eq!(pd.state, ParseState::Panic);
        assert_eq!(pd.nerr, 2);
        // First error wins on the node itself…
        assert_eq!(pd.err_code, ErrorCode::LitMismatch);
        // …but the skipped span is still reported by the error walk.
        let errs = pd.errors();
        assert!(errs
            .iter()
            .any(|(path, code, _)| path == "(panic)" && *code == ErrorCode::PanicSkipped));
    }

    #[test]
    fn note_panic_skip_promotes_on_leaves() {
        let mut pd = ParseDesc::ok();
        pd.note_panic_skip(loc(3));
        assert_eq!(pd.state, ParseState::Panic);
        assert_eq!(pd.nerr, 1);
        assert_eq!(pd.err_code, ErrorCode::PanicSkipped);
        assert_eq!(pd.loc, Some(loc(3)));
    }

    #[test]
    fn error_walk_builds_paths() {
        let bad = ParseDesc::error(ErrorCode::RangeError, loc(7));
        let pd = ParseDesc {
            nerr: 1,
            err_code: ErrorCode::NestedError,
            loc: Some(loc(7)),
            state: ParseState::Ok,
            kind: PdKind::Struct {
                fields: vec![
                    ("h".into(), ParseDesc::ok()),
                    (
                        "events".into(),
                        ParseDesc {
                            nerr: 1,
                            err_code: ErrorCode::NestedError,
                            loc: Some(loc(7)),
                            state: ParseState::Ok,
                            kind: PdKind::Array { elts: vec![ParseDesc::ok(), bad], neerr: 1, first_error: Some(1) },
                        },
                    ),
                ],
            },
        };
        let errs = pd.errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].0, "events.[1]");
        assert_eq!(errs[0].1, ErrorCode::RangeError);
    }
}
