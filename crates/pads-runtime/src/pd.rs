//! Parse descriptors: the error side of every parse result.
//!
//! A PADS parse returns a *pair*: the in-memory representation and a parse
//! descriptor that mirrors its structure (paper §1, §4, Figure 6). The
//! descriptor records, per node, the parse state, the number of errors in
//! the subtree, the first error's code, and its location — enough for an
//! application to halt, discard, or repair in whatever way it needs.

use crate::error::{ErrorCode, Loc, ParseState};
use crate::name::Name;

/// Structure-specific payload of a [`ParseDesc`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PdKind {
    /// Base types, enums, literals.
    #[default]
    Base,
    /// One descriptor per named field, in declaration order.
    Struct {
        /// `(field name, descriptor)` pairs.
        fields: Vec<(Name, ParseDesc)>,
    },
    /// Descriptor of the branch that was taken.
    Union {
        /// Name of the branch taken.
        branch: Name,
        /// Descriptor of the taken branch's value; `None` when the branch
        /// parsed clean (the descriptor would be [`ParseDesc::CLEAN`]), so
        /// the hot path never boxes an all-ok child.
        pd: Option<Box<ParseDesc>>,
    },
    /// One descriptor per element, plus element-error aggregates
    /// (`neerr` / `firstError` in the paper's generated XML Schema).
    Array {
        /// Per-element descriptors.
        elts: Vec<ParseDesc>,
        /// Number of elements containing errors.
        neerr: u32,
        /// Index of the first erroneous element.
        first_error: Option<usize>,
    },
    /// `Popt`: descriptor of the present value, if any.
    Opt {
        /// Descriptor for the value when present.
        inner: Option<Box<ParseDesc>>,
    },
    /// Descriptor of the underlying type of a `Ptypedef`; `None` when the
    /// underlying parse was clean (same elision as `Union`).
    Typedef {
        /// Underlying descriptor.
        inner: Option<Box<ParseDesc>>,
    },
}

impl PdKind {
    /// A union descriptor payload; a trivially-clean branch descriptor is
    /// elided to `None` so both engines produce identical (and unboxed)
    /// clean-path descriptors.
    pub fn union(branch: impl Into<Name>, pd: ParseDesc) -> PdKind {
        PdKind::Union { branch: branch.into(), pd: boxed_unless_clean(pd) }
    }

    /// A union descriptor payload with a clean (elided) branch descriptor.
    pub fn union_ok(branch: impl Into<Name>) -> PdKind {
        PdKind::Union { branch: branch.into(), pd: None }
    }

    /// A typedef descriptor payload with the same clean-elision rule as
    /// [`PdKind::union`].
    pub fn typedef(inner: ParseDesc) -> PdKind {
        PdKind::Typedef { inner: boxed_unless_clean(inner) }
    }

    /// A present-optional descriptor payload. A trivially-clean inner
    /// descriptor is elided — consumers must use the *value* to decide
    /// presence (`Value::Opt`), never `inner.is_some()`.
    pub fn opt(inner: ParseDesc) -> PdKind {
        PdKind::Opt { inner: boxed_unless_clean(inner) }
    }
}

/// Boxes `pd` unless it is trivially clean ([`ParseDesc::is_clean`]).
fn boxed_unless_clean(pd: ParseDesc) -> Option<Box<ParseDesc>> {
    if pd.is_clean() {
        None
    } else {
        Some(Box::new(pd))
    }
}

/// Builder for array element descriptors with clean-elision: while every
/// element is clean nothing is stored (an all-clean array descriptor has
/// empty `elts`, the dominant case, costing zero allocations), and once
/// any element carries an error the vector is backfilled with
/// [`ParseDesc::CLEAN`] so positional `elts.get(i)` lookups still line up
/// with the value array. Stored clean elements are normalised to `CLEAN`,
/// which keeps the representation canonical across both engines.
#[derive(Debug, Default)]
pub struct SparseElts {
    pds: Vec<ParseDesc>,
    elided: usize,
}

impl SparseElts {
    /// An empty builder.
    pub fn new() -> SparseElts {
        SparseElts::default()
    }

    /// Appends the next element's descriptor.
    pub fn push(&mut self, pd: ParseDesc) {
        if pd.is_clean() {
            if self.pds.is_empty() {
                self.elided += 1;
            } else {
                self.pds.push(ParseDesc::CLEAN);
            }
        } else {
            if self.pds.is_empty() && self.elided > 0 {
                self.pds.reserve(self.elided + 1);
                self.pds.resize(self.elided, ParseDesc::CLEAN);
            }
            self.pds.push(pd);
        }
    }

    /// The per-element descriptors: empty when every element was clean.
    pub fn finish(self) -> Vec<ParseDesc> {
        self.pds
    }
}

/// A parse descriptor node (`*_pd` in the paper's generated C).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParseDesc {
    /// Overall state of this node's parse.
    pub state: ParseState,
    /// Total number of errors detected in this subtree.
    pub nerr: u32,
    /// Code of the first error detected in this subtree.
    pub err_code: ErrorCode,
    /// Location of the first error.
    pub loc: Option<Loc>,
    /// Structure-shaped children.
    pub kind: PdKind,
}

impl ParseDesc {
    /// The canonical clean leaf descriptor. Clean-elided `Union`/`Typedef`
    /// children (`pd: None`) stand for exactly this value.
    pub const CLEAN: ParseDesc = ParseDesc {
        state: ParseState::Ok,
        nerr: 0,
        err_code: ErrorCode::Good,
        loc: None,
        kind: PdKind::Base,
    };

    /// A `'static` reference to [`ParseDesc::CLEAN`], for consumers that
    /// need a descriptor reference where an elided child has none.
    pub fn clean_ref() -> &'static ParseDesc {
        static CLEAN: ParseDesc = ParseDesc::CLEAN;
        &CLEAN
    }

    /// A clean descriptor for a leaf value.
    pub fn ok() -> ParseDesc {
        ParseDesc::default()
    }

    /// A leaf descriptor carrying one error.
    pub fn error(code: ErrorCode, loc: Loc) -> ParseDesc {
        ParseDesc {
            state: ParseState::Ok,
            nerr: 1,
            err_code: code,
            loc: Some(loc),
            kind: PdKind::Base,
        }
    }

    /// Whether this subtree is error-free.
    pub fn is_ok(&self) -> bool {
        self.nerr == 0
    }

    /// Whether this descriptor is *trivially* clean — no errors, `Ok`
    /// state, no location, and no structure worth keeping (`Base`, a
    /// sparse `Struct` with no error children, or a `Typedef` whose inner
    /// descriptor was itself elided). This is the predicate behind every
    /// clean-elision site: a `None`/absent child descriptor stands for
    /// exactly such a value.
    pub fn is_clean(&self) -> bool {
        let clean_kind = match &self.kind {
            PdKind::Base => true,
            PdKind::Struct { fields } => fields.is_empty(),
            PdKind::Typedef { inner } => inner.is_none(),
            _ => false,
        };
        clean_kind
            && self.nerr == 0
            && self.state == ParseState::Ok
            && self.err_code == ErrorCode::Good
            && self.loc.is_none()
    }

    /// Records an error on this node (first error wins for code/location).
    pub fn add_error(&mut self, code: ErrorCode, loc: Loc) {
        self.nerr += 1;
        if self.err_code == ErrorCode::Good {
            self.err_code = code;
            self.loc = Some(loc);
        }
    }

    /// Records a source-level condition (budget exhaustion, trailing data)
    /// that must stay visible at the root of the descriptor tree: unlike
    /// [`add_error`](ParseDesc::add_error), the code also replaces the
    /// synthetic `NestedError` placeholder so [`errors`](ParseDesc::errors)
    /// reports it even when nested components failed first.
    pub fn add_root_error(&mut self, code: ErrorCode, loc: Loc) {
        self.nerr += 1;
        if matches!(self.err_code, ErrorCode::Good | ErrorCode::NestedError) {
            self.err_code = code;
            self.loc = Some(loc);
        }
    }

    /// Records a panic-mode resynchronisation that skipped the byte span
    /// `loc`. The node is marked [`ParseState::Panic`] and the skip is kept
    /// observable in [`errors`](ParseDesc::errors) even when the node
    /// already carries other errors: struct descriptors get a synthetic
    /// `(panic)` child, other shapes promote `PanicSkipped` over the
    /// synthetic `NestedError` placeholder.
    pub fn note_panic_skip(&mut self, loc: Loc) {
        self.state = ParseState::Panic;
        self.nerr += 1;
        if let PdKind::Struct { fields } = &mut self.kind {
            fields.push((Name::from_static("(panic)"), ParseDesc::error(ErrorCode::PanicSkipped, loc)));
            if self.err_code == ErrorCode::Good {
                self.err_code = ErrorCode::NestedError;
                self.loc = Some(loc);
            }
        } else if matches!(self.err_code, ErrorCode::Good | ErrorCode::NestedError) {
            self.err_code = ErrorCode::PanicSkipped;
            self.loc = Some(loc);
        }
    }

    /// Folds a child's errors into this node. The child keeps its own
    /// detail; the parent's `nerr` aggregates and its first error becomes
    /// `NestedError` if it had none of its own.
    pub fn absorb(&mut self, child: &ParseDesc) {
        if child.nerr > 0 {
            self.nerr += child.nerr;
            if self.err_code == ErrorCode::Good {
                self.err_code = ErrorCode::NestedError;
                self.loc = child.loc;
            }
        }
        if child.state != ParseState::Ok && self.state == ParseState::Ok {
            self.state = child.state;
        }
    }

    /// Walks the subtree yielding `(path, code, loc)` for every node whose
    /// own error code is set (excluding the synthetic `NestedError`).
    pub fn errors(&self) -> Vec<(String, ErrorCode, Option<Loc>)> {
        let mut out = Vec::new();
        fn go(pd: &ParseDesc, path: &str, out: &mut Vec<(String, ErrorCode, Option<Loc>)>) {
            if pd.err_code.is_error() && pd.err_code != ErrorCode::NestedError {
                out.push((path.to_owned(), pd.err_code, pd.loc));
            }
            let join = |name: &str| {
                if path.is_empty() {
                    name.to_owned()
                } else {
                    format!("{path}.{name}")
                }
            };
            match &pd.kind {
                PdKind::Base => {}
                PdKind::Struct { fields } => {
                    for (name, child) in fields {
                        go(child, &join(name), out);
                    }
                }
                PdKind::Union { branch, pd } => {
                    if let Some(pd) = pd {
                        go(pd, &join(branch), out);
                    }
                }
                PdKind::Array { elts, .. } => {
                    for (i, child) in elts.iter().enumerate() {
                        go(child, &join(&format!("[{i}]")), out);
                    }
                }
                PdKind::Opt { inner } => {
                    if let Some(inner) = inner {
                        go(inner, path, out);
                    }
                }
                PdKind::Typedef { inner } => {
                    if let Some(inner) = inner {
                        go(inner, path, out);
                    }
                }
            }
        }
        go(self, "", &mut out);
        out
    }

    /// Walks the subtree calling `f` with every error code [`errors`]
    /// would report, in the same order — but without building path
    /// strings or collecting. This is the metrics hot path's view of a
    /// closed record: per-code counters need the codes only, so the walk
    /// allocates nothing.
    ///
    /// [`errors`]: ParseDesc::errors
    pub fn visit_error_codes(&self, f: &mut dyn FnMut(ErrorCode)) {
        if self.err_code.is_error() && self.err_code != ErrorCode::NestedError {
            f(self.err_code);
        }
        match &self.kind {
            PdKind::Base => {}
            PdKind::Struct { fields } => {
                for (_, child) in fields {
                    child.visit_error_codes(f);
                }
            }
            PdKind::Union { pd, .. } => {
                if let Some(pd) = pd {
                    pd.visit_error_codes(f);
                }
            }
            PdKind::Array { elts, .. } => {
                for child in elts {
                    child.visit_error_codes(f);
                }
            }
            PdKind::Opt { inner } => {
                if let Some(inner) = inner {
                    inner.visit_error_codes(f);
                }
            }
            PdKind::Typedef { inner } => {
                if let Some(inner) = inner {
                    inner.visit_error_codes(f);
                }
            }
        }
    }

    /// Drops per-node error detail, flattening this descriptor to a leaf
    /// carrying only the aggregates (`state`, `nerr`, first error, its
    /// location). Used when a [`RecoveryPolicy`](crate::recovery::RecoveryPolicy)
    /// caps per-record error detail or degrades to best-effort parsing:
    /// error *counts* stay truthful while descriptor memory becomes O(1).
    ///
    /// When the first error is the synthetic `NestedError`, the first real
    /// child error is promoted first so the flattened node still names a
    /// concrete problem.
    pub fn truncate_detail(&mut self) {
        if self.err_code == ErrorCode::NestedError {
            if let Some((_, code, loc)) = self.errors().into_iter().next() {
                self.err_code = code;
                self.loc = loc;
            }
        }
        self.kind = PdKind::Base;
    }

    /// Shifts every location in the subtree by `offset_delta` bytes and
    /// `record_delta` records. Used by the parallel engine to translate
    /// shard-local coordinates (each worker parses its shard as if it
    /// started at offset 0, record 0) back into whole-source coordinates
    /// during the deterministic merge. Record-relative byte offsets are
    /// unchanged: a shard boundary is always a record boundary.
    pub fn rebase(&mut self, offset_delta: usize, record_delta: usize) {
        let shift = |pos: &mut crate::error::Pos| {
            pos.offset += offset_delta;
            pos.record += record_delta;
        };
        if let Some(loc) = &mut self.loc {
            shift(&mut loc.begin);
            shift(&mut loc.end);
        }
        match &mut self.kind {
            PdKind::Base => {}
            PdKind::Struct { fields } => {
                for (_, child) in fields {
                    child.rebase(offset_delta, record_delta);
                }
            }
            PdKind::Union { pd, .. } => {
                if let Some(pd) = pd {
                    pd.rebase(offset_delta, record_delta);
                }
            }
            PdKind::Array { elts, .. } => {
                for child in elts {
                    child.rebase(offset_delta, record_delta);
                }
            }
            PdKind::Opt { inner } => {
                if let Some(inner) = inner {
                    inner.rebase(offset_delta, record_delta);
                }
            }
            PdKind::Typedef { inner } => {
                if let Some(inner) = inner {
                    inner.rebase(offset_delta, record_delta);
                }
            }
        }
    }

    /// Looks up the descriptor of a named struct field.
    pub fn field(&self, name: &str) -> Option<&ParseDesc> {
        match &self.kind {
            PdKind::Struct { fields } => {
                fields.iter().find(|(n, _)| n == name).map(|(_, pd)| pd)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for ParseDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pstate={} nerr={} errCode={}", self.state, self.nerr, self.err_code)?;
        if let Some(loc) = self.loc {
            write!(f, " loc={loc}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Pos;

    fn loc(offset: usize) -> Loc {
        Loc::at(Pos { offset, record: 0, byte: offset })
    }

    #[test]
    fn first_error_wins() {
        let mut pd = ParseDesc::ok();
        pd.add_error(ErrorCode::LitMismatch, loc(3));
        pd.add_error(ErrorCode::RangeError, loc(9));
        assert_eq!(pd.nerr, 2);
        assert_eq!(pd.err_code, ErrorCode::LitMismatch);
        assert_eq!(pd.loc, Some(loc(3)));
    }

    #[test]
    fn absorb_aggregates_and_marks_nested() {
        let mut parent = ParseDesc::ok();
        let child = ParseDesc::error(ErrorCode::RangeError, loc(5));
        parent.absorb(&child);
        assert_eq!(parent.nerr, 1);
        assert_eq!(parent.err_code, ErrorCode::NestedError);
        assert_eq!(parent.loc, Some(loc(5)));
    }

    #[test]
    fn absorb_propagates_state() {
        let mut parent = ParseDesc::ok();
        let mut child = ParseDesc::ok();
        child.state = ParseState::Panic;
        parent.absorb(&child);
        assert_eq!(parent.state, ParseState::Panic);
    }

    #[test]
    fn truncate_detail_flattens_and_promotes_first_real_error() {
        let bad = ParseDesc::error(ErrorCode::RangeError, loc(7));
        let mut pd = ParseDesc {
            nerr: 2,
            err_code: ErrorCode::NestedError,
            loc: Some(loc(7)),
            state: ParseState::Partial,
            kind: PdKind::Struct {
                fields: vec![
                    ("a".into(), bad),
                    ("b".into(), ParseDesc::error(ErrorCode::LitMismatch, loc(9))),
                ],
            },
        };
        pd.truncate_detail();
        assert_eq!(pd.kind, PdKind::Base);
        assert_eq!(pd.nerr, 2);
        assert_eq!(pd.err_code, ErrorCode::RangeError);
        assert_eq!(pd.loc, Some(loc(7)));
        assert_eq!(pd.state, ParseState::Partial);
    }

    #[test]
    fn note_panic_skip_stays_observable_on_structs() {
        let mut pd = ParseDesc {
            nerr: 1,
            err_code: ErrorCode::LitMismatch,
            loc: Some(loc(2)),
            state: ParseState::Ok,
            kind: PdKind::Struct {
                fields: vec![("a".into(), ParseDesc::ok())],
            },
        };
        pd.note_panic_skip(Loc::new(loc(4).begin, loc(9).begin));
        assert_eq!(pd.state, ParseState::Panic);
        assert_eq!(pd.nerr, 2);
        // First error wins on the node itself…
        assert_eq!(pd.err_code, ErrorCode::LitMismatch);
        // …but the skipped span is still reported by the error walk.
        let errs = pd.errors();
        assert!(errs
            .iter()
            .any(|(path, code, _)| path == "(panic)" && *code == ErrorCode::PanicSkipped));
    }

    #[test]
    fn note_panic_skip_promotes_on_leaves() {
        let mut pd = ParseDesc::ok();
        pd.note_panic_skip(loc(3));
        assert_eq!(pd.state, ParseState::Panic);
        assert_eq!(pd.nerr, 1);
        assert_eq!(pd.err_code, ErrorCode::PanicSkipped);
        assert_eq!(pd.loc, Some(loc(3)));
    }

    #[test]
    fn error_walk_builds_paths() {
        let bad = ParseDesc::error(ErrorCode::RangeError, loc(7));
        let pd = ParseDesc {
            nerr: 1,
            err_code: ErrorCode::NestedError,
            loc: Some(loc(7)),
            state: ParseState::Ok,
            kind: PdKind::Struct {
                fields: vec![
                    ("h".into(), ParseDesc::ok()),
                    (
                        "events".into(),
                        ParseDesc {
                            nerr: 1,
                            err_code: ErrorCode::NestedError,
                            loc: Some(loc(7)),
                            state: ParseState::Ok,
                            kind: PdKind::Array { elts: vec![ParseDesc::ok(), bad], neerr: 1, first_error: Some(1) },
                        },
                    ),
                ],
            },
        };
        let errs = pd.errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].0, "events.[1]");
        assert_eq!(errs[0].1, ErrorCode::RangeError);
    }
}
