//! The dense-ID observability core: flat, `Send`-able parse counters.
//!
//! The original metrics path routed every `type_enter`/`type_exit` through
//! an `Rc<RefCell<dyn Observer>>` into a `BTreeMap<String, TypeStat>` —
//! a string lookup per event, which cost 40–50% on generated parsers.
//! This module pre-resolves the lookups the way the ASF+SDF compiler
//! resolves interpreted names: a per-schema [`ObsSchema`] interning table
//! assigns each named type a dense `u32` node id once, the hot path bumps
//! flat `Vec`-indexed slabs by id, and names are rejoined only at
//! exposition time.
//!
//! [`MetricsCore`] is a plain struct and is `Send`: one core per worker
//! shard crosses threads freely, and the shard merge folds them in order
//! ([`MetricsCore::merge`] is exact and order-independent for counters).
//! The `Rc<RefCell<..>>` only appears in [`MetricsHandle`], the thin
//! single-threaded adapter a [`Cursor`](crate::io::Cursor) holds; the
//! legacy [`Observer`](crate::observe::Observer) trait remains as a
//! compatibility surface for sinks that want the full event stream
//! (traces, event logs).
//!
//! On top of the dense ids sits an opt-in per-schema-node cost profiler
//! ([`MetricsCore::with_profile`]): byte attribution per node (self vs
//! cumulative, recursion-safe), error density, batched-clock time
//! sampling, and folded-stack output consumable by `inferno` /
//! flamegraph tooling.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

use crate::error::ErrorCode;
use crate::observe::{ObsHandle, RecoveryEvent};
use crate::recovery::OnExhausted;
use crate::summary::{Histogram, Quantiles};

/// Number of error-code slots in the dense per-code counter slab.
const NCODES: usize = ErrorCode::ALL.len();

/// Records per wall-clock sample in the latency path (one clock read per
/// batch, the batch mean credited to each record in it).
const LATENCY_BATCH: u32 = 64;

/// Enter/exit events per clock read in the profiler's time sampler.
const PROFILE_TICK_EVERY: u32 = 1024;

/// Version tag leading a [`MetricsCore::snapshot`] payload. Kept at the
/// value the pre-dense `MetricsSink` codec used: the byte format is
/// unchanged, so journals written before the dense core restore here.
const SNAPSHOT_VERSION: u8 = 1;

/// A shared, single-threaded handle to a [`MetricsCore`], as attached to
/// a [`Cursor`](crate::io::Cursor). The core itself is `Send`; the handle
/// is the non-`Send` adapter for the one thread driving a parse.
pub type MetricsHandle = Rc<RefCell<MetricsCore>>;

/// Per-type aggregate: how often a named type parsed and how many bytes
/// and errors its parses covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeStat {
    /// Completed parses of the type (failed attempts included).
    pub hits: u64,
    /// Total bytes spanned by those parses.
    pub bytes: u64,
    /// Total descriptor errors reported at those parses' exits.
    pub errors: u64,
}

/// The per-schema interning table mapping named types to dense node ids.
///
/// Built once — from the checked schema's type list (interpreter) or a
/// generated module's static `OBS_TYPES` table — so ids coincide with the
/// engine's own type indices and the hot path never touches a string.
/// Names not present can still be interned lazily (the legacy
/// name-keyed [`Observer`](crate::observe::Observer) compatibility path).
#[derive(Debug, Clone, Default)]
pub struct ObsSchema {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl ObsSchema {
    /// Builds the table from a schema's type names, in id order.
    pub fn from_names<I, S>(names: I) -> ObsSchema
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut s = ObsSchema::default();
        for n in names {
            s.intern(n.as_ref());
        }
        s
    }

    /// The id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// The name for `id`, if assigned.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The `Send`-able aggregation core behind every metrics surface: flat
/// dense-id counter slabs plus latency summaries and an optional
/// per-node cost profiler.
///
/// Counters are exact and deterministic for a given input; timings
/// (latency, the throughput clock) are wall-clock state and are excluded
/// from [`snapshot`](Self::snapshot) and from merge folding.
#[derive(Debug, Clone)]
pub struct MetricsCore {
    schema: ObsSchema,
    /// Whether incoming dense ids are trusted to index `nodes` directly.
    /// True for cores built from a schema's own name table
    /// ([`with_names`](Self::with_names)); false for lazily-interning
    /// cores, where every event resolves through its name.
    trust_ids: bool,
    nodes: Vec<TypeStat>,
    errors_by_code: Vec<u64>,
    errors_total: u64,
    records: u64,
    records_with_errors: u64,
    records_skipped: u64,
    record_bytes: u64,
    panic_skip_events: u64,
    panic_skipped_bytes: u64,
    /// Indexed by [`budget_mode_index`]: Stop, SkipRecord, BestEffort.
    budget_exhausted: [u64; 3],
    start: Instant,
    last_record: Instant,
    latency_us: Histogram,
    latency_q: Quantiles,
    /// Records closed since the last latency sample was taken.
    batch_pending: u32,
    profile: Option<Box<ProfileCore>>,
}

fn budget_mode_index(mode: OnExhausted) -> usize {
    match mode {
        OnExhausted::Stop => 0,
        OnExhausted::SkipRecord => 1,
        OnExhausted::BestEffort => 2,
    }
}

fn budget_mode_name(index: usize) -> &'static str {
    ["Stop", "SkipRecord", "BestEffort"][index]
}

impl Default for MetricsCore {
    fn default() -> MetricsCore {
        MetricsCore::new()
    }
}

impl MetricsCore {
    /// Creates an empty, lazily-interning core; the throughput clock
    /// starts now. Every event resolves its node through the name —
    /// use [`with_names`](Self::with_names) when the schema's type list
    /// is known so the hot path can trust dense ids.
    pub fn new() -> MetricsCore {
        let now = Instant::now();
        MetricsCore {
            schema: ObsSchema::default(),
            trust_ids: false,
            nodes: Vec::new(),
            errors_by_code: vec![0; NCODES],
            errors_total: 0,
            records: 0,
            records_with_errors: 0,
            records_skipped: 0,
            record_bytes: 0,
            panic_skip_events: 0,
            panic_skipped_bytes: 0,
            budget_exhausted: [0; 3],
            start: now,
            last_record: now,
            latency_us: Histogram::new(32),
            latency_q: Quantiles::new(1024, 42),
            batch_pending: 0,
            profile: None,
        }
    }

    /// Creates a core whose node table is pre-built from `names` in id
    /// order — the schema's type list, or a generated module's
    /// `OBS_TYPES`. Dense ids emitted by the matching engine then index
    /// the counter slab directly, with no string work per event.
    pub fn with_names<I, S>(names: I) -> MetricsCore
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut m = MetricsCore::new();
        m.schema = ObsSchema::from_names(names);
        m.nodes = vec![TypeStat::default(); m.schema.len()];
        m.trust_ids = true;
        m
    }

    /// Enables the per-node cost profiler (byte attribution, folded
    /// stacks, sampled time). Profiling needs the full enter/exit event
    /// stream, so engines disable event-eliding fast paths when it is on.
    pub fn with_profile(mut self) -> MetricsCore {
        self.enable_profile();
        self
    }

    /// Enables profiling in place; see [`with_profile`](Self::with_profile).
    pub fn enable_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::new(ProfileCore::new()));
        }
    }

    /// Whether the per-node profiler is collecting.
    pub fn profiling(&self) -> bool {
        self.profile.is_some()
    }

    /// Wraps this core in a [`MetricsHandle`] for attachment to a cursor.
    pub fn into_handle(self) -> MetricsHandle {
        Rc::new(RefCell::new(self))
    }

    fn node_mut(&mut self, id: u32, name: &str) -> &mut TypeStat {
        let idx = if self.trust_ids && (id as usize) < self.nodes.len() {
            id as usize
        } else {
            let idx = self.schema.intern(name) as usize;
            if idx >= self.nodes.len() {
                self.nodes.resize(idx + 1, TypeStat::default());
            }
            idx
        };
        &mut self.nodes[idx]
    }

    /// A named type's parse began at `offset` — only the profiler cares.
    /// The cursor skips the call entirely when profiling is off.
    #[inline]
    pub fn enter_id(&mut self, id: u32, name: &str, offset: usize) {
        // Resolve through node_mut so untrusted ids intern consistently
        // with the exit path (and `active` tracking stays id-aligned).
        let idx = {
            let _ = self.node_mut(id, name);
            if self.trust_ids && (id as usize) < self.nodes.len() {
                id
            } else {
                self.schema.intern(name)
            }
        };
        if let Some(p) = &mut self.profile {
            p.enter(idx, offset);
        }
    }

    /// A named type's parse finished: `[start_off, end_off)` with `nerr`
    /// descriptor errors. The dense hot path — one slab bump. The body is
    /// kept to the trusted-id, non-profiling bump so it inlines into the
    /// generated call sites; interning and profiling are outlined.
    #[inline(always)]
    pub fn exit_id(&mut self, id: u32, name: &str, start_off: usize, end_off: usize, nerr: u32) {
        let bytes = end_off.saturating_sub(start_off) as u64;
        if self.trust_ids && (id as usize) < self.nodes.len() && self.profile.is_none() {
            let t = &mut self.nodes[id as usize];
            t.hits = t.hits.saturating_add(1);
            t.bytes = t.bytes.saturating_add(bytes);
            t.errors = t.errors.saturating_add(u64::from(nerr));
        } else {
            self.exit_id_slow(id, name, bytes, end_off, nerr);
        }
    }

    /// The outlined remainder of [`exit_id`](Self::exit_id): untrusted-id
    /// interning and the profiler's frame pop.
    #[inline(never)]
    fn exit_id_slow(&mut self, id: u32, name: &str, bytes: u64, end_off: usize, nerr: u32) {
        let resolved = if self.trust_ids && (id as usize) < self.nodes.len() {
            id
        } else {
            let idx = self.schema.intern(name);
            if idx as usize >= self.nodes.len() {
                self.nodes.resize(idx as usize + 1, TypeStat::default());
            }
            idx
        };
        let t = &mut self.nodes[resolved as usize];
        t.hits = t.hits.saturating_add(1);
        t.bytes = t.bytes.saturating_add(bytes);
        t.errors = t.errors.saturating_add(u64::from(nerr));
        if let Some(p) = &mut self.profile {
            p.exit(resolved, end_off, nerr);
        }
    }

    /// Name-keyed compatibility entry for the legacy [`Observer`]
    /// (`type_exit`) path: interns the name, then bumps the slab.
    ///
    /// [`Observer`]: crate::observe::Observer
    pub fn note_type(&mut self, name: &str, bytes: u64, nerr: u32) {
        let t = {
            let idx = self.schema.intern(name) as usize;
            if idx >= self.nodes.len() {
                self.nodes.resize(idx + 1, TypeStat::default());
            }
            &mut self.nodes[idx]
        };
        t.hits = t.hits.saturating_add(1);
        t.bytes = t.bytes.saturating_add(bytes);
        t.errors = t.errors.saturating_add(u64::from(nerr));
    }

    /// Counts one descriptor error, by dense code index.
    #[inline]
    pub fn note_error(&mut self, code: ErrorCode) {
        self.errors_total = self.errors_total.saturating_add(1);
        if let Some(n) = self.errors_by_code.get_mut(code as usize) {
            *n = n.saturating_add(1);
        }
    }

    /// Counts one recovery event.
    pub fn note_recovery(&mut self, event: RecoveryEvent) {
        match event {
            RecoveryEvent::PanicSkip { bytes } => {
                self.panic_skip_events = self.panic_skip_events.saturating_add(1);
                self.panic_skipped_bytes = self.panic_skipped_bytes.saturating_add(bytes);
            }
            RecoveryEvent::SkipRecord => {
                self.records_skipped = self.records_skipped.saturating_add(1);
            }
            RecoveryEvent::BudgetExhausted { mode } => {
                let n = &mut self.budget_exhausted[budget_mode_index(mode)];
                *n = n.saturating_add(1);
            }
        }
    }

    /// Closes one record spanning `bytes` with `nerr` errors: throughput
    /// counters plus the batched-clock latency sample.
    pub fn note_record(&mut self, bytes: u64, nerr: u32) {
        self.records = self.records.saturating_add(1);
        if nerr > 0 {
            self.records_with_errors = self.records_with_errors.saturating_add(1);
        }
        self.record_bytes = self.record_bytes.saturating_add(bytes);
        // Batched latency sampling: one clock read per LATENCY_BATCH
        // records, with the batch's mean credited to each record in it —
        // a single weighted add per summary, not LATENCY_BATCH bucket
        // searches and reservoir draws.
        self.batch_pending += 1;
        if self.batch_pending >= LATENCY_BATCH {
            let now = Instant::now();
            let us = now.duration_since(self.last_record).as_secs_f64() * 1e6
                / f64::from(self.batch_pending);
            self.last_record = now;
            self.latency_us.add_n(us, u64::from(self.batch_pending));
            self.latency_q.add_n(us, u64::from(self.batch_pending));
            self.batch_pending = 0;
        }
    }

    // ---- accessors -----------------------------------------------------

    /// Records closed (skipped records included).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records closed with at least one error.
    pub fn records_with_errors(&self) -> u64 {
        self.records_with_errors
    }

    /// Records skipped wholesale by the budget machinery.
    pub fn records_skipped(&self) -> u64 {
        self.records_skipped
    }

    /// Total bytes covered by closed records.
    pub fn record_bytes(&self) -> u64 {
        self.record_bytes
    }

    /// Total descriptor errors observed.
    pub fn errors_total(&self) -> u64 {
        self.errors_total
    }

    /// Panic-mode resynchronisation events.
    pub fn panic_skip_events(&self) -> u64 {
        self.panic_skip_events
    }

    /// Total bytes discarded by panic-mode resynchronisation.
    pub fn panic_skipped_bytes(&self) -> u64 {
        self.panic_skipped_bytes
    }

    /// Seconds since the core's throughput clock started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Per-type aggregates with at least one event, sorted by name —
    /// exactly the entries the old name-keyed map would have held.
    pub fn sorted_types(&self) -> Vec<(&str, TypeStat)> {
        let mut out: Vec<(&str, TypeStat)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, t)| t.hits != 0 || t.bytes != 0 || t.errors != 0)
            .filter_map(|(i, t)| self.schema.name(i as u32).map(|n| (n, *t)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Nonzero error counts as `(variant name, count)`, sorted by name.
    pub fn sorted_error_codes(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = ErrorCode::ALL
            .iter()
            .filter_map(|&c| {
                let n = *self.errors_by_code.get(c as usize)?;
                (n != 0).then(|| (c.name(), n))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Nonzero budget-exhaustion transitions as `(mode name, count)`,
    /// sorted by name.
    pub fn sorted_budget_modes(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .budget_exhausted
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (budget_mode_name(i), n))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Estimated `q`-quantile of per-record latency, in microseconds.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.latency_q.quantile(q)
    }

    /// Records counted by the latency summary (sampled plus the tail of
    /// the current batch).
    pub fn latency_count(&self) -> u64 {
        self.latency_q.count() + u64::from(self.batch_pending)
    }

    // ---- merge / drain / snapshot --------------------------------------

    /// Folds another core's deterministic counters into this one — the
    /// merge step of a parallel record-sharded parse, where each worker
    /// thread aggregates into its own core. The fold is keyed by *name*,
    /// so cores built over differently-ordered (or lazily-interned)
    /// tables merge exactly; counter merging is order-independent.
    /// Latency summaries are wall-clock samples of the worker's cadence
    /// and are deliberately not folded in.
    pub fn merge(&mut self, other: &MetricsCore) {
        for (i, t) in other.nodes.iter().enumerate() {
            if t.hits == 0 && t.bytes == 0 && t.errors == 0 {
                continue;
            }
            if let Some(name) = other.schema.name(i as u32) {
                let idx = self.schema.intern(name) as usize;
                if idx >= self.nodes.len() {
                    self.nodes.resize(idx + 1, TypeStat::default());
                }
                let e = &mut self.nodes[idx];
                e.hits = e.hits.saturating_add(t.hits);
                e.bytes = e.bytes.saturating_add(t.bytes);
                e.errors = e.errors.saturating_add(t.errors);
            }
        }
        for (i, &n) in other.errors_by_code.iter().enumerate() {
            if let Some(e) = self.errors_by_code.get_mut(i) {
                *e = e.saturating_add(n);
            }
        }
        self.errors_total = self.errors_total.saturating_add(other.errors_total);
        self.records = self.records.saturating_add(other.records);
        self.records_with_errors =
            self.records_with_errors.saturating_add(other.records_with_errors);
        self.records_skipped = self.records_skipped.saturating_add(other.records_skipped);
        self.record_bytes = self.record_bytes.saturating_add(other.record_bytes);
        self.panic_skip_events = self.panic_skip_events.saturating_add(other.panic_skip_events);
        self.panic_skipped_bytes =
            self.panic_skipped_bytes.saturating_add(other.panic_skipped_bytes);
        for (e, &n) in self.budget_exhausted.iter_mut().zip(&other.budget_exhausted) {
            *e = e.saturating_add(n);
        }
    }

    /// Takes the accumulated counters out as a delta core, zeroing this
    /// one in place while *keeping* its interning table (and id trust) —
    /// the per-record harvest step of the parallel path, where the same
    /// worker core keeps collecting after each drain.
    pub fn drain(&mut self) -> MetricsCore {
        let mut delta = MetricsCore::new();
        delta.schema = self.schema.clone();
        delta.trust_ids = self.trust_ids;
        delta.nodes = std::mem::take(&mut self.nodes);
        self.nodes = vec![TypeStat::default(); delta.nodes.len()];
        delta.errors_by_code = std::mem::replace(&mut self.errors_by_code, vec![0; NCODES]);
        delta.errors_total = std::mem::take(&mut self.errors_total);
        delta.records = std::mem::take(&mut self.records);
        delta.records_with_errors = std::mem::take(&mut self.records_with_errors);
        delta.records_skipped = std::mem::take(&mut self.records_skipped);
        delta.record_bytes = std::mem::take(&mut self.record_bytes);
        delta.panic_skip_events = std::mem::take(&mut self.panic_skip_events);
        delta.panic_skipped_bytes = std::mem::take(&mut self.panic_skipped_bytes);
        delta.budget_exhausted = std::mem::take(&mut self.budget_exhausted);
        // Latency state stays with the live core (wall-clock cadence of
        // this worker); the delta carries counters only, like `snapshot`.
        delta
    }

    /// Serialises the deterministic counters to a compact binary payload
    /// for embedding in a checkpoint journal frame. The byte format is
    /// the original `MetricsSink` codec, unchanged: version tag, seven
    /// scalar counters, then name-sorted (string, count) sections for
    /// error codes, budget modes, and per-type stats — zero entries are
    /// skipped, exactly as the name-keyed maps only held touched keys.
    /// Timings are wall-clock state of *this* process and are excluded:
    /// a restored core reproduces the counters exactly and starts its
    /// clocks fresh.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut o = Vec::new();
        o.push(SNAPSHOT_VERSION);
        for v in [
            self.records,
            self.records_with_errors,
            self.records_skipped,
            self.record_bytes,
            self.errors_total,
            self.panic_skip_events,
            self.panic_skipped_bytes,
        ] {
            o.extend_from_slice(&v.to_le_bytes());
        }
        let put_str = |o: &mut Vec<u8>, s: &str| {
            o.extend_from_slice(&(s.len() as u16).to_le_bytes());
            o.extend_from_slice(s.as_bytes());
        };
        let codes = self.sorted_error_codes();
        o.extend_from_slice(&(codes.len() as u32).to_le_bytes());
        for (code, n) in codes {
            put_str(&mut o, code);
            o.extend_from_slice(&n.to_le_bytes());
        }
        let modes = self.sorted_budget_modes();
        o.extend_from_slice(&(modes.len() as u32).to_le_bytes());
        for (mode, n) in modes {
            put_str(&mut o, mode);
            o.extend_from_slice(&n.to_le_bytes());
        }
        let types = self.sorted_types();
        o.extend_from_slice(&(types.len() as u32).to_le_bytes());
        for (name, t) in types {
            put_str(&mut o, name);
            o.extend_from_slice(&t.hits.to_le_bytes());
            o.extend_from_slice(&t.bytes.to_le_bytes());
            o.extend_from_slice(&t.errors.to_le_bytes());
        }
        o
    }

    /// Rebuilds a core from a [`snapshot`](Self::snapshot) payload.
    /// Returns `None` on a malformed or wrong-version payload. Error-code
    /// keys that no longer name an [`ErrorCode`] variant are dropped
    /// (their counts stay in `errors_total` — forward compatibility with
    /// journals written by newer code); timings start fresh.
    pub fn restore(bytes: &[u8]) -> Option<MetricsCore> {
        let mut r = Reader { bytes, pos: 0 };
        if r.u8()? != SNAPSHOT_VERSION {
            return None;
        }
        let mut m = MetricsCore::new();
        m.records = r.u64()?;
        m.records_with_errors = r.u64()?;
        m.records_skipped = r.u64()?;
        m.record_bytes = r.u64()?;
        m.errors_total = r.u64()?;
        m.panic_skip_events = r.u64()?;
        m.panic_skipped_bytes = r.u64()?;
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let n = r.u64()?;
            if let Some(code) = ErrorCode::from_name(&name) {
                if let Some(e) = m.errors_by_code.get_mut(code as usize) {
                    *e = e.saturating_add(n);
                }
            }
        }
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let n = r.u64()?;
            let idx = match name.as_str() {
                "Stop" => 0,
                "SkipRecord" => 1,
                "BestEffort" => 2,
                _ => continue,
            };
            m.budget_exhausted[idx] = m.budget_exhausted[idx].saturating_add(n);
        }
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let t = TypeStat { hits: r.u64()?, bytes: r.u64()?, errors: r.u64()? };
            let idx = m.schema.intern(&name) as usize;
            if idx >= m.nodes.len() {
                m.nodes.resize(idx + 1, TypeStat::default());
            }
            let e = &mut m.nodes[idx];
            e.hits = e.hits.saturating_add(t.hits);
            e.bytes = e.bytes.saturating_add(t.bytes);
            e.errors = e.errors.saturating_add(t.errors);
        }
        if r.pos != r.bytes.len() {
            return None;
        }
        Some(m)
    }

    // ---- profiler output ------------------------------------------------

    /// The per-node cost table, or `None` when profiling was off. The
    /// byte columns are deterministic for a given input; pass
    /// `with_times` to append the sampled (wall-clock, approximate) time
    /// column.
    pub fn profile_table(&self, with_times: bool) -> Option<String> {
        let p = self.profile.as_ref()?;
        let mut rows: Vec<(&str, &ProfNode)> = p
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.hits != 0)
            .filter_map(|(i, n)| self.schema.name(i as u32).map(|s| (s, n)))
            .collect();
        rows.sort_by(|a, b| b.1.cum_bytes.cmp(&a.1.cum_bytes).then(a.0.cmp(b.0)));
        let total_self: u64 = rows.iter().map(|(_, n)| n.self_bytes).sum();
        let denom = total_self.max(1) as f64;
        let total_ns: u64 = rows.iter().map(|(_, n)| n.self_ns).sum();
        let mut o = String::new();
        let _ = writeln!(
            o,
            "{:<24} {:>10} {:>12} {:>6} {:>12} {:>6} {:>8} {:>8}{}",
            "node",
            "hits",
            "cum_bytes",
            "cum%",
            "self_bytes",
            "self%",
            "errors",
            "err/hit",
            if with_times { "  ~self_time" } else { "" },
        );
        for (name, n) in rows {
            let err_rate = n.errors as f64 / n.hits.max(1) as f64;
            let _ = write!(
                o,
                "{:<24} {:>10} {:>12} {:>5.1}% {:>12} {:>5.1}% {:>8} {:>8.3}",
                name,
                n.hits,
                n.cum_bytes,
                n.cum_bytes as f64 * 100.0 / denom,
                n.self_bytes,
                n.self_bytes as f64 * 100.0 / denom,
                n.errors,
                err_rate,
            );
            if with_times {
                let share = if total_ns > 0 {
                    n.self_ns as f64 * 100.0 / total_ns as f64
                } else {
                    0.0
                };
                let _ = write!(o, "  {:>9.1}ms {share:>5.1}%", n.self_ns as f64 / 1e6);
            }
            o.push('\n');
        }
        Some(o)
    }

    /// Folded-stack lines (`root;child;leaf self_bytes`), one per
    /// distinct node path, sorted — the input format `inferno` and other
    /// flamegraph tools consume. Weights are self-attributed bytes, so
    /// the output is deterministic for a given input. `None` when
    /// profiling was off.
    pub fn profile_folded(&self) -> Option<String> {
        let p = self.profile.as_ref()?;
        let mut lines: Vec<String> = p
            .folded
            .iter()
            .map(|(path, &bytes)| {
                let names: Vec<&str> = path
                    .iter()
                    .map(|&id| self.schema.name(id).unwrap_or("?"))
                    .collect();
                format!("{} {bytes}", names.join(";"))
            })
            .collect();
        lines.sort();
        let mut o = lines.join("\n");
        if !o.is_empty() {
            o.push('\n');
        }
        Some(o)
    }
}

/// The opt-in per-schema-node cost profiler riding on the dense ids:
/// an explicit enter/exit stack attributing bytes to nodes (self vs
/// cumulative, recursion-safe via per-node active depth counts), folded
/// stack paths, and a batched-clock time sampler (one `Instant` read per
/// [`PROFILE_TICK_EVERY`] events, credited to the node on top of the
/// stack — an event-driven sampling profiler).
#[derive(Debug, Clone, Default)]
struct ProfileCore {
    stack: Vec<Frame>,
    nodes: Vec<ProfNode>,
    /// Self-bytes per distinct node path (ids root-first).
    folded: HashMap<Vec<u32>, u64>,
    events: u32,
    last_tick: Option<Instant>,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    id: u32,
    start: usize,
    child_bytes: u64,
}

/// Per-node profile aggregate.
#[derive(Debug, Clone, Copy, Default)]
struct ProfNode {
    hits: u64,
    errors: u64,
    /// Bytes spanned by outermost parses of the node (recursion counted
    /// once).
    cum_bytes: u64,
    /// Bytes spanned minus bytes attributed to named children.
    self_bytes: u64,
    /// Open frames of this node (recursion depth).
    active: u32,
    /// Sampled wall-clock self time.
    self_ns: u64,
}

impl ProfileCore {
    fn new() -> ProfileCore {
        ProfileCore::default()
    }

    fn node_mut(&mut self, id: u32) -> &mut ProfNode {
        let idx = id as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize(idx + 1, ProfNode::default());
        }
        &mut self.nodes[idx]
    }

    fn tick(&mut self) {
        self.events += 1;
        if self.events < PROFILE_TICK_EVERY {
            return;
        }
        self.events = 0;
        let now = Instant::now();
        if let (Some(last), Some(top)) = (self.last_tick, self.stack.last()) {
            let dt = now.duration_since(last).as_nanos() as u64;
            let id = top.id;
            let n = self.node_mut(id);
            n.self_ns = n.self_ns.saturating_add(dt);
        }
        self.last_tick = Some(now);
    }

    fn enter(&mut self, id: u32, offset: usize) {
        self.node_mut(id).active += 1;
        self.stack.push(Frame { id, start: offset, child_bytes: 0 });
        self.tick();
    }

    fn exit(&mut self, id: u32, end: usize, nerr: u32) {
        // Events are strictly nested by construction; an unmatched exit
        // (API misuse) is dropped rather than corrupting the stack.
        if self.stack.last().is_none_or(|f| f.id != id) {
            return;
        }
        let Some(frame) = self.stack.pop() else { return };
        let span = end.saturating_sub(frame.start) as u64;
        let self_bytes = span.saturating_sub(frame.child_bytes);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_bytes = parent.child_bytes.saturating_add(span);
        }
        let mut path: Vec<u32> = self.stack.iter().map(|f| f.id).collect();
        path.push(id);
        let cell = self.folded.entry(path).or_insert(0);
        *cell = cell.saturating_add(self_bytes);
        let n = self.node_mut(id);
        n.hits = n.hits.saturating_add(1);
        n.errors = n.errors.saturating_add(u64::from(nerr));
        n.self_bytes = n.self_bytes.saturating_add(self_bytes);
        n.active = n.active.saturating_sub(1);
        if n.active == 0 {
            n.cum_bytes = n.cum_bytes.saturating_add(span);
        }
        self.tick();
    }
}

/// What a per-worker observer factory attaches to the worker's parser:
/// a legacy event-stream observer, a dense metrics core, both, or
/// neither. Factories hand one of these per worker thread to the
/// parallel engines; the handles themselves never cross threads (the
/// cores they wrap do, via the harvest closures).
#[derive(Default)]
pub struct WorkerObs {
    /// Full event-stream observer (traces, event logs).
    pub handle: Option<ObsHandle>,
    /// Dense-id metrics core.
    pub metrics: Option<MetricsHandle>,
}

impl WorkerObs {
    /// No observation.
    pub fn none() -> WorkerObs {
        WorkerObs::default()
    }

    /// Metrics-only observation via a dense core.
    pub fn metrics(core: MetricsHandle) -> WorkerObs {
        WorkerObs { handle: None, metrics: Some(core) }
    }

    /// Full event-stream observation via a legacy handle.
    pub fn observer(handle: ObsHandle) -> WorkerObs {
        WorkerObs { handle: Some(handle), metrics: None }
    }
}

impl From<ObsHandle> for WorkerObs {
    fn from(handle: ObsHandle) -> WorkerObs {
        WorkerObs::observer(handle)
    }
}

impl From<MetricsHandle> for WorkerObs {
    fn from(core: MetricsHandle) -> WorkerObs {
        WorkerObs::metrics(core)
    }
}

/// Bounds-checked little-endian reader over a snapshot payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)?.try_into().ok().map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)?.try_into().ok().map(u64::from_le_bytes)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.take(2)?.try_into().ok().map(u16::from_le_bytes)?;
        let s = self.take(len as usize)?;
        String::from_utf8(s.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time assertion: `MetricsCore` crosses threads (one core
    /// per worker shard, merged in shard order).
    #[test]
    fn metrics_core_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MetricsCore>();
        assert_send::<ObsSchema>();
        assert_send::<TypeStat>();
    }

    /// The dense error-code slab indexes by discriminant: `ALL` must be
    /// in declaration order so `code as usize` round-trips.
    #[test]
    fn error_code_discriminants_index_all() {
        for (i, &c) in ErrorCode::ALL.iter().enumerate() {
            assert_eq!(c as usize, i, "{c:?}");
        }
        assert_eq!(NCODES, ErrorCode::ALL.len());
    }

    #[test]
    fn dense_ids_and_interning_agree() {
        let mut dense = MetricsCore::with_names(["a_t", "b_t"]);
        dense.exit_id(1, "b_t", 0, 4, 0);
        dense.exit_id(0, "a_t", 4, 6, 1);
        let mut interned = MetricsCore::new();
        interned.note_type("b_t", 4, 0);
        interned.note_type("a_t", 2, 1);
        assert_eq!(dense.sorted_types(), interned.sorted_types());
    }

    #[test]
    fn untrusted_ids_fall_back_to_names() {
        // A lazily-interning core must never misattribute a dense id.
        let mut m = MetricsCore::new();
        m.exit_id(5, "first_t", 0, 3, 0);
        m.exit_id(0, "second_t", 3, 5, 0);
        let types = m.sorted_types();
        assert_eq!(types.len(), 2);
        assert_eq!(types[0].0, "first_t");
        assert_eq!(types[0].1.bytes, 3);
        assert_eq!(types[1].0, "second_t");
        assert_eq!(types[1].1.bytes, 2);
    }

    #[test]
    fn drain_keeps_schema_and_zeroes_counters() {
        let mut m = MetricsCore::with_names(["t"]);
        m.exit_id(0, "t", 0, 4, 0);
        m.note_record(4, 0);
        let delta = m.drain();
        assert_eq!(delta.records(), 1);
        assert_eq!(delta.sorted_types()[0].1.bytes, 4);
        assert_eq!(m.records(), 0);
        assert!(m.sorted_types().is_empty());
        // Ids still resolve densely after the drain.
        m.exit_id(0, "t", 4, 8, 0);
        assert_eq!(m.sorted_types()[0].1.bytes, 4);
    }

    #[test]
    fn merge_is_name_keyed_across_different_orders() {
        let mut a = MetricsCore::with_names(["x_t", "y_t"]);
        a.exit_id(0, "x_t", 0, 2, 0);
        let mut b = MetricsCore::with_names(["y_t", "x_t"]);
        b.exit_id(1, "x_t", 0, 3, 1);
        b.exit_id(0, "y_t", 3, 4, 0);
        a.merge(&b);
        let types = a.sorted_types();
        assert_eq!(types[0], ("x_t", TypeStat { hits: 2, bytes: 5, errors: 1 }));
        assert_eq!(types[1], ("y_t", TypeStat { hits: 1, bytes: 1, errors: 0 }));
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut a = MetricsCore::new();
        a.note_type("t", u64::MAX - 1, 0);
        let mut b = MetricsCore::new();
        b.note_type("t", 5, 0);
        a.merge(&b);
        assert_eq!(a.sorted_types()[0].1.bytes, u64::MAX);
        a.note_type("t", 9, 0);
        assert_eq!(a.sorted_types()[0].1.bytes, u64::MAX);
    }

    #[test]
    fn snapshot_roundtrips_through_restore() {
        let mut m = MetricsCore::with_names(["b_t", "a_t"]);
        m.exit_id(0, "b_t", 0, 4, 0);
        m.exit_id(1, "a_t", 4, 6, 1);
        m.note_error(ErrorCode::LitMismatch);
        m.note_recovery(RecoveryEvent::PanicSkip { bytes: 7 });
        m.note_recovery(RecoveryEvent::BudgetExhausted { mode: OnExhausted::Stop });
        m.note_record(6, 1);
        let r = MetricsCore::restore(&m.snapshot()).expect("roundtrips");
        assert_eq!(r.sorted_types(), m.sorted_types());
        assert_eq!(r.sorted_error_codes(), m.sorted_error_codes());
        assert_eq!(r.sorted_budget_modes(), m.sorted_budget_modes());
        assert_eq!(r.records(), m.records());
        assert_eq!(r.panic_skipped_bytes(), 7);
    }

    #[test]
    fn profile_attributes_self_and_cumulative_bytes() {
        let mut m = MetricsCore::with_names(["rec_t", "field_t"]).with_profile();
        // rec_t spans [0, 10); field_t spans [2, 6) inside it.
        m.enter_id(0, "rec_t", 0);
        m.enter_id(1, "field_t", 2);
        m.exit_id(1, "field_t", 2, 6, 0);
        m.exit_id(0, "rec_t", 0, 10, 0);
        let table = m.profile_table(false).expect("profiling on");
        assert!(table.contains("rec_t"), "{table}");
        let folded = m.profile_folded().expect("profiling on");
        // rec_t self = 10 - 4 (child) = 6; field_t self = 4.
        assert!(folded.contains("rec_t 6"), "{folded}");
        assert!(folded.contains("rec_t;field_t 4"), "{folded}");
    }

    #[test]
    fn profile_is_recursion_safe() {
        let mut m = MetricsCore::with_names(["list_t"]).with_profile();
        // list_t parses itself recursively: [0, 8) containing [2, 8).
        m.enter_id(0, "list_t", 0);
        m.enter_id(0, "list_t", 2);
        m.exit_id(0, "list_t", 2, 8, 0);
        m.exit_id(0, "list_t", 0, 8, 0);
        let table = m.profile_table(false).expect("profiling on");
        // Cumulative counts the outermost span once, not 8 + 6.
        let row = table.lines().find(|l| l.starts_with("list_t")).expect("row");
        assert!(row.contains(" 8 "), "{row}");
        let folded = m.profile_folded().expect("profiling on");
        assert!(folded.contains("list_t;list_t 6"), "{folded}");
    }

    #[test]
    fn profile_folded_is_deterministic() {
        let run = || {
            let mut m = MetricsCore::with_names(["a", "b"]).with_profile();
            for i in 0..100usize {
                m.enter_id(0, "a", i * 10);
                m.enter_id(1, "b", i * 10 + 1);
                m.exit_id(1, "b", i * 10 + 1, i * 10 + 4, 0);
                m.exit_id(0, "a", i * 10, (i + 1) * 10, 0);
                m.note_record(10, 0);
            }
            (m.profile_folded().expect("on"), m.profile_table(false).expect("on"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_counts_every_record() {
        let mut m = MetricsCore::new();
        for _ in 0..(LATENCY_BATCH as usize * 2 + 5) {
            m.note_record(1, 0);
        }
        assert_eq!(m.latency_count(), u64::from(LATENCY_BATCH) * 2 + 5);
        assert_eq!(m.latency_q.count(), u64::from(LATENCY_BATCH) * 2);
    }
}
