//! A small bounded keyed cache shared by the engines.
//!
//! Two hot paths memoise compiled artifacts keyed by their source text:
//! the cursor's per-parser regex cache (`Pre` patterns compile once per
//! schema, not once per record) and the VM's per-schema program cache
//! (a checked schema compiles to bytecode once per process). Both used
//! to grow without bound; [`KeyedCache`] gives them one implementation
//! with a capacity ceiling and least-recently-used eviction, so a
//! long-running ingest daemon that hot-loads descriptions cannot leak
//! compiled artifacts indefinitely.
//!
//! The cache is deliberately not synchronised: callers wrap it in
//! whatever sharing discipline they need (`Rc<RefCell<..>>` for the
//! per-parser regex cache, a `Mutex` for the process-wide program
//! cache).

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// A bounded key→value memo with least-recently-used eviction.
///
/// Values are handed out by clone, so `V` is typically a shared pointer
/// (`Rc<Regex>`, `Arc<VmProgram>`): eviction drops the cache's
/// reference while outstanding users keep theirs.
#[derive(Debug)]
pub struct KeyedCache<K, V> {
    map: HashMap<K, Entry<V>>,
    /// Monotonic use counter backing the LRU order.
    clock: u64,
    capacity: usize,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_use: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> KeyedCache<K, V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> KeyedCache<K, V> {
        KeyedCache { map: HashMap::new(), clock: 0, capacity: capacity.max(1) }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.last_use = clock;
            e.value.clone()
        })
    }

    /// Inserts `key → value`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // O(n) scan; caches are small (hundreds of entries) and
            // eviction only happens at the ceiling.
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.last_use).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, Entry { value, last_use: self.clock });
    }

    /// Looks up `key`, computing and caching the value on a miss. The
    /// computation may fail; failures are not cached.
    pub fn get_or_try_insert<E>(
        &mut self,
        key: K,
        make: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(&key) {
            return Ok(v);
        }
        let v = make()?;
        self.insert(key, v.clone());
        Ok(v)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The capacity ceiling.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c: KeyedCache<String, u32> = KeyedCache::new(4);
        assert_eq!(c.get("a"), None);
        c.insert("a".into(), 1);
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c: KeyedCache<u32, u32> = KeyedCache::new(3);
        for i in 0..10 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 3);
        assert!(c.get(&9).is_some());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c: KeyedCache<u32, u32> = KeyedCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(&1), Some(10));
        c.insert(3, 30);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut c: KeyedCache<u32, u32> = KeyedCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(2, 21); // same key: replace, no eviction
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&2), Some(21));
    }

    #[test]
    fn get_or_try_insert_caches_successes_only() {
        let mut c: KeyedCache<u32, u32> = KeyedCache::new(2);
        let r: Result<u32, ()> = c.get_or_try_insert(1, || Ok(5));
        assert_eq!(r, Ok(5));
        let r: Result<u32, &str> = c.get_or_try_insert(2, || Err("no"));
        assert_eq!(r, Err("no"));
        assert_eq!(c.len(), 1);
        // Cached value short-circuits the (failing) recompute.
        let r: Result<u32, &str> = c.get_or_try_insert(1, || Err("no"));
        assert_eq!(r, Ok(5));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut c: KeyedCache<u32, u32> = KeyedCache::new(0);
        c.insert(1, 1);
        assert_eq!(c.capacity(), 1);
        assert_eq!(c.get(&1), Some(1));
    }
}
