//! Deterministic fault injection for adversarial testing.
//!
//! The paper's central robustness claim is that PADS parsers never abort on
//! bad data. This module provides the tooling to *prove* that over mutated
//! corpora: a seeded, reproducible byte mutator ([`FaultPlan`]) that flips
//! bits, deletes and inserts bytes, and truncates; and a [`FaultReader`]
//! that feeds data to streaming parsers in adversarially small chunks and
//! raises an I/O error at a configured offset.
//!
//! Everything is deterministic in the caller-supplied seed, so a failing
//! case reproduces from its seed alone.

use std::io::{BufRead, Read};

/// A tiny deterministic RNG (xorshift64*), independent of any external
/// crate so fault plans replay identically everywhere.
#[derive(Debug, Clone)]
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeds the generator. A zero seed is remapped (xorshift fixpoint).
    pub fn new(seed: u64) -> Xorshift {
        Xorshift(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// A seeded recipe of byte-level corruption to apply to a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every random choice in the plan.
    pub seed: u64,
    /// Number of single-bit flips.
    pub bit_flips: u32,
    /// Number of single-byte deletions.
    pub deletions: u32,
    /// Number of single-byte insertions (random values, newline-biased to
    /// exercise record framing).
    pub insertions: u32,
    /// Whether to truncate the corpus at a random offset.
    pub truncate: bool,
}

impl FaultPlan {
    /// A moderate default plan for `seed`: a handful of each fault class,
    /// truncating on every fourth seed.
    pub fn for_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            bit_flips: 1 + (seed % 4) as u32,
            deletions: (seed % 3) as u32,
            insertions: (seed % 2) as u32,
            truncate: seed % 4 == 3,
        }
    }

    /// Applies the plan to `data`, returning the mutated corpus. The
    /// output depends only on `data` and the plan (deterministic).
    pub fn apply(&self, data: &[u8]) -> Vec<u8> {
        let mut rng = Xorshift::new(self.seed);
        let mut out = data.to_vec();
        for _ in 0..self.bit_flips {
            if out.is_empty() {
                break;
            }
            let i = rng.below(out.len());
            out[i] ^= 1 << rng.below(8);
        }
        for _ in 0..self.deletions {
            if out.is_empty() {
                break;
            }
            let i = rng.below(out.len());
            out.remove(i);
        }
        for _ in 0..self.insertions {
            let i = rng.below(out.len() + 1);
            // Bias half the insertions toward newline to stress record
            // framing; the rest are arbitrary bytes.
            let b = if rng.below(2) == 0 { b'\n' } else { (rng.next_u64() & 0xFF) as u8 };
            out.insert(i, b);
        }
        if self.truncate && !out.is_empty() {
            let keep = rng.below(out.len());
            out.truncate(keep);
        }
        out
    }
}

/// A seeded kill-and-resume schedule for crash-durability testing: how
/// often to checkpoint and after how many records to "kill" the run.
///
/// The plan is derived from the seed alone, so a harness can reproduce
/// any failing case from its seed number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPlan {
    /// Record count after which the run is cut short (`0` kills before
    /// the first record is committed).
    pub kill_after: usize,
    /// Checkpoint interval, in records.
    pub checkpoint_every: usize,
}

impl KillPlan {
    /// A kill schedule for `seed` over a run expected to produce about
    /// `total_records` records: the kill point sweeps the whole run
    /// (including "kill immediately" and "kill after everything"), and
    /// the checkpoint cadence cycles through 1..=4 records.
    pub fn for_seed(seed: u64, total_records: usize) -> KillPlan {
        let mut rng = Xorshift::new(seed ^ 0x6b69_6c6c_706c_616e);
        KillPlan {
            kill_after: rng.below(total_records + 2),
            checkpoint_every: 1 + rng.below(4),
        }
    }
}

/// An in-memory [`BufRead`] source that delivers data in bounded chunks
/// (exercising partial-read loops) and optionally fails with an I/O error
/// once a byte offset is reached.
#[derive(Debug)]
pub struct FaultReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
    fail_at: Option<usize>,
}

impl FaultReader {
    /// Wraps `data`; by default reads are unbounded and never fail.
    pub fn new(data: Vec<u8>) -> FaultReader {
        FaultReader { data, pos: 0, chunk: usize::MAX, fail_at: None }
    }

    /// Limits every read to at most `n` bytes (minimum 1).
    pub fn with_chunk(mut self, n: usize) -> FaultReader {
        self.chunk = n.max(1);
        self
    }

    /// Raises `ErrorKind::Other` once the read position reaches `offset`.
    pub fn with_fail_at(mut self, offset: usize) -> FaultReader {
        self.fail_at = Some(offset);
        self
    }
}

impl Read for FaultReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let avail = self.fill_buf()?;
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for FaultReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if let Some(f) = self.fail_at {
            if self.pos >= f {
                return Err(std::io::Error::other("injected fault"));
            }
        }
        let end = self
            .data
            .len()
            .min(self.pos.saturating_add(self.chunk))
            .min(self.fail_at.unwrap_or(usize::MAX));
        Ok(&self.data[self.pos..end])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.data.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let plan = FaultPlan { seed: 42, bit_flips: 3, deletions: 2, insertions: 2, truncate: false };
        assert_eq!(plan.apply(data), plan.apply(data));
        let other = FaultPlan { seed: 43, ..plan };
        assert_ne!(plan.apply(data), other.apply(data));
    }

    #[test]
    fn truncation_shortens() {
        let data = vec![7u8; 100];
        let plan = FaultPlan { seed: 3, bit_flips: 0, deletions: 0, insertions: 0, truncate: true };
        assert!(plan.apply(&data).len() < data.len());
    }

    #[test]
    fn chunked_reader_delivers_everything() {
        let mut r = FaultReader::new((0u8..100).collect()).with_chunk(7);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, (0u8..100).collect::<Vec<_>>());
    }

    #[test]
    fn reader_fails_at_offset() {
        let mut r = FaultReader::new(vec![1u8; 50]).with_chunk(8).with_fail_at(20);
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Other);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn read_until_crosses_chunks() {
        let mut r = FaultReader::new(b"abcdef\nrest".to_vec()).with_chunk(2);
        let mut line = Vec::new();
        r.read_until(b'\n', &mut line).unwrap();
        assert_eq!(line, b"abcdef\n");
    }
}
