//! Date parsing and printing for the `Pdate` base type.
//!
//! The paper's runtime delegated to the AT&T AST date library; we implement
//! the needed subset directly: civil-calendar conversion, several concrete
//! on-disk date styles (the CLF style of Figure 2 among them), and `strftime`
//! style output formatting used by the formatting tool (`"%D:%T"` in §5.3.1).
//!
//! A parsed [`PDate`] remembers *which* style it was written in and its UTC
//! offset, so writing the value back reproduces the original bytes.

/// On-disk syntax a date was parsed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateStyle {
    /// Common Log Format: `15/Oct/1997:18:46:51 -0700`.
    Clf,
    /// ISO 8601 date-time: `1997-10-15T18:46:51` (assumed UTC).
    IsoDateTime,
    /// ISO 8601 date: `1997-10-15` (midnight UTC).
    IsoDate,
    /// US-style date: `10/15/1997` or `10/15/97` (midnight UTC).
    UsSlash,
    /// Seconds since the Unix epoch, in decimal.
    Epoch,
}

/// A point in time with presentation metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PDate {
    /// Seconds since `1970-01-01T00:00:00Z`.
    pub epoch: i64,
    /// Minutes east of UTC in the original text (0 unless the style carries
    /// an offset).
    pub tz_minutes: i32,
    /// The concrete syntax the date was parsed from (used to write it back).
    pub style: DateStyle,
}

const MONTHS: [&str; 12] =
    ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

/// Days since the epoch for a civil date (proleptic Gregorian).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = y - (m <= 2) as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = ((m + 9) % 12) as u64;
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1);
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe as i64 - 719_468
}

/// Civil date `(year, month, day)` for days since the epoch.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + (m <= 2) as i64, m, d)
}

/// Civil time decomposition of an epoch instant (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    /// Year (proleptic Gregorian).
    pub year: i64,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31.
    pub day: u32,
    /// Hour 0–23.
    pub hour: u32,
    /// Minute 0–59.
    pub minute: u32,
    /// Second 0–59.
    pub second: u32,
}

/// Decomposes an epoch instant into UTC civil time.
pub fn civil_from_epoch(epoch: i64) -> Civil {
    let days = epoch.div_euclid(86_400);
    let secs = epoch.rem_euclid(86_400) as u32;
    let (year, month, day) = civil_from_days(days);
    Civil { year, month, day, hour: secs / 3600, minute: secs % 3600 / 60, second: secs % 60 }
}

/// Composes UTC civil time into an epoch instant.
pub fn epoch_from_civil(c: &Civil) -> i64 {
    days_from_civil(c.year, c.month, c.day) * 86_400
        + (c.hour * 3600 + c.minute * 60 + c.second) as i64
}

impl PDate {
    /// Parses `text` (logical ASCII) as a date, trying each known style.
    /// Returns `None` when no style matches the whole text.
    pub fn parse(text: &str) -> Option<PDate> {
        parse_clf(text)
            .or_else(|| parse_iso_datetime(text))
            .or_else(|| parse_iso_date(text))
            .or_else(|| parse_us_slash(text))
            .or_else(|| parse_epoch(text))
    }

    /// Renders the date in its original on-disk style.
    pub fn to_original(&self) -> String {
        match self.style {
            DateStyle::Clf => {
                let local = civil_from_epoch(self.epoch + self.tz_minutes as i64 * 60);
                let sign = if self.tz_minutes < 0 { '-' } else { '+' };
                let abs = self.tz_minutes.unsigned_abs();
                format!(
                    "{:02}/{}/{:04}:{:02}:{:02}:{:02} {}{:02}{:02}",
                    local.day,
                    MONTHS[(local.month - 1) as usize],
                    local.year,
                    local.hour,
                    local.minute,
                    local.second,
                    sign,
                    abs / 60,
                    abs % 60
                )
            }
            DateStyle::IsoDateTime => {
                let c = civil_from_epoch(self.epoch);
                format!(
                    "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
                    c.year, c.month, c.day, c.hour, c.minute, c.second
                )
            }
            DateStyle::IsoDate => {
                let c = civil_from_epoch(self.epoch);
                format!("{:04}-{:02}-{:02}", c.year, c.month, c.day)
            }
            DateStyle::UsSlash => {
                let c = civil_from_epoch(self.epoch);
                format!("{:02}/{:02}/{:04}", c.month, c.day, c.year)
            }
            DateStyle::Epoch => self.epoch.to_string(),
        }
    }

    /// Formats the date (in UTC) with a strftime-like format string.
    ///
    /// Supported directives: `%Y %y %m %d %b %H %M %S %D` (= `%m/%d/%y`),
    /// `%T` (= `%H:%M:%S`), `%s` (epoch seconds), `%%`.
    /// Unrecognised directives are emitted literally.
    pub fn format(&self, fmt: &str) -> String {
        let c = civil_from_epoch(self.epoch);
        let mut out = String::with_capacity(fmt.len() + 8);
        let mut chars = fmt.chars();
        while let Some(ch) = chars.next() {
            if ch != '%' {
                out.push(ch);
                continue;
            }
            match chars.next() {
                Some('Y') => out.push_str(&format!("{:04}", c.year)),
                Some('y') => out.push_str(&format!("{:02}", c.year.rem_euclid(100))),
                Some('m') => out.push_str(&format!("{:02}", c.month)),
                Some('d') => out.push_str(&format!("{:02}", c.day)),
                Some('b') => out.push_str(MONTHS[(c.month - 1) as usize]),
                Some('H') => out.push_str(&format!("{:02}", c.hour)),
                Some('M') => out.push_str(&format!("{:02}", c.minute)),
                Some('S') => out.push_str(&format!("{:02}", c.second)),
                Some('D') => out.push_str(&format!(
                    "{:02}/{:02}/{:02}",
                    c.month,
                    c.day,
                    c.year.rem_euclid(100)
                )),
                Some('T') => {
                    out.push_str(&format!("{:02}:{:02}:{:02}", c.hour, c.minute, c.second))
                }
                Some('s') => out.push_str(&self.epoch.to_string()),
                Some('%') => out.push('%'),
                Some(other) => {
                    out.push('%');
                    out.push(other);
                }
                None => out.push('%'),
            }
        }
        out
    }
}

impl Default for PDate {
    /// The epoch instant, in epoch-seconds style.
    fn default() -> PDate {
        PDate { epoch: 0, tz_minutes: 0, style: DateStyle::Epoch }
    }
}

impl std::fmt::Display for PDate {
    /// Displays the date in its original on-disk style.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_original())
    }
}

fn month_from_abbrev(s: &str) -> Option<u32> {
    MONTHS.iter().position(|m| m.eq_ignore_ascii_case(s)).map(|i| i as u32 + 1)
}

fn parse_clf(text: &str) -> Option<PDate> {
    // dd/Mon/yyyy:HH:MM:SS [+-]HHMM
    let b = text.as_bytes();
    if b.len() != 26 {
        return None;
    }
    let day: u32 = text.get(0..2)?.parse().ok()?;
    if b[2] != b'/' || b[6] != b'/' || b[11] != b':' || b[14] != b':' || b[17] != b':' || b[20] != b' '
    {
        return None;
    }
    let month = month_from_abbrev(text.get(3..6)?)?;
    let year: i64 = text.get(7..11)?.parse().ok()?;
    let hour: u32 = text.get(12..14)?.parse().ok()?;
    let minute: u32 = text.get(15..17)?.parse().ok()?;
    let second: u32 = text.get(18..20)?.parse().ok()?;
    let sign: i32 = match b[21] {
        b'+' => 1,
        b'-' => -1,
        _ => return None,
    };
    let tzh: i32 = text.get(22..24)?.parse().ok()?;
    let tzm: i32 = text.get(24..26)?.parse().ok()?;
    if !valid_hms(hour, minute, second) || !valid_md(month, day) {
        return None;
    }
    let tz_minutes = sign * (tzh * 60 + tzm);
    let local = Civil { year, month, day, hour, minute, second };
    Some(PDate {
        epoch: epoch_from_civil(&local) - tz_minutes as i64 * 60,
        tz_minutes,
        style: DateStyle::Clf,
    })
}

fn valid_hms(h: u32, m: u32, s: u32) -> bool {
    h < 24 && m < 60 && s < 60
}

fn valid_md(m: u32, d: u32) -> bool {
    (1..=12).contains(&m) && (1..=31).contains(&d)
}

fn parse_iso_datetime(text: &str) -> Option<PDate> {
    // yyyy-mm-ddTHH:MM:SS
    let b = text.as_bytes();
    if b.len() != 19 || b[4] != b'-' || b[7] != b'-' || b[10] != b'T' || b[13] != b':' || b[16] != b':'
    {
        return None;
    }
    let year: i64 = text.get(0..4)?.parse().ok()?;
    let month: u32 = text.get(5..7)?.parse().ok()?;
    let day: u32 = text.get(8..10)?.parse().ok()?;
    let hour: u32 = text.get(11..13)?.parse().ok()?;
    let minute: u32 = text.get(14..16)?.parse().ok()?;
    let second: u32 = text.get(17..19)?.parse().ok()?;
    if !valid_hms(hour, minute, second) || !valid_md(month, day) {
        return None;
    }
    let c = Civil { year, month, day, hour, minute, second };
    Some(PDate { epoch: epoch_from_civil(&c), tz_minutes: 0, style: DateStyle::IsoDateTime })
}

fn parse_iso_date(text: &str) -> Option<PDate> {
    let b = text.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return None;
    }
    let year: i64 = text.get(0..4)?.parse().ok()?;
    let month: u32 = text.get(5..7)?.parse().ok()?;
    let day: u32 = text.get(8..10)?.parse().ok()?;
    if !valid_md(month, day) {
        return None;
    }
    let c = Civil { year, month, day, hour: 0, minute: 0, second: 0 };
    Some(PDate { epoch: epoch_from_civil(&c), tz_minutes: 0, style: DateStyle::IsoDate })
}

fn parse_us_slash(text: &str) -> Option<PDate> {
    let mut parts = text.split('/');
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    let ystr = parts.next()?;
    if parts.next().is_some() || !valid_md(month, day) {
        return None;
    }
    let year: i64 = match ystr.len() {
        2 => {
            let y: i64 = ystr.parse().ok()?;
            if y < 70 {
                2000 + y
            } else {
                1900 + y
            }
        }
        4 => ystr.parse().ok()?,
        _ => return None,
    };
    let c = Civil { year, month, day, hour: 0, minute: 0, second: 0 };
    Some(PDate { epoch: epoch_from_civil(&c), tz_minutes: 0, style: DateStyle::UsSlash })
}

fn parse_epoch(text: &str) -> Option<PDate> {
    if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let epoch: i64 = text.parse().ok()?;
    Some(PDate { epoch, tz_minutes: 0, style: DateStyle::Epoch })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_round_trip() {
        for &days in &[-719_468i64, -1, 0, 1, 10_957, 2_932_896] {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
    }

    #[test]
    fn clf_date_from_figure_2() {
        let d = PDate::parse("15/Oct/1997:18:46:51 -0700").expect("parses");
        assert_eq!(d.style, DateStyle::Clf);
        assert_eq!(d.tz_minutes, -420);
        // 18:46:51 -0700 is 01:46:51 UTC the next day.
        let c = civil_from_epoch(d.epoch);
        assert_eq!((c.year, c.month, c.day, c.hour, c.minute, c.second), (1997, 10, 16, 1, 46, 51));
        assert_eq!(d.to_original(), "15/Oct/1997:18:46:51 -0700");
        // The %D:%T output of Figure 8.
        assert_eq!(d.format("%D:%T"), "10/16/97:01:46:51");
    }

    #[test]
    fn iso_styles() {
        let d = PDate::parse("2002-04-14").unwrap();
        assert_eq!(d.style, DateStyle::IsoDate);
        assert_eq!(d.to_original(), "2002-04-14");
        let dt = PDate::parse("2002-04-14T06:30:00").unwrap();
        assert_eq!(dt.epoch - d.epoch, 6 * 3600 + 30 * 60);
    }

    #[test]
    fn us_slash_two_and_four_digit_years() {
        let d = PDate::parse("10/16/97").unwrap();
        assert_eq!(civil_from_epoch(d.epoch).year, 1997);
        let d = PDate::parse("01/02/2003").unwrap();
        assert_eq!(civil_from_epoch(d.epoch).year, 2003);
        let d = PDate::parse("05/05/25").unwrap();
        assert_eq!(civil_from_epoch(d.epoch).year, 2025);
    }

    #[test]
    fn epoch_style() {
        let d = PDate::parse("1005022800").unwrap();
        assert_eq!(d.style, DateStyle::Epoch);
        assert_eq!(d.epoch, 1_005_022_800);
        assert_eq!(d.to_original(), "1005022800");
    }

    #[test]
    fn rejects_garbage() {
        assert!(PDate::parse("").is_none());
        assert!(PDate::parse("not a date").is_none());
        assert!(PDate::parse("15/Oct/1997").is_none());
        assert!(PDate::parse("99/99/1999").is_none());
        assert!(PDate::parse("2002-13-40").is_none());
    }

    #[test]
    fn format_directives() {
        let d = PDate::parse("1997-10-16T01:46:51").unwrap();
        assert_eq!(d.format("%Y-%m-%d %H:%M:%S"), "1997-10-16 01:46:51");
        assert_eq!(d.format("%b %y"), "Oct 97");
        assert_eq!(d.format("100%%"), "100%");
        assert_eq!(d.format("%s"), d.epoch.to_string());
        assert_eq!(d.format("%q"), "%q");
    }
}
