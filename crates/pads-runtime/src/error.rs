//! Error codes, source locations, and parse states.
//!
//! PADS parsers never abort on bad data: every detected problem is recorded
//! as an [`ErrorCode`] plus a [`Loc`] inside a parse descriptor, and parsing
//! continues (possibly in panic/recovery mode). This module defines that
//! vocabulary, mirroring `PerrCode_t`, `Ploc_t`, and `Pflags_t` from the
//! generated C library of the paper (Figure 6).

/// A position in the input: absolute byte offset plus record coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// Absolute byte offset from the start of the source.
    pub offset: usize,
    /// Zero-based index of the enclosing record (0 when outside any record).
    pub record: usize,
    /// Byte offset within the enclosing record.
    pub byte: usize,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "record {} byte {} (offset {})", self.record, self.byte, self.offset)
    }
}

/// A half-open source span `[begin, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Loc {
    /// First byte of the offending region.
    pub begin: Pos,
    /// One past the last byte of the offending region.
    pub end: Pos,
}

impl Loc {
    /// Builds a location from two positions.
    pub fn new(begin: Pos, end: Pos) -> Loc {
        Loc { begin, end }
    }

    /// A zero-width location at `pos`.
    pub fn at(pos: Pos) -> Loc {
        Loc { begin: pos, end: pos }
    }
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.begin.offset, self.end.offset)
    }
}

/// Parse-state flags (`Pflags_t` in the paper: Normal, Partial, Panicking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParseState {
    /// The parse completed normally (though constraints may have failed).
    #[default]
    Ok,
    /// Part of the value was filled in before an unrecoverable problem.
    Partial,
    /// The parser entered panic mode and scanned for a synchronisation point.
    Panic,
}

impl std::fmt::Display for ParseState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParseState::Ok => "ok",
            ParseState::Partial => "partial",
            ParseState::Panic => "panic",
        };
        f.write_str(s)
    }
}

/// Every distinct error the runtime and interpreter can report.
///
/// The set covers the three classes the paper names in §1: system errors
/// (I/O), syntax errors (physical-format deviations), and semantic errors
/// (user-constraint violations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[non_exhaustive]
pub enum ErrorCode {
    /// No error.
    #[default]
    Good,
    // ---- system errors -------------------------------------------------
    /// Underlying input could not be read.
    IoError,
    // ---- syntax errors --------------------------------------------------
    /// Input ended before the type was fully parsed.
    UnexpectedEof,
    /// Record ended before the type was fully parsed.
    UnexpectedEor,
    /// A record shorter than the fixed record width.
    RecordTooShort,
    /// No record terminator found (e.g. missing final newline is tolerated,
    /// but a length-prefixed record overrunning the source is not).
    BadRecordHeader,
    /// A literal character or string in the description did not match.
    LitMismatch,
    /// A regular-expression literal or `Pstring_ME` pattern did not match.
    RegexMismatch,
    /// A digit was expected (integer base types).
    InvalidDigit,
    /// The parsed number does not fit the declared width.
    RangeError,
    /// Invalid character for the ambient coding (e.g. non-EBCDIC digit).
    BadCharset,
    /// A string terminator was not found before the read limit.
    TermNotFound,
    /// Malformed IP address.
    BadIp,
    /// Malformed hostname.
    BadHostname,
    /// Malformed date.
    BadDate,
    /// Malformed zip code.
    BadZip,
    /// Malformed floating-point number.
    BadFloat,
    /// Packed/zoned decimal with an invalid nibble.
    BadDecimal,
    /// No branch of a `Punion` parsed successfully.
    UnionNoBranch,
    /// A `Pswitch` selector matched no case and there is no default.
    SwitchNoMatch,
    /// No `Penum` variant matched.
    EnumNoMatch,
    /// An array separator was expected but not found.
    ArraySepMismatch,
    /// An array terminator was expected but not found.
    ArrayTermMismatch,
    /// An array did not reach its declared size.
    ArraySizeMismatch,
    /// Unconsumed data remained before the end of a record.
    ExtraDataBeforeEor,
    /// Unconsumed data remained at the end of the source.
    ExtraDataAtEof,
    // ---- semantic errors ------------------------------------------------
    /// A field or typedef constraint evaluated to false.
    ConstraintViolation,
    /// A `Pwhere` clause evaluated to false.
    WhereViolation,
    /// A `Pforall` body evaluated to false for some index.
    ForallViolation,
    /// A user expression failed to evaluate (type error, missing field, …).
    EvalError,
    // ---- aggregation ----------------------------------------------------
    /// Errors occurred in one or more nested components.
    NestedError,
    /// The parser panicked and skipped data to resynchronise.
    PanicSkipped,
    // ---- resource discipline --------------------------------------------
    /// The error budget of the active [`RecoveryPolicy`](crate::recovery::RecoveryPolicy)
    /// was exhausted and this record was skipped without being parsed.
    BudgetExhausted,
    /// An internal parser invariant was violated (a bug or API misuse that
    /// would previously have aborted the process). Never caused by the
    /// data itself.
    InternalError,
    // ---- durability (checkpoint journal) ---------------------------------
    /// A checkpoint journal file is empty, too short, or does not start
    /// with the journal magic/version header.
    JournalBadHeader,
    /// A complete journal frame failed CRC validation: the file was
    /// corrupted in place (not torn by a crash).
    JournalCrcMismatch,
    /// Journal checkpoints regressed or duplicated: a later frame does not
    /// advance past the previous one.
    JournalOutOfOrder,
    /// The journal was written against a different source (length or
    /// content fingerprint mismatch).
    JournalSourceMismatch,
    /// The journal's final frame was torn mid-write (crash artifact). The
    /// tail is truncated to the last valid frame and the open *recovers*;
    /// this code labels the recovery notice, never a hard failure.
    JournalTornTail,
}

impl ErrorCode {
    /// Every variant, in declaration order. The single source of truth for
    /// [`ErrorCode::from_name`] and for exhaustiveness tests.
    pub const ALL: &'static [ErrorCode] = &[
        ErrorCode::Good,
        ErrorCode::IoError,
        ErrorCode::UnexpectedEof,
        ErrorCode::UnexpectedEor,
        ErrorCode::RecordTooShort,
        ErrorCode::BadRecordHeader,
        ErrorCode::LitMismatch,
        ErrorCode::RegexMismatch,
        ErrorCode::InvalidDigit,
        ErrorCode::RangeError,
        ErrorCode::BadCharset,
        ErrorCode::TermNotFound,
        ErrorCode::BadIp,
        ErrorCode::BadHostname,
        ErrorCode::BadDate,
        ErrorCode::BadZip,
        ErrorCode::BadFloat,
        ErrorCode::BadDecimal,
        ErrorCode::UnionNoBranch,
        ErrorCode::SwitchNoMatch,
        ErrorCode::EnumNoMatch,
        ErrorCode::ArraySepMismatch,
        ErrorCode::ArrayTermMismatch,
        ErrorCode::ArraySizeMismatch,
        ErrorCode::ExtraDataBeforeEor,
        ErrorCode::ExtraDataAtEof,
        ErrorCode::ConstraintViolation,
        ErrorCode::WhereViolation,
        ErrorCode::ForallViolation,
        ErrorCode::EvalError,
        ErrorCode::NestedError,
        ErrorCode::PanicSkipped,
        ErrorCode::BudgetExhausted,
        ErrorCode::InternalError,
        ErrorCode::JournalBadHeader,
        ErrorCode::JournalCrcMismatch,
        ErrorCode::JournalOutOfOrder,
        ErrorCode::JournalSourceMismatch,
        ErrorCode::JournalTornTail,
    ];

    /// Whether this code represents an actual error.
    pub fn is_error(self) -> bool {
        self != ErrorCode::Good
    }

    /// Resolves a stable variant name (the [`ErrorCode::name`] form) back
    /// to its code. Used when deserialising persisted metric labels; an
    /// unknown name (e.g. from a newer writer) is `None`, never an error.
    pub fn from_name(name: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// The stable variant name, for metric labels and machine-readable
    /// output (the [`Display`](std::fmt::Display) form is prose).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Good => "Good",
            ErrorCode::IoError => "IoError",
            ErrorCode::UnexpectedEof => "UnexpectedEof",
            ErrorCode::UnexpectedEor => "UnexpectedEor",
            ErrorCode::RecordTooShort => "RecordTooShort",
            ErrorCode::BadRecordHeader => "BadRecordHeader",
            ErrorCode::LitMismatch => "LitMismatch",
            ErrorCode::RegexMismatch => "RegexMismatch",
            ErrorCode::InvalidDigit => "InvalidDigit",
            ErrorCode::RangeError => "RangeError",
            ErrorCode::BadCharset => "BadCharset",
            ErrorCode::TermNotFound => "TermNotFound",
            ErrorCode::BadIp => "BadIp",
            ErrorCode::BadHostname => "BadHostname",
            ErrorCode::BadDate => "BadDate",
            ErrorCode::BadZip => "BadZip",
            ErrorCode::BadFloat => "BadFloat",
            ErrorCode::BadDecimal => "BadDecimal",
            ErrorCode::UnionNoBranch => "UnionNoBranch",
            ErrorCode::SwitchNoMatch => "SwitchNoMatch",
            ErrorCode::EnumNoMatch => "EnumNoMatch",
            ErrorCode::ArraySepMismatch => "ArraySepMismatch",
            ErrorCode::ArrayTermMismatch => "ArrayTermMismatch",
            ErrorCode::ArraySizeMismatch => "ArraySizeMismatch",
            ErrorCode::ExtraDataBeforeEor => "ExtraDataBeforeEor",
            ErrorCode::ExtraDataAtEof => "ExtraDataAtEof",
            ErrorCode::ConstraintViolation => "ConstraintViolation",
            ErrorCode::WhereViolation => "WhereViolation",
            ErrorCode::ForallViolation => "ForallViolation",
            ErrorCode::EvalError => "EvalError",
            ErrorCode::NestedError => "NestedError",
            ErrorCode::PanicSkipped => "PanicSkipped",
            ErrorCode::BudgetExhausted => "BudgetExhausted",
            ErrorCode::InternalError => "InternalError",
            ErrorCode::JournalBadHeader => "JournalBadHeader",
            ErrorCode::JournalCrcMismatch => "JournalCrcMismatch",
            ErrorCode::JournalOutOfOrder => "JournalOutOfOrder",
            ErrorCode::JournalSourceMismatch => "JournalSourceMismatch",
            ErrorCode::JournalTornTail => "JournalTornTail",
        }
    }

    /// Whether the error is semantic (constraint-level) rather than
    /// syntactic: the value was parsed, but violates a user predicate.
    pub fn is_semantic(self) -> bool {
        matches!(
            self,
            ErrorCode::ConstraintViolation
                | ErrorCode::WhereViolation
                | ErrorCode::ForallViolation
                | ErrorCode::EvalError
        )
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Good => "no error",
            ErrorCode::IoError => "i/o error",
            ErrorCode::UnexpectedEof => "unexpected end of input",
            ErrorCode::UnexpectedEor => "unexpected end of record",
            ErrorCode::RecordTooShort => "record shorter than fixed width",
            ErrorCode::BadRecordHeader => "bad record length header",
            ErrorCode::LitMismatch => "literal did not match",
            ErrorCode::RegexMismatch => "regular expression did not match",
            ErrorCode::InvalidDigit => "expected a digit",
            ErrorCode::RangeError => "number out of range for type",
            ErrorCode::BadCharset => "byte invalid for ambient coding",
            ErrorCode::TermNotFound => "terminator not found",
            ErrorCode::BadIp => "invalid IP address syntax",
            ErrorCode::BadHostname => "invalid hostname syntax",
            ErrorCode::BadDate => "invalid date",
            ErrorCode::BadZip => "invalid zip code",
            ErrorCode::BadFloat => "invalid floating-point number",
            ErrorCode::BadDecimal => "invalid packed or zoned decimal",
            ErrorCode::UnionNoBranch => "no union branch matched",
            ErrorCode::SwitchNoMatch => "switch selector matched no case",
            ErrorCode::EnumNoMatch => "no enum variant matched",
            ErrorCode::ArraySepMismatch => "array separator not found",
            ErrorCode::ArrayTermMismatch => "array terminator not found",
            ErrorCode::ArraySizeMismatch => "array size mismatch",
            ErrorCode::ExtraDataBeforeEor => "unconsumed data before end of record",
            ErrorCode::ExtraDataAtEof => "unconsumed data at end of source",
            ErrorCode::ConstraintViolation => "constraint violated",
            ErrorCode::WhereViolation => "where-clause violated",
            ErrorCode::ForallViolation => "forall constraint violated",
            ErrorCode::EvalError => "constraint expression failed to evaluate",
            ErrorCode::NestedError => "errors in nested components",
            ErrorCode::PanicSkipped => "data skipped during panic recovery",
            ErrorCode::BudgetExhausted => "error budget exhausted; record skipped",
            ErrorCode::InternalError => "internal parser invariant violated",
            ErrorCode::JournalBadHeader => "journal missing or malformed header",
            ErrorCode::JournalCrcMismatch => "journal frame failed CRC validation",
            ErrorCode::JournalOutOfOrder => "journal checkpoints regress or duplicate",
            ErrorCode::JournalSourceMismatch => "journal was written for a different source",
            ErrorCode::JournalTornTail => "journal tail torn mid-frame; truncated to last valid checkpoint",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ErrorCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_classification() {
        assert!(ErrorCode::ConstraintViolation.is_semantic());
        assert!(ErrorCode::ForallViolation.is_semantic());
        assert!(!ErrorCode::LitMismatch.is_semantic());
        assert!(!ErrorCode::Good.is_error());
        assert!(ErrorCode::RangeError.is_error());
    }

    #[test]
    fn display_is_lowercase_without_period() {
        let msg = ErrorCode::UnionNoBranch.to_string();
        assert!(msg.chars().next().unwrap().is_lowercase());
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn names_roundtrip_through_from_name() {
        for &code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_name(code.name()), Some(code));
        }
        assert_eq!(ErrorCode::from_name("NoSuchCode"), None);
    }

    #[test]
    fn all_names_are_distinct() {
        let mut names: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ErrorCode::ALL.len());
    }
}
