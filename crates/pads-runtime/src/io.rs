//! The input cursor: byte-level reads bounded by record structure.
//!
//! The paper (§3, end) observes that the notion of a record varies by
//! encoding: ASCII sources delimit with newlines, binary sources use fixed
//! widths, and Cobol sources prefix each record with its length. PADS lets
//! the user pick a record *discipline* before parsing; a [`Cursor`] enforces
//! it by limiting every read to the current record, which is also what makes
//! panic-mode recovery possible (skip to the record boundary and resume).
//!
//! For the paper's very-large-source requirement (§1: netflow at 1 Gbit/s,
//! 300 M calls/day), a cursor never copies the input: it is a window over a
//! caller-owned byte slice, and the interpreter exposes record-at-a-time and
//! element-at-a-time entry points on top of it.

use std::cell::RefCell;
use std::rc::Rc;

use pads_regex::Regex;

use crate::cache::KeyedCache;
use crate::encoding::{Charset, Endian};
use crate::error::{ErrorCode, Loc, Pos};
use crate::metrics::MetricsHandle;
use crate::observe::{ObsHandle, RecoveryEvent};
use crate::pd::ParseDesc;
use crate::recovery::{ErrorBudget, OnExhausted, RecoveryPolicy};
use crate::scan;

/// A shared compiled-regex cache. Cursors cloned from one another (and all
/// cursors built by one parser) share a single cache, so each `Pre` pattern
/// in a schema compiles once per parser, not once per cursor or per call.
/// Bounded ([`REGEX_CACHE_CAPACITY`] entries, LRU) so hot-loading many
/// schemas through one parser cannot grow it without limit.
pub type RegexCache = Rc<RefCell<KeyedCache<String, Rc<Regex>>>>;

/// Capacity of a parser's [`RegexCache`]; far above any realistic number
/// of distinct `Pre` patterns in one schema.
pub const REGEX_CACHE_CAPACITY: usize = 256;

/// A fresh empty [`RegexCache`] at the standard capacity.
pub fn new_regex_cache() -> RegexCache {
    Rc::new(RefCell::new(KeyedCache::new(REGEX_CACHE_CAPACITY)))
}

/// How a source is divided into records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordDiscipline {
    /// Records are terminated by `\n` (the PADS default for ASCII data).
    #[default]
    Newline,
    /// Every record is exactly this many bytes (binary call detail).
    FixedWidth(usize),
    /// Each record is preceded by its length (Cobol wire formats). The
    /// header itself is not part of the record content.
    LengthPrefixed {
        /// Size of the length header in bytes (2 or 4).
        header_bytes: usize,
        /// Byte order of the header.
        endian: Endian,
    },
    /// The whole source is one record.
    None,
}

/// A saved cursor state, used to backtrack after failed union branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    pos: usize,
    bit_off: u8,
    rec_index: usize,
    rec_start: usize,
    rec_end: Option<usize>,
}

/// Outcome of closing a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordClose {
    /// Bytes that were skipped because the parser had not consumed the
    /// whole record.
    pub skipped: usize,
}

/// A read-only parsing cursor over a byte source.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    /// Bits of `data[pos]` already consumed by `read_bits` (0–7). Byte-level
    /// reads align forward, discarding any partial byte (C bit-field padding
    /// semantics).
    bit_off: u8,
    charset: Charset,
    endian: Endian,
    disc: RecordDiscipline,
    rec_index: usize,
    rec_start: usize,
    rec_end: Option<usize>,
    regexes: RegexCache,
    policy: RecoveryPolicy,
    budget: ErrorBudget,
    obs: Option<ObsHandle>,
    /// Dense-id metrics core; clones of the cursor share it. Separate
    /// from `obs` so the metrics hot path is a slab bump, not a dynamic
    /// dispatch — see [`crate::metrics`].
    core: Option<MetricsHandle>,
    /// Cached at attach time: the core's profiler needs the full
    /// enter/exit stream, so event-eliding fast paths must stand down.
    core_profiled: bool,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor with the default newline record discipline, ASCII
    /// ambient charset, and big-endian ambient byte order.
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor {
            data,
            pos: 0,
            bit_off: 0,
            charset: Charset::Ascii,
            endian: Endian::Big,
            disc: RecordDiscipline::Newline,
            rec_index: 0,
            rec_start: 0,
            rec_end: None,
            regexes: new_regex_cache(),
            policy: RecoveryPolicy::default(),
            budget: ErrorBudget::new(),
            obs: None,
            core: None,
            core_profiled: false,
        }
    }

    /// Positions the cursor at a committed record boundary (builder style):
    /// byte `offset` becomes the start of record number `record`. Used by
    /// resume paths that re-open a source at a checkpoint; `offset` is
    /// clamped to the source length.
    pub fn with_start(mut self, offset: usize, record: usize) -> Cursor<'a> {
        let offset = offset.min(self.data.len());
        self.pos = offset;
        self.bit_off = 0;
        self.rec_start = offset;
        self.rec_end = None;
        self.rec_index = record;
        self
    }

    /// Sets the record discipline (builder style).
    pub fn with_discipline(mut self, disc: RecordDiscipline) -> Cursor<'a> {
        self.disc = disc;
        self
    }

    /// Sets the ambient charset (builder style).
    pub fn with_charset(mut self, charset: Charset) -> Cursor<'a> {
        self.charset = charset;
        self
    }

    /// Sets the ambient byte order for binary base types (builder style).
    pub fn with_endian(mut self, endian: Endian) -> Cursor<'a> {
        self.endian = endian;
        self
    }

    /// Sets the error-budget policy (builder style).
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Cursor<'a> {
        self.policy = policy;
        self
    }

    /// Attaches an observer that will receive parse events (builder
    /// style). Clones of the cursor share the same observer.
    pub fn with_observer(mut self, obs: ObsHandle) -> Cursor<'a> {
        self.obs = Some(obs);
        self
    }

    /// Attaches a dense-id metrics core (builder style). Clones of the
    /// cursor share the same core. Unlike [`with_observer`], events feed
    /// flat counter slabs by node id — the metrics hot path — and a
    /// core-only cursor keeps the generated event-eliding fast paths
    /// (unless the core is profiling, which needs every event).
    ///
    /// [`with_observer`]: Cursor::with_observer
    pub fn with_metrics(mut self, core: MetricsHandle) -> Cursor<'a> {
        self.core_profiled = core.borrow().profiling();
        self.core = Some(core);
        self
    }

    /// Shares a compiled-regex cache (builder style). Parsers seed every
    /// cursor they build with one per-parser cache so `Pre` patterns
    /// compile once per schema.
    pub fn with_regex_cache(mut self, cache: RegexCache) -> Cursor<'a> {
        self.regexes = cache;
        self
    }

    /// The cursor's compiled-regex cache (shared, cheap to clone).
    pub fn regex_cache(&self) -> RegexCache {
        Rc::clone(&self.regexes)
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// The running error-budget tally.
    pub fn budget(&self) -> ErrorBudget {
        self.budget
    }

    /// Replaces the budget tally. Used by streaming front-ends that build a
    /// fresh per-record cursor but must carry the source-level tally across
    /// records.
    pub fn set_budget(&mut self, budget: ErrorBudget) {
        self.budget = budget;
    }

    /// Folds one closed record's error count and panic-skip bytes into the
    /// budget, applying the policy. Both parsing engines call this exactly
    /// once per record they close.
    ///
    /// Because this is the single shared accounting point, the recovery
    /// events it emits (panic-mode skips and the budget-exhaustion
    /// transition) are identical between the interpreter and generated
    /// code by construction.
    pub fn note_record_errors(&mut self, nerr: u32, panic_skipped: u64) {
        let was_exhausted = self.budget.exhausted();
        self.budget.note_record(&self.policy, nerr, panic_skipped);
        let exhausted_now = !was_exhausted && self.budget.exhausted();
        if panic_skipped > 0 || exhausted_now {
            if let Some(core) = &self.core {
                let mut c = core.borrow_mut();
                if panic_skipped > 0 {
                    c.note_recovery(RecoveryEvent::PanicSkip { bytes: panic_skipped });
                }
                if exhausted_now {
                    c.note_recovery(RecoveryEvent::BudgetExhausted {
                        mode: self.policy.on_exhausted,
                    });
                }
            }
        }
        if let Some(obs) = &self.obs {
            let pos = self.position();
            if panic_skipped > 0 {
                obs.with(|o| o.recovery(RecoveryEvent::PanicSkip { bytes: panic_skipped }, pos));
            }
            if exhausted_now {
                let mode = self.policy.on_exhausted;
                obs.with(|o| o.recovery(RecoveryEvent::BudgetExhausted { mode }, pos));
            }
        }
    }

    /// Records one record skipped wholesale under
    /// [`OnExhausted::SkipRecord`].
    pub fn note_skipped_record(&mut self) {
        self.budget.note_skipped_record();
        if let Some(core) = &self.core {
            core.borrow_mut().note_recovery(RecoveryEvent::SkipRecord);
        }
        if let Some(obs) = &self.obs {
            let pos = self.position();
            obs.with(|o| o.recovery(RecoveryEvent::SkipRecord, pos));
        }
    }

    /// Whether any observation is attached (full event stream or dense
    /// metrics core). Hot paths test this once and skip event
    /// construction entirely when it is false.
    #[inline]
    pub fn observing(&self) -> bool {
        self.obs.is_some() || self.core.is_some()
    }

    /// Whether the attached observation needs the *full* enter/exit event
    /// stream: a legacy observer is present, or the metrics core is
    /// profiling. Generated event-eliding fast paths (fixed-prefix
    /// commits) gate on this rather than [`observing`](Cursor::observing):
    /// a plain counting core can be fed statically-known per-type bumps
    /// without the events themselves.
    #[inline]
    pub fn observing_events(&self) -> bool {
        self.obs.is_some() || self.core_profiled
    }

    /// Whether a dense metrics core is attached.
    #[inline]
    pub fn metrics_on(&self) -> bool {
        self.core.is_some()
    }

    /// Emits a type-enter event at the current position.
    #[inline]
    pub fn observe_enter(&self, name: &str) {
        self.observe_enter_id(u32::MAX, name);
    }

    /// Emits a type-enter event at the current position, identifying the
    /// type by dense node id (see [`crate::metrics::ObsSchema`]) as well
    /// as by name — the id feeds the metrics core's flat slabs, the name
    /// feeds legacy observers (borrowed, never allocated). An id the
    /// core does not trust falls back to interning the name.
    #[inline]
    pub fn observe_enter_id(&self, id: u32, name: &str) {
        if self.core_profiled {
            if let Some(core) = &self.core {
                core.borrow_mut().enter_id(id, name, self.offset());
            }
        }
        if let Some(obs) = &self.obs {
            let pos = self.position();
            obs.with(|o| o.type_enter(name, pos));
        }
    }

    /// Emits a type-exit event for a parse entered at `start` whose final
    /// descriptor is `pd`.
    #[inline]
    pub fn observe_exit(&self, name: &str, start: Pos, pd: &ParseDesc) {
        self.observe_exit_id(u32::MAX, name, start, pd);
    }

    /// Emits a type-exit event, identifying the type by dense node id as
    /// well as by name — the metrics hot path (one counter-slab bump on
    /// the core, no string work).
    #[inline]
    pub fn observe_exit_id(&self, id: u32, name: &str, start: Pos, pd: &ParseDesc) {
        if let Some(core) = &self.core {
            core.borrow_mut().exit_id(id, name, start.offset, self.offset(), pd.nerr);
        }
        if let Some(obs) = &self.obs {
            let end = self.position();
            obs.with(|o| o.type_exit(name, start, end, pd));
        }
    }

    /// The counting-only exit hook: one slab bump on the metrics core,
    /// no event construction. Generated wrappers call this instead of
    /// the [`observe_enter_id`](Cursor::observe_enter_id)/
    /// [`observe_exit_id`](Cursor::observe_exit_id) pair when
    /// [`observing_events`](Cursor::observing_events) is false — a plain
    /// core needs neither enter events nor full positions, only the
    /// span's byte offsets.
    #[inline]
    pub fn metrics_exit(&self, id: u32, name: &str, start_off: usize, pd: &ParseDesc) {
        if let Some(core) = &self.core {
            core.borrow_mut().exit_id(id, name, start_off, self.offset(), pd.nerr);
        }
    }

    /// Feeds the metrics core the statically-known per-type stats of a
    /// committed fixed-prefix fast path: for each `(id, name, width)`
    /// the prefix covered, one error-free parse of exactly `width`
    /// bytes. Generated code calls this instead of falling off the fast
    /// path when only a counting core is attached, so metrics-on output
    /// stays byte-identical to the member-loop path.
    pub fn metrics_fixed_prefix(&self, items: &[(u32, &str, u32)]) {
        if let Some(core) = &self.core {
            let mut c = core.borrow_mut();
            for &(id, name, width) in items {
                c.exit_id(id, name, 0, width as usize, 0);
            }
        }
    }

    /// Emits a source-level error event (root errors such as
    /// `ExtraDataAtEof` that are attached outside any record).
    #[inline]
    pub fn observe_error(&self, path: &str, code: ErrorCode, loc: Option<Loc>) {
        if let Some(core) = &self.core {
            core.borrow_mut().note_error(code);
        }
        if let Some(obs) = &self.obs {
            obs.with(|o| o.error(path, code, loc));
        }
    }

    /// Emits the record-boundary event plus one error event per
    /// descriptor error for a record that just closed (or was skipped
    /// wholesale). Both engines call this from their record-close paths
    /// after truncation, so the event streams agree by construction.
    ///
    /// The metrics core is fed through the allocation-free
    /// [`ParseDesc::visit_error_codes`] walk (codes only — it never
    /// builds path strings); legacy observers still receive the full
    /// `(path, code, loc)` triples.
    pub fn observe_record_close(&self, pd: &ParseDesc) {
        let end = self.position();
        let index = self.rec_index.saturating_sub(1);
        let begin = Pos { offset: self.rec_start, record: index, byte: 0 };
        if let Some(core) = &self.core {
            let mut c = core.borrow_mut();
            if pd.nerr > 0 {
                pd.visit_error_codes(&mut |code| c.note_error(code));
            }
            c.note_record(end.offset.saturating_sub(begin.offset) as u64, pd.nerr);
        }
        if let Some(obs) = &self.obs {
            obs.with(|o| {
                for (path, code, loc) in pd.errors() {
                    o.error(&path, code, loc);
                }
                o.record(index, Loc::new(begin, end), pd.nerr);
            });
        }
    }

    /// Whether the budget is exhausted and further records should be framed
    /// but not parsed.
    pub fn skip_records(&self) -> bool {
        self.budget.exhausted() && self.policy.on_exhausted == OnExhausted::SkipRecord
    }

    /// Whether the budget is exhausted and descriptors should be flattened
    /// to their aggregate counts.
    pub fn best_effort(&self) -> bool {
        self.budget.exhausted() && self.policy.on_exhausted == OnExhausted::BestEffort
    }

    /// Whether the budget tripped in [`OnExhausted::Stop`] mode. When true,
    /// [`at_eof`](Cursor::at_eof) also reports true so iteration ends.
    pub fn stopped(&self) -> bool {
        self.budget.stopped()
    }

    /// The ambient charset.
    pub fn charset(&self) -> Charset {
        self.charset
    }

    /// The ambient byte order.
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// The record discipline.
    pub fn discipline(&self) -> RecordDiscipline {
        self.disc
    }

    /// Current absolute byte offset. When bits of the current byte have
    /// been consumed by [`read_bits`](Cursor::read_bits), this is the next
    /// *whole* byte (partial bytes pad forward, like C bit fields).
    pub fn offset(&self) -> usize {
        self.pos + (self.bit_off != 0) as usize
    }

    /// Discards any partially consumed byte, aligning to the next byte
    /// boundary.
    fn align(&mut self) {
        if self.bit_off != 0 {
            self.bit_off = 0;
            self.pos += 1;
        }
    }

    /// Reads `n` bits (1–64), most significant bit of each byte first,
    /// crossing byte boundaries as needed — the §9 bit-field construct.
    ///
    /// # Errors
    ///
    /// * [`ErrorCode::EvalError`] when `n` is 0 or greater than 64.
    /// * [`ErrorCode::UnexpectedEor`] / [`ErrorCode::UnexpectedEof`] when
    ///   the record or source ends mid-read (no bits are un-consumed).
    pub fn read_bits(&mut self, n: u32) -> Result<u64, ErrorCode> {
        if n == 0 || n > 64 {
            return Err(ErrorCode::EvalError);
        }
        let mut v: u64 = 0;
        for _ in 0..n {
            if self.pos >= self.limit() {
                return Err(if self.in_record() {
                    ErrorCode::UnexpectedEor
                } else {
                    ErrorCode::UnexpectedEof
                });
            }
            let bit = (self.data[self.pos] >> (7 - self.bit_off)) & 1;
            v = (v << 1) | bit as u64;
            self.bit_off += 1;
            if self.bit_off == 8 {
                self.bit_off = 0;
                self.pos += 1;
            }
        }
        Ok(v)
    }

    /// Full position (record coordinates included).
    pub fn position(&self) -> Pos {
        let p = self.offset();
        Pos { offset: p, record: self.rec_index, byte: p.saturating_sub(self.rec_start) }
    }

    /// Whether the cursor is inside an open record.
    pub fn in_record(&self) -> bool {
        self.rec_end.is_some()
    }

    /// Exclusive upper bound for reads: the current record end, or the end
    /// of the source when no record is open.
    pub fn limit(&self) -> usize {
        self.rec_end.unwrap_or(self.data.len())
    }

    /// Bytes available before the read limit (a partially consumed byte
    /// does not count).
    pub fn remaining(&self) -> usize {
        self.limit().saturating_sub(self.offset())
    }

    /// Whether the source is exhausted. Also true once the error budget has
    /// tripped in [`OnExhausted::Stop`] mode: the remaining input is
    /// deliberately left unread, and every loop conditioned on end-of-input
    /// terminates without reporting further errors.
    pub fn at_eof(&self) -> bool {
        self.budget.stopped() || self.offset() >= self.data.len()
    }

    /// Whether the cursor sits at the end of the current record. Outside an
    /// open record this reports whether the next byte is a record boundary
    /// under the discipline (newline, or end of source).
    pub fn at_eor(&self) -> bool {
        match self.rec_end {
            Some(end) => self.offset() >= end,
            None => match self.disc {
                RecordDiscipline::Newline => {
                    self.at_eof() || self.data[self.offset()] == self.charset.encode(b'\n')
                }
                _ => self.at_eof(),
            },
        }
    }

    /// Opens the record beginning at the current position. A no-op when a
    /// record is already open (nested `Precord` types share the outer
    /// record).
    ///
    /// # Errors
    ///
    /// * [`ErrorCode::UnexpectedEof`] at end of source.
    /// * [`ErrorCode::RecordTooShort`] when a fixed-width record overruns
    ///   the source; the record is truncated to the available bytes.
    /// * [`ErrorCode::BadRecordHeader`] when a length-prefixed header is
    ///   malformed or overruns; the rest of the source becomes the record.
    pub fn begin_record(&mut self) -> Result<(), ErrorCode> {
        if self.in_record() {
            return Ok(());
        }
        if self.at_eof() {
            return Err(ErrorCode::UnexpectedEof);
        }
        self.align();
        self.rec_start = self.pos;
        match self.disc {
            RecordDiscipline::Newline => {
                let nl = self.charset.encode(b'\n');
                let end = scan::find_byte(&self.data[self.pos..], nl)
                    .map(|i| self.pos + i)
                    .unwrap_or(self.data.len());
                self.rec_end = Some(end);
                Ok(())
            }
            RecordDiscipline::FixedWidth(n) => {
                if self.pos + n <= self.data.len() {
                    self.rec_end = Some(self.pos + n);
                    Ok(())
                } else {
                    self.rec_end = Some(self.data.len());
                    Err(ErrorCode::RecordTooShort)
                }
            }
            RecordDiscipline::LengthPrefixed { header_bytes, endian } => {
                if header_bytes > self.data.len() - self.pos {
                    self.rec_end = Some(self.data.len());
                    return Err(ErrorCode::BadRecordHeader);
                }
                let hdr = &self.data[self.pos..self.pos + header_bytes];
                // Oversized headers (> usize) saturate rather than overflow;
                // a saturated length can never fit the source, so the
                // overrun check below reports BadRecordHeader.
                let mut len: usize = 0;
                let fold = |len: usize, b: u8| {
                    len.checked_mul(256).map_or(usize::MAX, |l| l | b as usize)
                };
                match endian {
                    Endian::Big => {
                        for &b in hdr {
                            len = fold(len, b);
                        }
                    }
                    Endian::Little => {
                        for &b in hdr.iter().rev() {
                            len = fold(len, b);
                        }
                    }
                }
                self.pos += header_bytes;
                self.rec_start = self.pos;
                if len <= self.data.len() - self.pos {
                    self.rec_end = Some(self.pos + len);
                    Ok(())
                } else {
                    self.rec_end = Some(self.data.len());
                    Err(ErrorCode::BadRecordHeader)
                }
            }
            RecordDiscipline::None => {
                self.rec_end = Some(self.data.len());
                Ok(())
            }
        }
    }

    /// Closes the current record: skips any unconsumed bytes, consumes the
    /// record terminator if the discipline has one, and bumps the record
    /// index. Returns how many content bytes were skipped.
    pub fn end_record(&mut self) -> RecordClose {
        self.align();
        let end = self.limit();
        let skipped = end.saturating_sub(self.pos);
        self.pos = end;
        if let RecordDiscipline::Newline = self.disc {
            if self.pos < self.data.len() && self.data[self.pos] == self.charset.encode(b'\n') {
                self.pos += 1;
            }
        }
        self.rec_end = None;
        self.rec_index += 1;
        RecordClose { skipped }
    }

    /// Saves the cursor state for later [`restore`](Cursor::restore).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            pos: self.pos,
            bit_off: self.bit_off,
            rec_index: self.rec_index,
            rec_start: self.rec_start,
            rec_end: self.rec_end,
        }
    }

    /// Restores a previously saved state.
    pub fn restore(&mut self, cp: Checkpoint) {
        self.pos = cp.pos;
        self.bit_off = cp.bit_off;
        self.rec_index = cp.rec_index;
        self.rec_start = cp.rec_start;
        self.rec_end = cp.rec_end;
    }

    /// The next raw byte within the read limit, without consuming it
    /// (skipping any partially consumed byte).
    pub fn peek(&self) -> Option<u8> {
        let p = self.offset();
        (p < self.limit()).then(|| self.data[p])
    }

    /// The raw byte `i` positions ahead, within the read limit.
    pub fn peek_at(&self, i: usize) -> Option<u8> {
        let p = self.offset() + i;
        (p < self.limit()).then(|| self.data[p])
    }

    /// Consumes and returns the next raw byte within the limit.
    pub fn next_byte(&mut self) -> Option<u8> {
        self.align();
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    /// Advances by `n` bytes, clamped to the read limit. Returns how many
    /// bytes were actually consumed.
    pub fn advance(&mut self, n: usize) -> usize {
        self.align();
        let take = n.min(self.remaining());
        self.pos += take;
        take
    }

    /// Consumes exactly `n` raw bytes, or fails without consuming.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ErrorCode> {
        if self.remaining() < n {
            return Err(if self.in_record() {
                ErrorCode::UnexpectedEor
            } else {
                ErrorCode::UnexpectedEof
            });
        }
        self.align();
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// The unread bytes of the current record (or source).
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.offset()..self.limit()]
    }

    /// Distance to the first occurrence of raw byte `b` within the limit.
    /// The record bound is applied once — `rest()` is a slice ending at
    /// [`limit()`](Cursor::limit) — and the scan kernel runs on the slice
    /// with no per-byte limit checks.
    pub fn find_byte(&self, b: u8) -> Option<usize> {
        scan::find_byte(self.rest(), b)
    }

    /// Distance to the first occurrence of either raw byte within the limit.
    pub fn find_byte2(&self, a: u8, b: u8) -> Option<usize> {
        scan::find_byte2(self.rest(), a, b)
    }

    /// Distance to the first occurrence of the raw byte sequence `raw`
    /// within the limit.
    pub fn find_literal(&self, raw: &[u8]) -> Option<usize> {
        scan::find_literal(self.rest(), raw)
    }

    /// Length of the longest run of bytes at the cursor that are members of
    /// `class`, bounded by the record limit.
    pub fn skip_class(&self, class: &scan::ClassBitmap) -> usize {
        scan::skip_class(self.rest(), class)
    }

    /// Matches the raw byte sequence `raw` at the cursor, consuming it on
    /// success.
    pub fn match_bytes(&mut self, raw: &[u8]) -> bool {
        if self.rest().starts_with(raw) {
            self.align();
            self.pos += raw.len();
            true
        } else {
            false
        }
    }

    /// Returns the compiled regex for `pattern`, caching compilations in
    /// the shared [`RegexCache`] (per parser, surviving across cursors).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::RegexMismatch`] when the pattern itself is invalid.
    pub fn regex(&mut self, pattern: &str) -> Result<Rc<Regex>, ErrorCode> {
        if let Some(re) = self.regexes.borrow_mut().get(pattern) {
            return Ok(re);
        }
        let re = Rc::new(Regex::new(pattern).map_err(|_| ErrorCode::RegexMismatch)?);
        self.regexes.borrow_mut().insert(pattern.to_owned(), Rc::clone(&re));
        Ok(re)
    }

    /// Matches `re` at the cursor against the current record contents,
    /// consuming the longest match. Returns the matched raw bytes.
    pub fn match_regex(&mut self, re: &Regex) -> Option<&'a [u8]> {
        let hay = self.rest();
        let end = re.match_at(hay, 0)?;
        let s = &hay[..end];
        self.align();
        self.pos += end;
        Some(s)
    }

    /// Entire underlying source.
    pub fn source(&self) -> &'a [u8] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newline_records() {
        let mut c = Cursor::new(b"ab\ncd\n");
        c.begin_record().unwrap();
        assert_eq!(c.remaining(), 2);
        assert_eq!(c.next_byte(), Some(b'a'));
        assert_eq!(c.next_byte(), Some(b'b'));
        assert!(c.at_eor());
        assert_eq!(c.next_byte(), None);
        let close = c.end_record();
        assert_eq!(close.skipped, 0);
        c.begin_record().unwrap();
        assert_eq!(c.rest(), b"cd");
        let close = c.end_record();
        assert_eq!(close.skipped, 2);
        assert!(c.at_eof());
        assert!(c.begin_record().is_err());
    }

    #[test]
    fn last_record_without_newline() {
        let mut c = Cursor::new(b"ab\ncd");
        c.begin_record().unwrap();
        c.end_record();
        c.begin_record().unwrap();
        assert_eq!(c.rest(), b"cd");
        c.end_record();
        assert!(c.at_eof());
    }

    #[test]
    fn fixed_width_records() {
        let mut c = Cursor::new(b"aabbc").with_discipline(RecordDiscipline::FixedWidth(2));
        c.begin_record().unwrap();
        assert_eq!(c.rest(), b"aa");
        c.end_record();
        c.begin_record().unwrap();
        assert_eq!(c.rest(), b"bb");
        c.end_record();
        // Short trailing record.
        assert_eq!(c.begin_record(), Err(ErrorCode::RecordTooShort));
        assert_eq!(c.rest(), b"c");
    }

    #[test]
    fn length_prefixed_records() {
        let data = [0u8, 3, b'x', b'y', b'z', 0, 1, b'q'];
        let mut c = Cursor::new(&data).with_discipline(RecordDiscipline::LengthPrefixed {
            header_bytes: 2,
            endian: Endian::Big,
        });
        c.begin_record().unwrap();
        assert_eq!(c.rest(), b"xyz");
        c.end_record();
        c.begin_record().unwrap();
        assert_eq!(c.rest(), b"q");
        c.end_record();
        assert!(c.at_eof());
    }

    #[test]
    fn length_prefixed_overrun_is_flagged() {
        let data = [0u8, 9, b'x'];
        let mut c = Cursor::new(&data).with_discipline(RecordDiscipline::LengthPrefixed {
            header_bytes: 2,
            endian: Endian::Big,
        });
        assert_eq!(c.begin_record(), Err(ErrorCode::BadRecordHeader));
        assert_eq!(c.rest(), b"x");
    }

    #[test]
    fn reads_are_limited_to_record() {
        let mut c = Cursor::new(b"ab|cd\nxx\n");
        c.begin_record().unwrap();
        assert_eq!(c.find_byte(b'x'), None);
        assert_eq!(c.find_byte(b'|'), Some(2));
        assert!(c.take(9).is_err());
        assert_eq!(c.take(5).unwrap(), b"ab|cd");
    }

    #[test]
    fn checkpoint_restores_position() {
        let mut c = Cursor::new(b"hello\n");
        c.begin_record().unwrap();
        let cp = c.checkpoint();
        c.advance(3);
        assert_eq!(c.position().byte, 3);
        c.restore(cp);
        assert_eq!(c.position().byte, 0);
        assert_eq!(c.rest(), b"hello");
    }

    #[test]
    fn match_bytes_and_regex() {
        let mut c = Cursor::new(b"HTTP/1.0 rest\n");
        c.begin_record().unwrap();
        assert!(c.match_bytes(b"HTTP/"));
        assert!(!c.match_bytes(b"2.0"));
        let re = c.regex(r"\d+\.\d+").unwrap();
        assert_eq!(c.match_regex(&re), Some(&b"1.0"[..]));
        assert_eq!(c.position().byte, 8);
    }

    #[test]
    fn position_tracks_records() {
        let mut c = Cursor::new(b"a\nb\n");
        c.begin_record().unwrap();
        c.end_record();
        c.begin_record().unwrap();
        let p = c.position();
        assert_eq!(p.record, 1);
        assert_eq!(p.byte, 0);
        assert_eq!(p.offset, 2);
    }

    #[test]
    fn length_prefixed_oversized_header_is_flagged_not_panicked() {
        // A 16-byte header cannot fit in usize; the length saturates and the
        // overrun check reports BadRecordHeader instead of overflowing.
        let data = [0xFFu8; 20];
        let mut c = Cursor::new(&data).with_discipline(RecordDiscipline::LengthPrefixed {
            header_bytes: 16,
            endian: Endian::Big,
        });
        assert_eq!(c.begin_record(), Err(ErrorCode::BadRecordHeader));
        // The rest of the source became the record; closing drains it.
        let close = c.end_record();
        assert_eq!(close.skipped, 4);
        assert!(c.at_eof());
    }

    #[test]
    fn length_prefixed_truncated_header_is_flagged() {
        let data = [0u8];
        let mut c = Cursor::new(&data).with_discipline(RecordDiscipline::LengthPrefixed {
            header_bytes: 2,
            endian: Endian::Big,
        });
        assert_eq!(c.begin_record(), Err(ErrorCode::BadRecordHeader));
    }

    #[test]
    fn checkpoint_round_trips_partial_byte_reads() {
        let mut c = Cursor::new(&[0b1011_0001, 0b1110_0000]);
        assert_eq!(c.read_bits(3).unwrap(), 0b101);
        let cp = c.checkpoint();
        assert_eq!(c.read_bits(7).unwrap(), 0b1_0001_11);
        c.restore(cp);
        // bit_off must be restored: the same 7 bits read again.
        assert_eq!(c.read_bits(7).unwrap(), 0b1_0001_11);
        c.restore(cp);
        // Byte-aligned reads after restore pad forward past the partial byte.
        assert_eq!(c.offset(), 1);
        assert_eq!(c.next_byte(), Some(0b1110_0000));
    }

    #[test]
    fn stop_mode_budget_makes_cursor_report_eof() {
        let policy = RecoveryPolicy::unlimited().with_max_errs(1);
        let mut c = Cursor::new(b"a\nb\nc\n").with_policy(policy);
        c.begin_record().unwrap();
        c.end_record();
        c.note_record_errors(2, 0);
        assert!(c.stopped());
        assert!(c.at_eof());
        assert!(c.begin_record().is_err());
    }

    #[test]
    fn skip_and_best_effort_modes_do_not_stop() {
        let policy =
            RecoveryPolicy::unlimited().with_max_errs(0).with_on_exhausted(OnExhausted::SkipRecord);
        let mut c = Cursor::new(b"a\nb\n").with_policy(policy);
        c.note_record_errors(1, 0);
        assert!(c.skip_records());
        assert!(!c.best_effort());
        assert!(!c.at_eof());

        let policy =
            RecoveryPolicy::unlimited().with_max_errs(0).with_on_exhausted(OnExhausted::BestEffort);
        let mut c = Cursor::new(b"a\nb\n").with_policy(policy);
        c.note_record_errors(1, 0);
        assert!(c.best_effort());
        assert!(!c.skip_records());
        assert!(!c.at_eof());
    }

    #[test]
    fn ebcdic_newline_discipline() {
        // EBCDIC LF is 0x25.
        let data = [0xC1, 0x25, 0xC2, 0x25];
        let mut c = Cursor::new(&data).with_charset(Charset::Ebcdic);
        c.begin_record().unwrap();
        assert_eq!(c.rest(), &[0xC1]);
        c.end_record();
        c.begin_record().unwrap();
        assert_eq!(c.rest(), &[0xC2]);
    }
}
