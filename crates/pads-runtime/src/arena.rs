//! Arena-backed borrowed values: the zero-copy record tier.
//!
//! The owned `Value` tree (in `pads-core`) heap-allocates every string
//! leaf, every struct field list, every union box. That is the right
//! shape for long-lived results, but a batch pipeline that inspects each
//! record and moves on pays the full allocation cost for values that live
//! microseconds. [`ValueArena`] is the alternative: one bump arena holds a
//! whole batch of records as flat index-linked nodes, string leaves borrow
//! directly from the input buffer whenever decoding is the identity
//! (ASCII charset, pure-ASCII bytes — the same rule as
//! [`Charset::decode_text_cow`](crate::Charset::decode_text_cow)), and
//! structure names are dense per-schema [`NameId`]s interned once in a
//! [`NameTable`] (the `ObsSchema` dense-id pattern) so no per-record name
//! `String` or `Arc` traffic exists at all. Between batches
//! [`ValueArena::reset`] is O(1): the backing vectors are truncated, their
//! capacity retained.
//!
//! The arena is the meeting point of both engines: generated parsers
//! lower their typed values into it without allocating (borrowed `PStr`
//! leaves stay borrowed), and the interpreter bridges owned `Value` trees
//! in (`pads-core`'s `arena` module). [`AValRef`] exposes enough structure
//! for a byte-identical conversion back to the owned representation — the
//! equivalence the batch writers and accumulators rely on.

use crate::date::PDate;
use crate::name::Name;
use crate::prim::Prim;

/// Dense identifier for an interned structure name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// Per-schema name interning table: every field, branch, and variant name
/// the schema can produce, mapped to a dense id exactly once. Records then
/// carry `u32`s, never name strings.
#[derive(Debug, Default)]
pub struct NameTable {
    names: Vec<Name>,
}

impl NameTable {
    /// An empty table.
    pub fn new() -> NameTable {
        NameTable::default()
    }

    /// Interns `name`, returning its dense id (existing id if already
    /// present). Linear scan: tables hold a schema's worth of names
    /// (dozens), and interning happens at table build, never per record.
    pub fn intern(&mut self, name: impl Into<Name>) -> NameId {
        let name = name.into();
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return NameId(i as u32);
        }
        self.names.push(name);
        NameId((self.names.len() - 1) as u32)
    }

    /// The interned name for `id`.
    pub fn name(&self, id: NameId) -> &Name {
        &self.names[id.0 as usize]
    }

    /// Looks up a name's id without interning.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.names.iter().position(|n| n == name).map(|i| NameId(i as u32))
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Handle to a value stored in a [`ValueArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AVal(u32);

/// A string leaf: borrowed from the input when decoding was the identity,
/// spilled into the arena's own text heap otherwise. Either way, no
/// per-record `String` exists.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AStr<'d> {
    Borrowed(&'d str),
    Spilled { start: u32, len: u32 },
}

/// One arena node. Structural nodes reference contiguous spans of the
/// side tables (`named` for struct fields, `kids` for array elements), so
/// a node is a fixed-size entry and a record is a cache-friendly cluster
/// of adjacent entries.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ANode<'d> {
    Unit,
    Bool(bool),
    Char(u8),
    Int(i64),
    Uint(u64),
    Float(f64),
    Str(AStr<'d>),
    Bytes { start: u32, len: u32 },
    Ip([u8; 4]),
    Date(PDate),
    Struct { start: u32, len: u32 },
    Union { name: NameId, index: u32, value: AVal },
    Array { start: u32, len: u32 },
    Enum { name: NameId, index: u32 },
    OptNone,
    OptSome(AVal),
}

/// The per-batch bump arena. See the module docs for the design.
#[derive(Debug, Default)]
pub struct ValueArena<'d> {
    nodes: Vec<ANode<'d>>,
    /// Struct field lists: `(name, value)` spans referenced by `Struct`.
    named: Vec<(NameId, AVal)>,
    /// Array element lists referenced by `Array`.
    kids: Vec<AVal>,
    /// Spill heap for strings that had to be decoded (non-identity
    /// charsets). Amortised: grows to the high-water mark, then stops.
    text: String,
    /// Spill heap for byte leaves.
    bytes: Vec<u8>,
    /// Reusable handle stack for building arrays without a caller-side
    /// `Vec` (see [`ValueArena::array_from_scratch`]).
    scratch: Vec<AVal>,
}

impl<'d> ValueArena<'d> {
    /// An empty arena.
    pub fn new() -> ValueArena<'d> {
        ValueArena::default()
    }

    /// Forgets every value in O(1), retaining all capacity. Handles
    /// (`AVal`) from before the reset must not be used afterwards.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.named.clear();
        self.kids.clear();
        self.text.clear();
        self.bytes.clear();
        self.scratch.clear();
    }

    /// Number of live nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no values.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: ANode<'d>) -> AVal {
        self.nodes.push(node);
        AVal((self.nodes.len() - 1) as u32)
    }

    /// A primitive leaf from an owned [`Prim`] (strings spill).
    pub fn prim(&mut self, p: &Prim) -> AVal {
        match p {
            Prim::Unit => self.unit(),
            Prim::Bool(b) => self.bool(*b),
            Prim::Char(c) => self.char(*c),
            Prim::Int(i) => self.int(*i),
            Prim::Uint(u) => self.uint(*u),
            Prim::Float(f) => self.float(*f),
            Prim::String(s) => self.str_spilled(s),
            Prim::Bytes(b) => self.bytes(b),
            Prim::Ip(ip) => self.ip(*ip),
            Prim::Date(d) => self.date(*d),
        }
    }

    /// A unit leaf.
    pub fn unit(&mut self) -> AVal {
        self.push(ANode::Unit)
    }

    /// An unsigned-integer leaf.
    pub fn uint(&mut self, v: u64) -> AVal {
        self.push(ANode::Uint(v))
    }

    /// A signed-integer leaf.
    pub fn int(&mut self, v: i64) -> AVal {
        self.push(ANode::Int(v))
    }

    /// A float leaf.
    pub fn float(&mut self, v: f64) -> AVal {
        self.push(ANode::Float(v))
    }

    /// A boolean leaf.
    pub fn bool(&mut self, v: bool) -> AVal {
        self.push(ANode::Bool(v))
    }

    /// A character leaf.
    pub fn char(&mut self, v: u8) -> AVal {
        self.push(ANode::Char(v))
    }

    /// An IPv4 leaf.
    pub fn ip(&mut self, v: [u8; 4]) -> AVal {
        self.push(ANode::Ip(v))
    }

    /// A date leaf.
    pub fn date(&mut self, v: PDate) -> AVal {
        self.push(ANode::Date(v))
    }

    /// A string leaf borrowing from the input buffer — the zero-copy hot
    /// path for every identity-decodable text field.
    pub fn str_borrowed(&mut self, s: &'d str) -> AVal {
        self.push(ANode::Str(AStr::Borrowed(s)))
    }

    /// A string leaf copied into the arena's text heap (non-identity
    /// decodes). Amortised — no per-record allocation once the heap has
    /// grown to its high-water mark.
    pub fn str_spilled(&mut self, s: &str) -> AVal {
        let start = self.text.len() as u32;
        self.text.push_str(s);
        self.push(ANode::Str(AStr::Spilled { start, len: s.len() as u32 }))
    }

    /// A string leaf from a [`Cow`](std::borrow::Cow): borrowed stays
    /// borrowed, owned spills.
    pub fn str_cow(&mut self, s: std::borrow::Cow<'d, str>) -> AVal {
        match s {
            std::borrow::Cow::Borrowed(b) => self.str_borrowed(b),
            std::borrow::Cow::Owned(o) => self.str_spilled(&o),
        }
    }

    /// A bytes leaf (always spilled; byte leaves are rare).
    pub fn bytes(&mut self, b: &[u8]) -> AVal {
        let start = self.bytes.len() as u32;
        self.bytes.extend_from_slice(b);
        self.push(ANode::Bytes { start, len: b.len() as u32 })
    }

    /// A struct node over `(name, value)` pairs.
    pub fn strct(&mut self, fields: &[(NameId, AVal)]) -> AVal {
        let start = self.named.len() as u32;
        self.named.extend_from_slice(fields);
        self.push(ANode::Struct { start, len: fields.len() as u32 })
    }

    /// A union node.
    pub fn union(&mut self, name: NameId, index: usize, value: AVal) -> AVal {
        self.push(ANode::Union { name, index: index as u32, value })
    }

    /// An array node over element handles.
    pub fn array(&mut self, elts: &[AVal]) -> AVal {
        let start = self.kids.len() as u32;
        self.kids.extend_from_slice(elts);
        self.push(ANode::Array { start, len: elts.len() as u32 })
    }

    /// An enum node.
    pub fn enumv(&mut self, name: NameId, index: usize) -> AVal {
        self.push(ANode::Enum { name, index: index as u32 })
    }

    /// Current scratch depth; pass back to
    /// [`array_from_scratch`](Self::array_from_scratch). Scratch marks
    /// nest, so recursive lowerings (arrays of arrays) compose.
    pub fn scratch_mark(&self) -> usize {
        self.scratch.len()
    }

    /// Pushes an element handle for the array being built.
    pub fn scratch_push(&mut self, v: AVal) {
        self.scratch.push(v);
    }

    /// An array node over the handles pushed since `mark` — the
    /// allocation-free alternative to [`array`](Self::array): the scratch
    /// stack lives in the arena and amortises like everything else.
    pub fn array_from_scratch(&mut self, mark: usize) -> AVal {
        let start = self.kids.len() as u32;
        let len = (self.scratch.len() - mark) as u32;
        self.kids.extend(self.scratch.drain(mark..));
        self.push(ANode::Array { start, len })
    }

    /// An absent optional.
    pub fn opt_none(&mut self) -> AVal {
        self.push(ANode::OptNone)
    }

    /// A present optional.
    pub fn opt_some(&mut self, value: AVal) -> AVal {
        self.push(ANode::OptSome(value))
    }

    /// A read-only reference to a stored value.
    pub fn get<'a>(&'a self, v: AVal) -> AValRef<'a, 'd> {
        AValRef { arena: self, val: v }
    }
}

/// Navigable view of an arena value, mirroring the owned `Value` API.
#[derive(Debug, Clone, Copy)]
pub struct AValRef<'a, 'd> {
    arena: &'a ValueArena<'d>,
    val: AVal,
}

/// Shape of an arena value, as seen through [`AValRef::shape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AShape {
    /// A primitive leaf.
    Prim,
    /// A struct with N fields.
    Struct(usize),
    /// A union (taken branch inside).
    Union,
    /// An array with N elements.
    Array(usize),
    /// An enum variant.
    Enum,
    /// An optional (present or absent).
    Opt(bool),
}

impl<'a, 'd> AValRef<'a, 'd> {
    fn node(&self) -> &'a ANode<'d> {
        &self.arena.nodes[self.val.0 as usize]
    }

    /// The value's structural shape.
    pub fn shape(&self) -> AShape {
        match self.node() {
            ANode::Struct { len, .. } => AShape::Struct(*len as usize),
            ANode::Union { .. } => AShape::Union,
            ANode::Array { len, .. } => AShape::Array(*len as usize),
            ANode::Enum { .. } => AShape::Enum,
            ANode::OptNone => AShape::Opt(false),
            ANode::OptSome(_) => AShape::Opt(true),
            _ => AShape::Prim,
        }
    }

    /// Owned primitive for a leaf node (string/bytes copy out; this is
    /// the owned-conversion path, not the zero-copy one).
    pub fn prim(&self) -> Option<Prim> {
        Some(match self.node() {
            ANode::Unit => Prim::Unit,
            ANode::Bool(b) => Prim::Bool(*b),
            ANode::Char(c) => Prim::Char(*c),
            ANode::Int(i) => Prim::Int(*i),
            ANode::Uint(u) => Prim::Uint(*u),
            ANode::Float(f) => Prim::Float(*f),
            ANode::Str(_) => Prim::String(self.as_str()?.to_owned()),
            ANode::Bytes { .. } => Prim::Bytes(self.as_bytes()?.to_vec()),
            ANode::Ip(ip) => Prim::Ip(*ip),
            ANode::Date(d) => Prim::Date(*d),
            _ => return None,
        })
    }

    /// String view of a text leaf (borrowed or spilled).
    pub fn as_str(&self) -> Option<&'a str> {
        match self.node() {
            ANode::Str(AStr::Borrowed(s)) => Some(s),
            ANode::Str(AStr::Spilled { start, len }) => {
                Some(&self.arena.text[*start as usize..(*start + *len) as usize])
            }
            ANode::OptSome(v) => self.arena.get(*v).as_str(),
            _ => None,
        }
    }

    /// Byte view of a bytes leaf.
    pub fn as_bytes(&self) -> Option<&'a [u8]> {
        match self.node() {
            ANode::Bytes { start, len } => {
                Some(&self.arena.bytes[*start as usize..(*start + *len) as usize])
            }
            _ => None,
        }
    }

    /// Unsigned view through prim/enum/present-option layers.
    pub fn as_u64(&self) -> Option<u64> {
        match self.node() {
            ANode::Uint(v) => Some(*v),
            ANode::Int(v) => u64::try_from(*v).ok(),
            ANode::Char(c) => Some(*c as u64),
            ANode::Bool(b) => Some(*b as u64),
            ANode::Enum { index, .. } => Some(*index as u64),
            ANode::OptSome(v) => self.arena.get(*v).as_u64(),
            _ => None,
        }
    }

    /// Struct field by name.
    pub fn field(&self, name: &str, names: &NameTable) -> Option<AValRef<'a, 'd>> {
        let id = names.lookup(name)?;
        match self.node() {
            ANode::Struct { start, len } => self.arena.named
                [*start as usize..(*start + *len) as usize]
                .iter()
                .find(|(n, _)| *n == id)
                .map(|(_, v)| self.arena.get(*v)),
            _ => None,
        }
    }

    /// Struct fields in declaration order.
    pub fn fields(&self) -> impl Iterator<Item = (NameId, AValRef<'a, 'd>)> + 'a {
        let arena = self.arena;
        let range = match self.node() {
            ANode::Struct { start, len } => *start as usize..(*start + *len) as usize,
            _ => 0..0,
        };
        arena.named[range].iter().map(move |(n, v)| (*n, arena.get(*v)))
    }

    /// Struct field by position — random access for columnar appenders
    /// that must not allocate an intermediate field list per row.
    pub fn field_at(&self, i: usize) -> Option<(NameId, AValRef<'a, 'd>)> {
        match self.node() {
            ANode::Struct { start, len } if i < *len as usize => {
                let (n, v) = self.arena.named[*start as usize + i];
                Some((n, self.arena.get(v)))
            }
            _ => None,
        }
    }

    /// Array element by index.
    pub fn index(&self, i: usize) -> Option<AValRef<'a, 'd>> {
        match self.node() {
            ANode::Array { start, len } if i < *len as usize => {
                Some(self.arena.get(self.arena.kids[*start as usize + i]))
            }
            _ => None,
        }
    }

    /// Array elements in order.
    pub fn elements(&self) -> impl Iterator<Item = AValRef<'a, 'd>> + 'a {
        let arena = self.arena;
        let range = match self.node() {
            ANode::Array { start, len } => *start as usize..(*start + *len) as usize,
            _ => 0..0,
        };
        arena.kids[range].iter().map(move |v| arena.get(*v))
    }

    /// The taken union branch: `(name, index, value)`.
    pub fn branch(&self) -> Option<(NameId, usize, AValRef<'a, 'd>)> {
        match self.node() {
            ANode::Union { name, index, value } => {
                Some((*name, *index as usize, self.arena.get(*value)))
            }
            _ => None,
        }
    }

    /// The enum variant: `(name, index)`.
    pub fn variant(&self) -> Option<(NameId, usize)> {
        match self.node() {
            ANode::Enum { name, index } => Some((*name, *index as usize)),
            _ => None,
        }
    }

    /// The optional's inner value, when this is a present optional.
    /// Distinguish "absent" from "not an optional" via [`shape`](Self::shape).
    pub fn opt_inner(&self) -> Option<AValRef<'a, 'd>> {
        match self.node() {
            ANode::OptSome(v) => Some(self.arena.get(*v)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_table_dedupes() {
        let mut names = NameTable::new();
        let a = names.intern("host");
        let b = names.intern("host");
        assert_eq!(a, b);
        assert_eq!(names.len(), 1);
        assert_eq!(names.name(a), "host");
        assert_eq!(names.lookup("host"), Some(a));
        assert_eq!(names.lookup("nope"), None);
    }

    #[test]
    fn borrowed_and_spilled_strings_read_identically() {
        let data = b"GET /index.html";
        let s = std::str::from_utf8(&data[0..3]).unwrap();
        let mut arena = ValueArena::new();
        let b = arena.str_borrowed(s);
        let sp = arena.str_spilled("GET");
        assert_eq!(arena.get(b).as_str(), Some("GET"));
        assert_eq!(arena.get(sp).as_str(), Some("GET"));
        let cow_b = arena.str_cow(std::borrow::Cow::Borrowed(s));
        let cow_o = arena.str_cow(std::borrow::Cow::Owned("GET".to_owned()));
        assert_eq!(arena.get(cow_b).as_str(), Some("GET"));
        assert_eq!(arena.get(cow_o).as_str(), Some("GET"));
    }

    #[test]
    fn navigation_over_nested_structure() {
        let mut arena = ValueArena::new();
        let mut names = NameTable::new();
        let n_ts = names.intern("tstamp");
        let n_events = names.intern("events");
        let n_ramp = names.intern("ramp");
        let n_gen = names.intern("genRamp");

        let t1 = arena.uint(10);
        let e1 = arena.strct(&[(n_ts, t1)]);
        let t2 = arena.uint(20);
        let e2 = arena.strct(&[(n_ts, t2)]);
        let arr = arena.array(&[e1, e2]);
        let rampv = arena.uint(152_272);
        let ramp = arena.union(n_gen, 1, rampv);
        let rec = arena.strct(&[(n_events, arr), (n_ramp, ramp)]);

        let r = arena.get(rec);
        assert_eq!(r.shape(), AShape::Struct(2));
        let events = r.field("events", &names).unwrap();
        assert_eq!(events.shape(), AShape::Array(2));
        assert_eq!(
            events.index(1).unwrap().field("tstamp", &names).unwrap().as_u64(),
            Some(20)
        );
        assert_eq!(events.elements().count(), 2);
        let (bn, bi, bv) = r.field("ramp", &names).unwrap().branch().unwrap();
        assert_eq!(names.name(bn), "genRamp");
        assert_eq!(bi, 1);
        assert_eq!(bv.as_u64(), Some(152_272));
    }

    #[test]
    fn optionals_and_enums() {
        let mut arena = ValueArena::new();
        let mut names = NameTable::new();
        let n_put = names.intern("PUT");
        let e = arena.enumv(n_put, 1);
        let inner = arena.uint(5);
        let some = arena.opt_some(inner);
        let none = arena.opt_none();
        assert_eq!(arena.get(e).variant().map(|(_, i)| i), Some(1));
        assert_eq!(arena.get(e).as_u64(), Some(1));
        assert_eq!(arena.get(some).shape(), AShape::Opt(true));
        assert_eq!(arena.get(some).as_u64(), Some(5));
        assert_eq!(arena.get(some).opt_inner().unwrap().as_u64(), Some(5));
        assert_eq!(arena.get(none).shape(), AShape::Opt(false));
        assert!(arena.get(none).opt_inner().is_none());
    }

    #[test]
    fn reset_is_o1_and_retains_capacity() {
        let mut arena = ValueArena::new();
        for i in 0..100 {
            let v = arena.uint(i);
            let s = arena.str_spilled("xyz");
            arena.strct(&[(NameId(0), v), (NameId(1), s)]);
        }
        let nodes_cap = arena.nodes.capacity();
        let text_cap = arena.text.capacity();
        assert!(nodes_cap > 0 && text_cap > 0);
        arena.reset();
        assert!(arena.is_empty());
        assert_eq!(arena.nodes.capacity(), nodes_cap);
        assert_eq!(arena.text.capacity(), text_cap);
    }
}
