//! `pads` — command-line tools generated from PADS descriptions.
//!
//! The original system shipped "wrappers that build tools to summarize the
//! data, format it, or convert it to XML" (§1). This binary is that
//! surface:
//!
//! ```text
//! pads check  <descr.pads> [--lint[=deny|warn|allow]] verify (and lint) a description
//!             [--lint-format=json]              machine-readable diagnostics
//! pads diff   <old.pads> <new.pads>             schema-evolution check (PD0xx)
//! pads parse  <descr.pads> <data> [--format {report,xml,none}]  parse; report, XML, or discard
//!             [--trace[=json]]                  dump the parse-span tree
//!             [--metrics[=prom|json]]           emit runtime metrics
//!             [--profile]                       per-node cost table on stderr
//!             [--jobs N]                        record-sharded parallel parse
//!             [--engine {interp,vm}]            execution engine (see docs/VM.md)
//!             [--journal <path> [--resume]]     durable ingest (see docs/DURABILITY.md)
//! pads profile <descr.pads> <data>              per-schema-node cost profile
//!             [--folded]                        folded stacks (flamegraph input)
//!             [--times]                         add sampled self-time column
//! pads accum  <descr.pads> <data> [--summaries]  §5.2 accumulator report
//! pads fmt    <descr.pads> <data> [opts]        §5.3.1 delimited output
//! pads xsd    <descr.pads>                      §5.3.2 XML Schema
//! pads query  <descr.pads> <data> <query>       §5.4 path query (counts matches)
//! pads gen    <descr.pads> [--records N]        §9 conforming random data
//! pads cobol  <copybook>                        copybook -> description
//! pads codegen <descr.pads>                     Rust parser source
//! ```
//!
//! Common options: `--ebcdic`, `--fixed <N>`, `--lenpfx <N>` select the
//! ambient coding / record discipline; `--record <T>` and `--header <T>`
//! pick the §5.2 source shape (default: inferred from the source type).
//! Error budgets (the C runtime's `Pmax_errs` discipline): `--max-errs <N>`,
//! `--max-record-errs <N>`, `--max-panic-skip <N>`, and
//! `--on-overflow <stop|skip|best-effort>`.
//!
//! Durable ingest: `--journal <path>` commits a write-ahead checkpoint
//! (byte offset, record index, error budget, metrics snapshot) every
//! `--checkpoint-records <N>` records or `--checkpoint-bytes <N>` bytes,
//! fsyncing every `--fsync-every <N>` commits; `--resume` continues a
//! killed run from the last valid checkpoint with identical results.
//! `--max-inflight-records <N>` bounds each parallel worker's lead over
//! the in-order merge; `--kill-after <N>` is the crash-test hook.
//!
//! Exit status: 0 on success, 2 when parsing completed but recorded errors
//! in the data, 3 when `pads check --lint` found findings at or above the
//! requested level **or `pads diff` found a breaking change**, 4 when
//! `--journal`/`--resume` found the journal unusable, 1 on hard failure
//! (bad usage, I/O, broken description).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::rc::Rc;

use pads::{
    BaseMask, Charset, Endian, Engine, ErrorCode, Loc, Mask, OnExhausted, PadsParser, ParseDesc,
    ParseOptions, PdKind, RecordDiscipline, RecoveryPolicy, Registry, Schema, Value,
};
use pads_check::ir::{TypeKind, TyUse};
use pads_check::lint;
use pads_observe::{MetricsCore, MetricsHandle, MetricsSink, ObsHandle, TraceSink, WorkerObs};

/// Exit status for "the data had errors but the run completed".
const EXIT_DATA_ERRORS: u8 = 2;

/// Exit status for "the description tripped `--lint` findings".
const EXIT_LINT: u8 = 3;

/// Exit status for "the checkpoint journal is unusable" (missing or
/// malformed on `--resume`, corrupt frames, wrong source).
const EXIT_JOURNAL: u8 = 4;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pads: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Opts {
    positional: Vec<String>,
    charset: Charset,
    discipline: RecordDiscipline,
    record: Option<String>,
    header: Option<String>,
    records: usize,
    seed: u64,
    tracked: usize,
    top: usize,
    delim: String,
    date_fmt: Option<String>,
    /// `--format {report,xml,none}` (parse): the error report (default),
    /// the XML rendering, or nothing — the discard sink parses, prints no
    /// stdout output, and reports only through stderr and the exit code.
    /// `--xml` is shorthand for `--format xml`.
    format: OutputFormat,
    summaries: bool,
    policy: RecoveryPolicy,
    /// `--lint[=deny|warn|allow]`: run the lint passes; render findings at
    /// or above this level and exit 3 when any finding reaches it.
    lint: Option<lint::Level>,
    /// `--lint-format=json`: emit the findings as a deterministic JSON
    /// array on stdout instead of rustc-style text on stderr.
    lint_format: LintFormat,
    /// `--trace[=json]`: dump the parse-span tree (rendered, or JSONL).
    trace: Option<TraceFormat>,
    /// `--metrics[=prom|json]`: emit runtime metrics on stdout after the
    /// parse output, plus a throughput summary line on stderr.
    metrics: Option<MetricsFormat>,
    /// `--profile` (parse): attach the per-schema-node cost profiler and
    /// print the per-node cost table on stderr after the run.
    profile: bool,
    /// `--folded` (profile): emit folded-stack lines (flamegraph input)
    /// instead of the per-node table.
    folded: bool,
    /// `--times` (profile): append the sampled self-time column to the
    /// table (approximate wall-clock — not deterministic).
    times: bool,
    /// `--jobs N`: parse the source's records on up to N worker threads
    /// (record-sharded; byte-identical results to a sequential parse).
    jobs: usize,
    /// `--engine {interp,vm}`: which execution engine runs the schema —
    /// the IR interpreter (default) or the cached bytecode tier
    /// (byte-identical results; see docs/VM.md).
    engine: Engine,
    /// `--journal <path>`: commit checkpoints to this write-ahead journal.
    journal: Option<String>,
    /// `--resume`: continue from the journal's last valid checkpoint.
    resume: bool,
    /// `--checkpoint-records N`: commit every N records (default 1).
    checkpoint_records: u64,
    /// `--checkpoint-bytes N`: also commit once N source bytes have been
    /// consumed since the last checkpoint.
    checkpoint_bytes: Option<u64>,
    /// `--fsync-every N`: fsync the journal every N commits.
    fsync_every: usize,
    /// `--max-inflight-records N`: per-worker bound on records buffered
    /// ahead of the in-order merge.
    max_inflight: usize,
    /// `--kill-after N` (test hook): stop abruptly — no final checkpoint —
    /// after N records have been consumed this run.
    kill_after: Option<u64>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Report,
    Xml,
    None,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<OutputFormat, String> {
        match s {
            "report" => Ok(OutputFormat::Report),
            "xml" => Ok(OutputFormat::Xml),
            "none" => Ok(OutputFormat::None),
            other => Err(format!("--format: expected report, xml, or none, got `{other}`")),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Tree,
    Json,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LintFormat {
    Text,
    Json,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Prom,
    Json,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        charset: Charset::Ascii,
        discipline: RecordDiscipline::Newline,
        record: None,
        header: None,
        records: 10,
        seed: 1,
        tracked: 1000,
        top: 10,
        delim: "|".to_owned(),
        date_fmt: None,
        format: OutputFormat::Report,
        summaries: false,
        policy: RecoveryPolicy::unlimited(),
        lint: None,
        lint_format: LintFormat::Text,
        trace: None,
        metrics: None,
        profile: false,
        folded: false,
        times: false,
        jobs: 1,
        engine: Engine::Interp,
        journal: None,
        resume: false,
        checkpoint_records: 1,
        checkpoint_bytes: None,
        fsync_every: pads_journal::DEFAULT_FSYNC_EVERY,
        max_inflight: pads::DEFAULT_MAX_INFLIGHT,
        kill_after: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--ebcdic" => o.charset = Charset::Ebcdic,
            "--fixed" => {
                let n: usize = grab("--fixed")?.parse().map_err(|_| "--fixed: bad number")?;
                o.discipline = RecordDiscipline::FixedWidth(n);
            }
            "--lenpfx" => {
                let n: usize = grab("--lenpfx")?.parse().map_err(|_| "--lenpfx: bad number")?;
                o.discipline =
                    RecordDiscipline::LengthPrefixed { header_bytes: n, endian: Endian::Big };
            }
            "--record" => o.record = Some(grab("--record")?),
            "--header" => o.header = Some(grab("--header")?),
            "--records" => {
                o.records = grab("--records")?.parse().map_err(|_| "--records: bad number")?
            }
            "--seed" => o.seed = grab("--seed")?.parse().map_err(|_| "--seed: bad number")?,
            "--tracked" => {
                o.tracked = grab("--tracked")?.parse().map_err(|_| "--tracked: bad number")?
            }
            "--top" => o.top = grab("--top")?.parse().map_err(|_| "--top: bad number")?,
            "--jobs" => {
                let n: usize = grab("--jobs")?.parse().map_err(|_| "--jobs: bad number")?;
                if n == 0 {
                    return Err("--jobs: must be at least 1".into());
                }
                o.jobs = n;
            }
            "--engine" => {
                o.engine = match grab("--engine")?.as_str() {
                    "interp" => Engine::Interp,
                    "vm" => Engine::Vm,
                    other => {
                        return Err(format!("--engine: expected interp or vm, got `{other}`"))
                    }
                };
            }
            "--journal" => o.journal = Some(grab("--journal")?),
            "--resume" => o.resume = true,
            "--checkpoint-records" => {
                let n: u64 = grab("--checkpoint-records")?
                    .parse()
                    .map_err(|_| "--checkpoint-records: bad number")?;
                if n == 0 {
                    return Err("--checkpoint-records: must be at least 1".into());
                }
                o.checkpoint_records = n;
            }
            "--checkpoint-bytes" => {
                let n = grab("--checkpoint-bytes")?
                    .parse()
                    .map_err(|_| "--checkpoint-bytes: bad number")?;
                o.checkpoint_bytes = Some(n);
            }
            "--fsync-every" => {
                o.fsync_every =
                    grab("--fsync-every")?.parse().map_err(|_| "--fsync-every: bad number")?;
            }
            "--max-inflight-records" => {
                let n: usize = grab("--max-inflight-records")?
                    .parse()
                    .map_err(|_| "--max-inflight-records: bad number")?;
                if n == 0 {
                    return Err("--max-inflight-records: must be at least 1".into());
                }
                o.max_inflight = n;
            }
            "--kill-after" => {
                o.kill_after = Some(
                    grab("--kill-after")?.parse().map_err(|_| "--kill-after: bad number")?,
                );
            }
            "--delim" => o.delim = grab("--delim")?,
            "--date-fmt" => o.date_fmt = Some(grab("--date-fmt")?),
            "--xml" => o.format = OutputFormat::Xml,
            "--format" => o.format = grab("--format")?.parse()?,
            flag if flag.starts_with("--format=") => {
                o.format = flag["--format=".len()..].parse()?;
            }
            "--summaries" => o.summaries = true,
            "--max-errs" => {
                let n = grab("--max-errs")?.parse().map_err(|_| "--max-errs: bad number")?;
                o.policy = o.policy.with_max_errs(n);
            }
            "--max-record-errs" => {
                let n = grab("--max-record-errs")?
                    .parse()
                    .map_err(|_| "--max-record-errs: bad number")?;
                o.policy = o.policy.with_max_record_errs(n);
            }
            "--max-panic-skip" => {
                let n = grab("--max-panic-skip")?
                    .parse()
                    .map_err(|_| "--max-panic-skip: bad number")?;
                o.policy = o.policy.with_max_panic_skip(n);
            }
            "--on-overflow" => {
                let mode: OnExhausted = grab("--on-overflow")?
                    .parse()
                    .map_err(|_| "--on-overflow: expected stop, skip, or best-effort")?;
                o.policy = o.policy.with_on_exhausted(mode);
            }
            "--lint" => o.lint = Some(lint::Level::Deny),
            flag if flag.starts_with("--lint=") => {
                o.lint = Some(match &flag["--lint=".len()..] {
                    "deny" => lint::Level::Deny,
                    "warn" => lint::Level::Warn,
                    "allow" => lint::Level::Allow,
                    other => {
                        return Err(format!(
                            "--lint: expected deny, warn, or allow, got `{other}`"
                        ))
                    }
                });
            }
            flag if flag.starts_with("--lint-format=") => {
                o.lint_format = match &flag["--lint-format=".len()..] {
                    "json" => LintFormat::Json,
                    "text" => LintFormat::Text,
                    other => {
                        return Err(format!(
                            "--lint-format: expected json or text, got `{other}`"
                        ))
                    }
                };
            }
            "--trace" => o.trace = Some(TraceFormat::Tree),
            flag if flag.starts_with("--trace=") => {
                o.trace = Some(match &flag["--trace=".len()..] {
                    "json" => TraceFormat::Json,
                    "tree" => TraceFormat::Tree,
                    other => return Err(format!("--trace: expected json or tree, got `{other}`")),
                });
            }
            "--profile" => o.profile = true,
            "--folded" => o.folded = true,
            "--times" => o.times = true,
            "--metrics" => o.metrics = Some(MetricsFormat::Prom),
            flag if flag.starts_with("--metrics=") => {
                o.metrics = Some(match &flag["--metrics=".len()..] {
                    "prom" => MetricsFormat::Prom,
                    "json" => MetricsFormat::Json,
                    other => {
                        return Err(format!("--metrics: expected prom or json, got `{other}`"))
                    }
                });
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => o.positional.push(a.clone()),
        }
    }
    Ok(o)
}

fn load_schema(path: &str, registry: &Registry) -> Result<Schema, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    pads::compile(&src, registry).map_err(|e| {
        if let pads::CompileError::Syntax(se) = &e {
            let (line, col) = se.line_col(&src);
            format!("{path}:{line}:{col}: {e}")
        } else {
            format!("{path}: {e}")
        }
    })
}

/// Prints the error-summary line — a count per distinct `ErrorCode` — to
/// stderr, so scripts can separate the data diagnosis from stdout output.
fn error_summary(pd: &ParseDesc, source: &str) {
    let mut counts: Vec<(String, u64)> = Vec::new();
    for (_, code, _) in pd.errors() {
        let key = code.to_string();
        match counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => counts.push((key, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let detail: Vec<String> =
        counts.into_iter().map(|(k, n)| format!("{k}: {n}")).collect();
    eprintln!(
        "pads: {} error(s) in {source} [{}] ({})",
        pd.nerr,
        pd.state,
        if detail.is_empty() { "no detail retained".to_owned() } else { detail.join(", ") }
    );
}

/// Rejects `--record`/`--header` names that are not declared in the schema
/// before they reach an accumulator (which would otherwise abort).
fn validate_type(schema: &Schema, name: &str) -> Result<(), String> {
    if schema.type_id(name).is_none() {
        return Err(format!("type `{name}` is not declared in the description"));
    }
    Ok(())
}

/// Infers the record type of a header+records source: an array-of-records
/// source type, or a struct whose last field is such an array.
fn infer_shape(schema: &Schema) -> (Option<String>, Option<String>) {
    fn array_elem_record(schema: &Schema, id: usize) -> Option<String> {
        if let TypeKind::Array { elem: TyUse::Named { id: eid, .. }, .. } = &schema.def(id).kind {
            let e = schema.def(*eid);
            if e.is_record {
                return Some(e.name.clone());
            }
        }
        None
    }
    let src = schema.source();
    if let Some(rec) = array_elem_record(schema, src) {
        return (None, Some(rec));
    }
    if let TypeKind::Struct { members } = &schema.source_def().kind {
        let fields: Vec<_> = members
            .iter()
            .filter_map(|m| match m {
                pads_check::ir::MemberIr::Field(f) => Some(f),
                _ => None,
            })
            .collect();
        if let [header, body] = fields.as_slice() {
            if let (TyUse::Named { id: hid, .. }, TyUse::Named { id: bid, .. }) =
                (&header.ty, &body.ty)
            {
                if let Some(rec) = array_elem_record(schema, *bid) {
                    return (Some(schema.def(*hid).name.clone()), Some(rec));
                }
            }
        }
    }
    (None, None)
}

/// A dense metrics core pre-interned with the schema's type names in
/// `TypeId` order — the ids the interpreter emits — so the hot path
/// trusts ids and never does a name lookup.
fn schema_core(schema: &Schema) -> MetricsCore {
    MetricsCore::with_names(schema.types.iter().map(|d| d.name.as_str()))
}

/// CPU time consumed so far (user + system, milliseconds), from
/// `/proc/self/stat`; `None` off Linux or if the fields are unreadable.
fn cpu_ms() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces but is parenthesised; utime and
    // stime are the 12th and 13th fields after the closing paren.
    let after = stat.rsplit(')').next()?;
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: f64 = fields.get(11)?.parse().ok()?;
    let stime: f64 = fields.get(12)?.parse().ok()?;
    let hz = 100.0; // USER_HZ on Linux
    Some((utime + stime) * 1000.0 / hz)
}

/// Peak resident set size (KiB), from `VmHWM` in `/proc/self/status`;
/// `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find_map(|l| l.strip_prefix("VmHWM:"))?;
    line.trim().trim_end_matches("kB").trim().parse().ok()
}

/// The `--metrics` stderr summary: throughput from the sink, plus CPU
/// time and peak RSS when the probes are available, so one line answers
/// "how expensive was this run".
fn metrics_summary_line(sink: &MetricsSink) -> String {
    let mut line = format!("pads: {}", sink.summary_line());
    if let Some(ms) = cpu_ms() {
        let _ = write!(line, ", cpu {ms:.0} ms");
    }
    if let Some(kb) = peak_rss_kb() {
        let _ = write!(line, ", peak rss {kb} KiB");
    }
    line
}

/// Per-worker observation factory for parallel metrics: each worker gets
/// its own dense [`MetricsCore`] (pre-interned, trusted ids), and the
/// harvest closure drains the counters accumulated since its previous
/// call — `drain` keeps the interning table with the live core, so the
/// worker's dense ids stay valid — yielding per-record deltas that fold
/// exactly in merge order.
fn metrics_factory(
    schema: &Schema,
) -> impl Fn() -> (WorkerObs, Box<dyn FnMut() -> MetricsCore>) + Sync + '_ {
    move || {
        let core = schema_core(schema).into_handle();
        let att = WorkerObs::metrics(core.clone());
        let harvest: Box<dyn FnMut() -> MetricsCore> =
            Box::new(move || core.borrow_mut().drain());
        (att, harvest)
    }
}

/// Reassembles the aggregate source-array descriptor from a batch's
/// per-record descriptors, the way the sequential array loop builds it.
fn batch_aggregate_pd(batch: &pads::RecordBatch, budget: pads::ErrorBudget) -> ParseDesc {
    let mut pd = ParseDesc::ok();
    let mut elt_pds = Vec::with_capacity(batch.len());
    let mut neerr: u32 = 0;
    let mut first_error: Option<usize> = None;
    for i in 0..batch.len() {
        let epd = batch.pd(i);
        if !epd.is_ok() {
            neerr += 1;
            if first_error.is_none() {
                first_error = Some(i);
            }
        }
        pd.absorb(&epd);
        elt_pds.push(epd);
    }
    pd.kind = PdKind::Array { elts: elt_pds, neerr, first_error };
    if budget.stopped() {
        pd.add_root_error(ErrorCode::BudgetExhausted, Loc::default());
    }
    pd
}

/// The plain-text record report (stdout).
fn print_report(pd: &ParseDesc) {
    println!("parse state: {} errors: {}", pd.state, pd.nerr);
    for (path, code, loc) in pd.errors().into_iter().take(25) {
        match loc {
            Some(l) => println!("  {path}: {code} at record {}", l.begin.record),
            None => println!("  {path}: {code}"),
        }
    }
    if pd.nerr > 25 {
        println!("  … ({} more)", pd.nerr - 25);
    }
}

/// `pads parse --jobs N` over a plain record-array source: parses the
/// records on worker threads, folding the merged stream straight into a
/// columnar [`pads::RecordBatch`] (no per-record `Value` trees retained),
/// and prints the same report as the sequential path. The full value
/// array is materialised from the batch only when `--format xml` asks
/// for it. Metrics come from one dense [`MetricsCore`] per worker, merged.
fn parse_parallel(
    schema: &Schema,
    registry: &Registry,
    options: ParseOptions,
    o: &Opts,
    data: &[u8],
    record: &str,
) -> Result<ExitCode, String> {
    let parser = PadsParser::new(schema, registry).with_options(options);
    let mask = Mask::all(BaseMask::CheckAndSet);
    let mut merged = o.metrics.map(|_| schema_core(schema));
    let mut batch = pads::RecordBatch::new();
    let factory = metrics_factory(schema);
    let observer = merged.is_some().then_some(&factory);
    let budget = parser.records_par_stream(
        data,
        record,
        &mask,
        o.jobs,
        o.max_inflight,
        pads::ResumePoint::default(),
        observer,
        |value, pd, extra, _progress| {
            if let (Some(m), Some(delta)) = (merged.as_mut(), extra) {
                m.merge(&delta);
            }
            batch.push(&value, &pd);
        },
    );
    let pd = batch_aggregate_pd(&batch, budget);

    match o.format {
        OutputFormat::Xml => {
            let v = Value::Array((0..batch.len()).map(|i| batch.row(i)).collect());
            print!("{}", pads_tools::value_to_xml(&v, Some(&pd), &schema.source_def().name, 0));
        }
        OutputFormat::Report if o.metrics.is_none() => print_report(&pd),
        OutputFormat::Report | OutputFormat::None => {}
    }
    if let (Some(merged), Some(fmt)) = (merged, o.metrics) {
        let sink = MetricsSink::from_core(merged);
        match fmt {
            MetricsFormat::Prom => print!("{}", sink.prometheus()),
            MetricsFormat::Json => println!("{}", sink.counts_json()),
        }
        eprintln!("{}", metrics_summary_line(&sink));
    }
    if pd.is_ok() {
        Ok(ExitCode::SUCCESS)
    } else {
        error_summary(&pd, &o.positional[1]);
        Ok(ExitCode::from(EXIT_DATA_ERRORS))
    }
}

/// FNV-1a fingerprint over (length, first 64 bytes, last 64 bytes) of the
/// source: cheap, stable identification of "the same data file" across
/// runs, recorded in every checkpoint so `--resume` can reject a journal
/// written for different data.
fn source_fingerprint(data: &[u8]) -> u64 {
    fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }
    let mut h = 0xcbf2_9ce4_8422_2325;
    h = fnv(h, &(data.len() as u64).to_le_bytes());
    h = fnv(h, &data[..data.len().min(64)]);
    h = fnv(h, &data[data.len().saturating_sub(64)..]);
    h
}

/// Commit cadence over a journal: counts records and source bytes since
/// the last checkpoint and commits when either interval is reached.
struct Committer {
    journal: pads_journal::Journal,
    source_id: u64,
    every_records: u64,
    every_bytes: Option<u64>,
    records_since: u64,
    bytes_since: u64,
    last_offset: u64,
}

impl Committer {
    /// Accounts one consumed record ending at `offset` and commits if a
    /// checkpoint interval elapsed. `record` is the index of the first
    /// *unconsumed* record.
    fn on_record(
        &mut self,
        offset: u64,
        record: u64,
        budget: pads::ErrorBudget,
        metrics: &MetricsCore,
    ) -> Result<(), pads_journal::JournalError> {
        self.records_since += 1;
        self.bytes_since += offset.saturating_sub(self.last_offset);
        self.last_offset = offset;
        let due = self.records_since >= self.every_records
            || self.every_bytes.is_some_and(|b| self.bytes_since >= b);
        if due {
            self.commit(offset, record, budget, metrics)?;
        }
        Ok(())
    }

    /// Commits unconditionally — unless the position does not advance past
    /// the last checkpoint (a resumed run with nothing new), which is a
    /// no-op rather than an out-of-order error.
    fn commit(
        &mut self,
        offset: u64,
        record: u64,
        budget: pads::ErrorBudget,
        metrics: &MetricsCore,
    ) -> Result<(), pads_journal::JournalError> {
        self.records_since = 0;
        self.bytes_since = 0;
        let advances = self.journal.last().is_none_or(|cp| {
            offset >= cp.offset && record >= cp.record && (offset > cp.offset || record > cp.record)
        });
        if !advances {
            return Ok(());
        }
        self.journal.commit(pads_journal::Checkpoint {
            source_id: self.source_id,
            offset,
            record,
            budget,
            metrics: metrics.snapshot(),
        })
    }
}

/// `pads parse --journal <path>`: the durable-ingest driver. Parses the
/// record-array source (sequentially or record-sharded), committing a
/// checkpoint — byte offset, record index, error budget, metrics snapshot
/// — at the configured cadence, so a killed run can `--resume` from the
/// last valid checkpoint with byte-identical results. See
/// docs/DURABILITY.md for the format and guarantees.
fn parse_journaled(
    schema: &Schema,
    registry: &Registry,
    options: ParseOptions,
    o: &Opts,
    data: &[u8],
    record: &str,
    journal_path: &str,
) -> Result<ExitCode, String> {
    let source_id = source_fingerprint(data);
    let path = std::path::Path::new(journal_path);
    fn fail(err: &pads_journal::JournalError) -> Result<ExitCode, String> {
        eprintln!("pads: journal: {err}");
        Ok(ExitCode::from(EXIT_JOURNAL))
    }

    // Open (--resume) or start a fresh journal; recover a torn tail with a
    // notice, reject anything structurally unsound or from another source.
    let (journal, resume, restored) = if o.resume {
        let (journal, repaired) = match pads_journal::Journal::open(path) {
            Ok(j) => j,
            Err(e) => return fail(&e),
        };
        if let Some(r) = repaired {
            eprintln!(
                "pads: journal: {}: dropped {} trailing byte(s); {} checkpoint(s) kept",
                ErrorCode::JournalTornTail.name(),
                r.dropped_bytes,
                r.checkpoints_kept
            );
        }
        match journal.last() {
            Some(cp) if cp.source_id != source_id => {
                return fail(&pads_journal::JournalError {
                    code: ErrorCode::JournalSourceMismatch,
                    detail: format!(
                        "journal is for source {:#018x}, data is {:#018x}",
                        cp.source_id, source_id
                    ),
                });
            }
            Some(cp) => {
                let core = MetricsCore::restore(&cp.metrics);
                if core.is_none() {
                    eprintln!(
                        "pads: journal: metrics snapshot unreadable; counters restart at the checkpoint"
                    );
                }
                let resume = pads::ResumePoint {
                    offset: cp.offset as usize,
                    record: cp.record as usize,
                    budget: cp.budget,
                };
                (journal, resume, core.unwrap_or_default())
            }
            None => (journal, pads::ResumePoint::default(), MetricsCore::new()),
        }
    } else {
        match pads_journal::Journal::create(path) {
            Ok(j) => (j, pads::ResumePoint::default(), MetricsCore::new()),
            Err(e) => return fail(&e),
        }
    };
    let mut com = Committer {
        journal: journal.with_fsync_every(o.fsync_every),
        source_id,
        every_records: o.checkpoint_records,
        every_bytes: o.checkpoint_bytes,
        records_since: 0,
        bytes_since: 0,
        last_offset: resume.offset as u64,
    };

    let mask = Mask::all(BaseMask::CheckAndSet);
    // Values are only needed for the end-of-run report, so they fold into
    // a columnar batch instead of a per-record tree vector.
    let mut batch = pads::RecordBatch::new();
    let mut killed = false;
    let mut consumed: u64 = 0;
    // Position of the first unconsumed (byte, record) — the final commit.
    let mut last_pos = (resume.offset as u64, resume.record as u64);
    let mut commit_err: Option<pads_journal::JournalError> = None;

    let (budget, final_core) = if o.jobs <= 1 {
        // Sequential: one dense metrics core (pre-interned for the schema,
        // seeded from the restored snapshot) observes the whole run and is
        // snapshotted at every commit.
        let mut seeded = schema_core(schema);
        seeded.merge(&restored);
        let core = seeded.into_handle();
        let parser = PadsParser::new(schema, registry)
            .with_options(options)
            .with_metrics(core.clone());
        let mut it = parser.records_resumed(data, record, &mask, resume);
        while let Some((value, epd)) = it.next() {
            batch.push(&value, &epd);
            consumed += 1;
            last_pos = (it.offset() as u64, resume.record as u64 + consumed);
            if let Err(e) =
                com.on_record(last_pos.0, last_pos.1, it.budget(), &core.borrow())
            {
                commit_err = Some(e);
                break;
            }
            if o.kill_after.is_some_and(|n| consumed >= n) {
                killed = true;
                break;
            }
        }
        let budget = it.budget();
        drop(it);
        let out = core.borrow().clone();
        (budget, out)
    } else {
        // Parallel: per-worker cores stream per-record deltas through the
        // in-order merge; the fold (seeded from the restored snapshot) is
        // snapshotted at every commit.
        let mut merged = schema_core(schema);
        merged.merge(&restored);
        let parser = PadsParser::new(schema, registry).with_options(options);
        let budget = parser.records_par_stream(
            data,
            record,
            &mask,
            o.jobs,
            o.max_inflight,
            resume,
            Some(&metrics_factory(schema)),
            |value, pd, extra, progress| {
                if killed || commit_err.is_some() {
                    return;
                }
                if let Some(delta) = extra {
                    merged.merge(&delta);
                }
                batch.push(&value, &pd);
                consumed += 1;
                last_pos = (progress.end_offset as u64, progress.record as u64 + 1);
                if let Err(e) =
                    com.on_record(last_pos.0, last_pos.1, progress.budget, &merged)
                {
                    commit_err = Some(e);
                    return;
                }
                if o.kill_after.is_some_and(|n| consumed >= n) {
                    killed = true;
                }
            },
        );
        (budget, merged)
    };
    if let Some(e) = commit_err {
        return fail(&e);
    }
    if killed {
        // Crash simulation: exit without the final commit or sync, leaving
        // exactly the periodic checkpoints a real kill would have left.
        eprintln!("pads: --kill-after: stopped after {consumed} record(s); rerun with --resume");
        return Ok(ExitCode::SUCCESS);
    }
    if let Err(e) = com.commit(last_pos.0, last_pos.1, budget, &final_core) {
        return fail(&e);
    }
    if let Err(e) = com.journal.sync() {
        return fail(&e);
    }

    // Report: assemble the aggregate descriptor over this run's records;
    // the exit code comes from the *budget*, which carries the whole
    // run's tally across kills and resumes.
    let pd = batch_aggregate_pd(&batch, budget);
    if o.metrics.is_none() && o.format == OutputFormat::Report {
        print_report(&pd);
    }
    if let Some(fmt) = o.metrics {
        let sink = MetricsSink::from_core(final_core);
        match fmt {
            MetricsFormat::Prom => print!("{}", sink.prometheus()),
            MetricsFormat::Json => println!("{}", sink.counts_json()),
        }
        eprintln!("{}", metrics_summary_line(&sink));
    }
    let data_errors = budget.errs > 0 || budget.skipped_records > 0 || budget.stopped();
    if data_errors {
        if pd.is_ok() {
            // All the errors predate the resume point; the budget is the
            // only witness this run sees.
            eprintln!(
                "pads: {} error(s) in {} (all before the resume point)",
                budget.errs, o.positional[1]
            );
        } else {
            error_summary(&pd, &o.positional[1]);
        }
        Ok(ExitCode::from(EXIT_DATA_ERRORS))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(
            "usage: pads <check|diff|parse|profile|accum|fmt|xsd|query|gen|cobol|codegen> …"
                .into(),
        );
    };
    let o = parse_opts(rest)?;
    let registry = Registry::standard();
    let options = ParseOptions {
        charset: o.charset,
        discipline: o.discipline,
        policy: o.policy,
        engine: o.engine,
        ..Default::default()
    };
    let need = |n: usize| -> Result<(), String> {
        if o.positional.len() < n {
            Err(format!("`pads {cmd}` needs {n} argument(s)"))
        } else {
            Ok(())
        }
    };

    match cmd.as_str() {
        "check" => {
            need(1)?;
            let path = &o.positional[0];
            let src = match std::fs::read_to_string(path) {
                Ok(src) => src,
                Err(e) => {
                    // A missing description is not a finding *in* any file:
                    // report it as a spanless diagnostic and fail hard.
                    let d = lint::Diagnostic {
                        code: "io",
                        level: lint::Level::Deny,
                        span: Default::default(),
                        message: format!("cannot read `{path}`: {e}"),
                        hint: None,
                    };
                    eprint!("{}", lint::render::render_diagnostic(&d, "", path));
                    return Ok(ExitCode::FAILURE);
                }
            };
            let (schema, diags) =
                pads_check::compile_with_lints(&src, &registry).map_err(|e| {
                    if let pads::CompileError::Syntax(se) = &e {
                        let (line, col) = se.line_col(&src);
                        format!("{path}:{line}:{col}: {e}")
                    } else {
                        format!("{path}: {e}")
                    }
                })?;
            // `--lint-format=json` without `--lint` still runs the lints
            // (at the default deny threshold for the exit status).
            let threshold = match (o.lint, o.lint_format) {
                (Some(t), _) => Some(t),
                (None, LintFormat::Json) => Some(lint::Level::Deny),
                (None, LintFormat::Text) => None,
            };
            if let Some(threshold) = threshold {
                match o.lint_format {
                    // Render at the *chosen* threshold, so `--lint=allow`
                    // reveals the Allow-level notes (PL206, PL304, …).
                    LintFormat::Text => eprint!(
                        "{}",
                        lint::render::render_all(&diags, &src, path, threshold)
                    ),
                    // The JSON stream always carries every finding;
                    // machine consumers filter by level themselves.
                    LintFormat::Json => {
                        print!("{}", lint::render::render_json(&diags, &src, path));
                    }
                }
                if diags.any_at(threshold) {
                    return Ok(ExitCode::from(EXIT_LINT));
                }
            }
            // With `--lint-format=json`, stdout is reserved for the JSON
            // report; the human summary moves to stderr.
            let ok_line = format!(
                "ok: {} type(s), source `{}`",
                schema.types.len(),
                schema.source_def().name
            );
            match o.lint_format {
                LintFormat::Text => println!("{ok_line}"),
                LintFormat::Json => eprintln!("{ok_line}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            // Schema-evolution check: classify old → new on the
            // compatible < widens < narrows < breaks lattice. Breaking
            // changes exit 3 — the same "static gate tripped" status as
            // `check --lint` — so registries can gate hot reloads on it.
            need(2)?;
            let old = load_schema(&o.positional[0], &registry)?;
            let new = load_schema(&o.positional[1], &registry)?;
            let report = pads_check::diff::diff_schemas(&old, &new);
            print!("{}", report.render());
            if report.breaks() {
                Ok(ExitCode::from(EXIT_LINT))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        "parse" => {
            need(2)?;
            let schema = load_schema(&o.positional[0], &registry)?;
            let data =
                std::fs::read(&o.positional[1]).map_err(|e| format!("{}: {e}", o.positional[1]))?;
            if let Some(journal_path) = &o.journal {
                // Durable ingest: the journal records progress per record,
                // which only makes sense for a plain record-array source
                // with the plain record report.
                if o.trace.is_some() {
                    return Err("--journal cannot be combined with --trace".into());
                }
                if o.format == OutputFormat::Xml {
                    return Err("--journal cannot be combined with --format xml".into());
                }
                let (None, Some(record)) = infer_shape(&schema) else {
                    return Err("--journal requires a plain record-array source".into());
                };
                return parse_journaled(
                    &schema,
                    &registry,
                    options,
                    &o,
                    &data,
                    &record,
                    journal_path,
                );
            }
            if o.jobs > 1 {
                // Record-sharded parallel parse. Tracing needs one ordered
                // event stream, and header sources have a non-record prefix:
                // both fall back to the sequential engine below.
                if o.trace.is_some() {
                    eprintln!("pads: --trace forces a sequential parse; ignoring --jobs");
                } else if let (None, Some(record)) = infer_shape(&schema) {
                    return parse_parallel(&schema, &registry, options, &o, &data, &record);
                } else {
                    eprintln!(
                        "pads: source is not a plain record array; ignoring --jobs"
                    );
                }
            }
            let mut parser = PadsParser::new(&schema, &registry).with_options(options);
            // The metrics core and trace sink stay behind `Rc` so the CLI
            // can read them back out once the parse is done. Metrics ride
            // the dense-id core; the span trace still needs the legacy
            // event-stream observer.
            let metrics: Option<MetricsHandle> = (o.metrics.is_some() || o.profile)
                .then(|| {
                    let mut core = schema_core(&schema);
                    if o.profile {
                        core.enable_profile();
                    }
                    core.into_handle()
                });
            if let Some(core) = &metrics {
                parser = parser.with_metrics(core.clone());
            }
            let trace = o.trace.map(|_| Rc::new(RefCell::new(TraceSink::new())));
            if let Some(t) = &trace {
                parser = parser.with_observer(ObsHandle::from_rc(t.clone()));
            }
            let mask = Mask::all(BaseMask::CheckAndSet);
            let (v, pd) = parser.parse_source(&data, &mask);
            match o.format {
                OutputFormat::Xml => print!(
                    "{}",
                    pads_tools::value_to_xml(&v, Some(&pd), &schema.source_def().name, 0)
                ),
                OutputFormat::Report if o.trace.is_none() && o.metrics.is_none() => {
                    print_report(&pd);
                }
                OutputFormat::Report | OutputFormat::None => {}
            }
            if let (Some(t), Some(fmt)) = (&trace, o.trace) {
                let t = t.borrow();
                match fmt {
                    TraceFormat::Json => print!("{}", t.jsonl()),
                    TraceFormat::Tree => print!("{}", t.render()),
                }
            }
            if let Some(core) = &metrics {
                let sink = MetricsSink::from_core(core.borrow().clone());
                if let Some(fmt) = o.metrics {
                    match fmt {
                        MetricsFormat::Prom => print!("{}", sink.prometheus()),
                        MetricsFormat::Json => println!("{}", sink.counts_json()),
                    }
                    eprintln!("{}", metrics_summary_line(&sink));
                }
                if o.profile {
                    if let Some(table) = core.borrow().profile_table(o.times) {
                        eprint!("{table}");
                    }
                }
            }
            if pd.is_ok() {
                Ok(ExitCode::SUCCESS)
            } else {
                // The run itself completed; the *data* has errors. Summarise
                // on stderr and use the distinct "data errors" status.
                error_summary(&pd, &o.positional[1]);
                Ok(ExitCode::from(EXIT_DATA_ERRORS))
            }
        }
        "profile" => {
            // Per-schema-node cost profile: parse the source sequentially
            // with a profiling dense core attached, then print the
            // per-node cost table — or, with `--folded`, folded-stack
            // lines for `inferno`/flamegraph tooling. Both outputs are
            // deterministic for a given input unless `--times` opts into
            // the sampled (approximate) self-time column.
            need(2)?;
            let schema = load_schema(&o.positional[0], &registry)?;
            let data =
                std::fs::read(&o.positional[1]).map_err(|e| format!("{}: {e}", o.positional[1]))?;
            let core = schema_core(&schema).with_profile().into_handle();
            let parser = PadsParser::new(&schema, &registry)
                .with_options(options)
                .with_metrics(core.clone());
            let mask = Mask::all(BaseMask::CheckAndSet);
            let (_, pd) = parser.parse_source(&data, &mask);
            let core = core.borrow();
            if o.folded {
                if let Some(folded) = core.profile_folded() {
                    print!("{folded}");
                }
            } else if let Some(table) = core.profile_table(o.times) {
                print!("{table}");
            }
            eprintln!(
                "pads: profile: {} record(s), {} error(s) in {}",
                core.records(),
                core.errors_total(),
                o.positional[1]
            );
            if pd.is_ok() {
                Ok(ExitCode::SUCCESS)
            } else {
                Ok(ExitCode::from(EXIT_DATA_ERRORS))
            }
        }
        "accum" => {
            need(2)?;
            let schema = load_schema(&o.positional[0], &registry)?;
            let data =
                std::fs::read(&o.positional[1]).map_err(|e| format!("{}: {e}", o.positional[1]))?;
            let (inferred_header, inferred_record) = infer_shape(&schema);
            let record = o
                .record
                .or(inferred_record)
                .ok_or("cannot infer the record type; pass --record <T>")?;
            validate_type(&schema, &record)?;
            let header = o.header.or(inferred_header);
            if let Some(h) = &header {
                validate_type(&schema, h)?;
            }
            let shape = match &header {
                Some(h) => pads_tools::SourceShape::with_header(h, &record),
                None => pads_tools::SourceShape::records(&record),
            };
            let (bad_records, report) = if o.jobs > 1 && header.is_none() && !o.summaries {
                // Record-sharded parse folded into a columnar batch, then
                // accumulated row by row — the same statistics the
                // sequential path produces, parsing on all workers.
                let parser = PadsParser::new(&schema, &registry).with_options(options);
                let mask = Mask::all(BaseMask::CheckAndSet);
                let (batch, _budget) = parser.records_par_batched(&data, &record, &mask, o.jobs);
                let cfg = pads_tools::AccConfig {
                    tracked: o.tracked,
                    top_k: o.top,
                    summaries: None,
                };
                let mut acc = pads_tools::Accumulator::with_config(&schema, &record, cfg);
                acc.add_batch(&batch);
                (acc.bad_records, acc.report("<top>"))
            } else if o.summaries {
                // Accumulate with §9 histogram/quantile summaries enabled.
                let parser = PadsParser::new(&schema, &registry).with_options(options);
                let mask = Mask::all(BaseMask::CheckAndSet);
                let cfg = pads_tools::AccConfig {
                    tracked: o.tracked,
                    top_k: o.top,
                    summaries: Some((16, 1024)),
                };
                let mut acc = pads_tools::Accumulator::with_config(&schema, &record, cfg);
                let start = match &header {
                    Some(h) => {
                        let mut cur = parser.open(&data);
                        let _ = parser.parse_named(&mut cur, h, &[], &mask);
                        cur.offset()
                    }
                    None => 0,
                };
                for (v, pd) in parser.records(&data[start..], &record, &mask) {
                    acc.add(&v, &pd);
                }
                (acc.bad_records, acc.report("<top>"))
            } else {
                let (acc, report) = pads_tools::accumulator_program(
                    &schema, &registry, options, &shape, &data, o.tracked, o.top,
                );
                (acc.bad_records, report)
            };
            print!("{report}");
            if bad_records > 0 {
                eprintln!("pads: {bad_records} bad record(s) in {}", o.positional[1]);
                Ok(ExitCode::from(EXIT_DATA_ERRORS))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        "fmt" => {
            need(2)?;
            let schema = load_schema(&o.positional[0], &registry)?;
            let data =
                std::fs::read(&o.positional[1]).map_err(|e| format!("{}: {e}", o.positional[1]))?;
            let (inferred_header, inferred_record) = infer_shape(&schema);
            let record = o
                .record
                .or(inferred_record)
                .ok_or("cannot infer the record type; pass --record <T>")?;
            validate_type(&schema, &record)?;
            let header = o.header.or(inferred_header);
            if let Some(h) = &header {
                validate_type(&schema, h)?;
            }
            let shape = match &header {
                Some(h) => pads_tools::SourceShape::with_header(h, &record),
                None => pads_tools::SourceShape::records(&record),
            };
            let mut fmt = pads_tools::Formatter::new(&[o.delim.as_str()]);
            if let Some(df) = &o.date_fmt {
                fmt = fmt.with_date_format(df);
            }
            print!(
                "{}",
                pads_tools::formatting_program(&schema, &registry, options, &shape, &data, &fmt)
            );
            Ok(ExitCode::SUCCESS)
        }
        "xsd" => {
            need(1)?;
            let schema = load_schema(&o.positional[0], &registry)?;
            print!("{}", pads_tools::schema_to_xsd(&schema));
            Ok(ExitCode::SUCCESS)
        }
        "query" => {
            need(3)?;
            let schema = load_schema(&o.positional[0], &registry)?;
            let data =
                std::fs::read(&o.positional[1]).map_err(|e| format!("{}: {e}", o.positional[1]))?;
            let parser = PadsParser::new(&schema, &registry).with_options(options);
            let mask = Mask::all(BaseMask::CheckAndSet);
            let (v, pd) = parser.parse_source(&data, &mask);
            let root = pads_query::Node::root(&schema.source_def().name, &v, Some(&pd));
            let q = pads_query::Query::parse(&o.positional[2]).map_err(|e| e.to_string())?;
            println!("{}", q.count(&root));
            Ok(ExitCode::SUCCESS)
        }
        "gen" => {
            need(1)?;
            let schema = load_schema(&o.positional[0], &registry)?;
            let (_, inferred_record) = infer_shape(&schema);
            let record = o
                .record
                .or(inferred_record)
                .ok_or("cannot infer the record type; pass --record <T>")?;
            validate_type(&schema, &record)?;
            let config = pads_gen::GenConfig { seed: o.seed, ..Default::default() };
            let mut g = pads_gen::Generator::new(&schema, config);
            let out = g.generate_records(&record, o.records);
            use std::io::Write;
            std::io::stdout().write_all(&out).map_err(|e| e.to_string())?;
            Ok(ExitCode::SUCCESS)
        }
        "cobol" => {
            need(1)?;
            let copybook = std::fs::read_to_string(&o.positional[0])
                .map_err(|e| format!("{}: {e}", o.positional[0]))?;
            let description = pads_cobol::translate(&copybook).map_err(|e| e.to_string())?;
            print!("{description}");
            Ok(ExitCode::SUCCESS)
        }
        "codegen" => {
            need(1)?;
            let schema = load_schema(&o.positional[0], &registry)?;
            let module = pads_codegen::generate_rust(&schema, &o.positional[0])
                .map_err(|e| e.to_string())?;
            print!("{module}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
