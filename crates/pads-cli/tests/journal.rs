//! End-to-end durability tests driving `pads parse --journal`: the
//! kill-and-resume loop (sequential and record-sharded) and the corrupt-
//! journal torture matrix — every distinct failure mode must surface its
//! stable `ErrorCode` name on stderr and the dedicated exit status 4,
//! except a torn tail, which is repaired in place with a notice.

use std::io::Write;
use std::process::Command;

fn pads() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pads"))
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pads-journal-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn write_temp(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let path = temp_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents).expect("write");
    path
}

const DESCR: &str = r#"
Precord Pstruct order_t {
    Puint32 id;
    '|'; Pstring(:'|':) state;
    '|'; Puint32 total : total >= id;
};
Psource Parray orders_t { order_t[]; };
"#;

// Two constraint violations (records 1 and 5, zero-based).
const DATA: &[u8] = b"1|OPEN|5\n2|SHIP|1\n3|DONE|9\n4|HOLD|8\n5|SHIP|20\n6|DONE|2\n7|OPEN|7\n";

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn parse_journaled(descr: &std::path::Path, data: &std::path::Path, extra: &[&str]) -> Run {
    let out = pads()
        .arg("parse")
        .arg(descr)
        .arg(data)
        .args(extra)
        .output()
        .expect("run pads");
    Run {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Kill a journaled run partway, resume it, and require the resumed run's
/// metrics and exit status to match an uninterrupted journaled run — at
/// `--jobs 1` and `--jobs 4`, across checkpoint cadences.
#[test]
fn kill_then_resume_matches_uninterrupted_run() {
    let descr = write_temp("kr.pads", DESCR.as_bytes());
    let data = write_temp("kr.txt", DATA);
    for jobs in ["1", "4"] {
        let full_wal = temp_dir().join(format!("kr-full-{jobs}.wal"));
        let full = parse_journaled(
            &descr,
            &data,
            &["--journal", full_wal.to_str().unwrap(), "--jobs", jobs, "--metrics=json"],
        );
        assert_eq!(full.code, Some(2), "{}", full.stderr);
        for (kill_after, every) in [("1", "1"), ("3", "2"), ("5", "3"), ("7", "1")] {
            let wal = temp_dir().join(format!("kr-{jobs}-{kill_after}-{every}.wal"));
            let wal = wal.to_str().unwrap();
            let killed = parse_journaled(
                &descr,
                &data,
                &[
                    "--journal", wal,
                    "--jobs", jobs,
                    "--kill-after", kill_after,
                    "--checkpoint-records", every,
                ],
            );
            assert_eq!(killed.code, Some(0), "killed run failed: {}", killed.stderr);
            assert!(killed.stderr.contains("--kill-after"), "{}", killed.stderr);
            let resumed = parse_journaled(
                &descr,
                &data,
                &["--journal", wal, "--resume", "--jobs", jobs, "--metrics=json"],
            );
            assert_eq!(
                resumed.code,
                Some(2),
                "jobs={jobs} kill={kill_after}/{every}: {}",
                resumed.stderr
            );
            assert_eq!(
                resumed.stdout, full.stdout,
                "jobs={jobs} kill={kill_after}/{every}: resumed metrics diverge"
            );
        }
    }
}

/// Resuming a journal that already covers the whole source re-parses
/// nothing but still reports the run's errors from the restored state.
#[test]
fn resume_of_a_complete_run_is_a_faithful_no_op() {
    let descr = write_temp("noop.pads", DESCR.as_bytes());
    let data = write_temp("noop.txt", DATA);
    let wal = temp_dir().join("noop.wal");
    let wal = wal.to_str().unwrap();
    let full = parse_journaled(&descr, &data, &["--journal", wal, "--metrics=json"]);
    assert_eq!(full.code, Some(2), "{}", full.stderr);
    let again = parse_journaled(&descr, &data, &["--journal", wal, "--resume", "--metrics=json"]);
    assert_eq!(again.code, Some(2), "{}", again.stderr);
    assert_eq!(again.stdout, full.stdout, "restored metrics diverge");
    assert!(again.stderr.contains("before the resume point"), "{}", again.stderr);
}

/// A journal too short to hold the magic header: exit 4, stable code name.
#[test]
fn resume_rejects_empty_journal_with_bad_header() {
    let descr = write_temp("bh.pads", DESCR.as_bytes());
    let data = write_temp("bh.txt", DATA);
    let wal = write_temp("bh.wal", b"");
    let run = parse_journaled(&descr, &data, &["--journal", wal.to_str().unwrap(), "--resume"]);
    assert_eq!(run.code, Some(4), "{}", run.stderr);
    assert!(run.stderr.contains("JournalBadHeader"), "{}", run.stderr);
}

/// Garbage where the header should be: same failure class.
#[test]
fn resume_rejects_garbled_header() {
    let descr = write_temp("gh.pads", DESCR.as_bytes());
    let data = write_temp("gh.txt", DATA);
    let wal = write_temp("gh.wal", b"not a journal at all, sixteen+ bytes");
    let run = parse_journaled(&descr, &data, &["--journal", wal.to_str().unwrap(), "--resume"]);
    assert_eq!(run.code, Some(4), "{}", run.stderr);
    assert!(run.stderr.contains("JournalBadHeader"), "{}", run.stderr);
}

/// Writes a valid journal by running a full journaled parse, then hands
/// the file bytes to `mutate` and reports the mutated resume attempt.
fn corrupted_resume(tag: &str, mutate: impl FnOnce(&mut Vec<u8>)) -> Run {
    let descr = write_temp(&format!("{tag}.pads"), DESCR.as_bytes());
    let data = write_temp(&format!("{tag}.txt"), DATA);
    let wal = temp_dir().join(format!("{tag}.wal"));
    let full = parse_journaled(&descr, &data, &["--journal", wal.to_str().unwrap()]);
    assert_eq!(full.code, Some(2), "{}", full.stderr);
    let mut bytes = std::fs::read(&wal).expect("read journal");
    mutate(&mut bytes);
    std::fs::write(&wal, &bytes).expect("rewrite journal");
    parse_journaled(&descr, &data, &["--journal", wal.to_str().unwrap(), "--resume"])
}

/// Byte offsets of each complete frame after the 16-byte header.
fn frame_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut at = 16;
    while at + 8 <= bytes.len() {
        let len =
            u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let end = at + 8 + len;
        if end > bytes.len() {
            break;
        }
        spans.push((at, end));
        at = end;
    }
    spans
}

/// A flipped payload byte inside a complete frame: exit 4, CRC mismatch.
#[test]
fn resume_rejects_flipped_payload_byte() {
    let run = corrupted_resume("crc", |bytes| {
        let (start, _) = frame_spans(bytes)[0];
        bytes[start + 12] ^= 0xFF;
    });
    assert_eq!(run.code, Some(4), "{}", run.stderr);
    assert!(run.stderr.contains("JournalCrcMismatch"), "{}", run.stderr);
}

/// A duplicated frame (same offset and record twice): exit 4, the
/// checkpoint sequence must strictly advance.
#[test]
fn resume_rejects_duplicate_checkpoint() {
    let run = corrupted_resume("dup", |bytes| {
        let (start, end) = *frame_spans(bytes).last().expect("at least one frame");
        let copy = bytes[start..end].to_vec();
        bytes.extend_from_slice(&copy);
    });
    assert_eq!(run.code, Some(4), "{}", run.stderr);
    assert!(run.stderr.contains("JournalOutOfOrder"), "{}", run.stderr);
}

/// A tail torn mid-frame (the crash case): repaired with a notice, and
/// the resumed run still completes with the right exit status.
#[test]
fn resume_repairs_torn_tail_and_completes() {
    let run = corrupted_resume("torn", |bytes| {
        bytes.truncate(bytes.len() - 5);
    });
    assert_eq!(run.code, Some(2), "{}", run.stderr);
    assert!(run.stderr.contains("JournalTornTail"), "{}", run.stderr);
}

/// A journal written for different data: exit 4, source mismatch.
#[test]
fn resume_rejects_journal_for_other_source() {
    let descr = write_temp("sm.pads", DESCR.as_bytes());
    let data = write_temp("sm.txt", DATA);
    let other = write_temp("sm-other.txt", b"9|OPEN|9\n8|SHIP|8\n");
    let wal = temp_dir().join("sm.wal");
    let full = parse_journaled(&descr, &data, &["--journal", wal.to_str().unwrap()]);
    assert_eq!(full.code, Some(2), "{}", full.stderr);
    let run = parse_journaled(&descr, &other, &["--journal", wal.to_str().unwrap(), "--resume"]);
    assert_eq!(run.code, Some(4), "{}", run.stderr);
    assert!(run.stderr.contains("JournalSourceMismatch"), "{}", run.stderr);
}
