//! `pads profile`: the per-node cost table and the folded-stack output
//! must be byte-deterministic across runs (no timing columns unless
//! `--times` asks for them), and the folded lines must carry the
//! schema's root-to-leaf paths so `inferno`/`flamegraph.pl` can consume
//! them directly.

use std::path::Path;
use std::process::Command;

/// Exit status for "the data had errors but the run completed".
const EXIT_DATA_ERRORS: i32 = 2;

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn run_profile(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pads"))
        .current_dir(repo_root())
        .arg("profile")
        .args(args)
        .output()
        .expect("pads binary runs")
}

#[test]
fn profile_table_is_deterministic_across_runs() {
    let args = ["descriptions/clf.pads", "tests/data/torture_clf.log"];
    let first = run_profile(&args);
    assert_eq!(
        first.status.code(),
        Some(EXIT_DATA_ERRORS),
        "torture corpus completes with data errors\n{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let table = String::from_utf8(first.stdout).expect("utf-8 table");
    assert!(table.starts_with("node"), "header row first:\n{table}");
    assert!(table.contains("entry_t"), "per-node rows present:\n{table}");
    assert!(table.contains("cum_bytes"), "byte attribution columns:\n{table}");
    for _ in 0..2 {
        let again = run_profile(&args);
        assert_eq!(
            String::from_utf8(again.stdout).expect("utf-8 table"),
            table,
            "profile table must be byte-identical across runs"
        );
    }
}

#[test]
fn profile_folded_is_deterministic_and_stack_shaped() {
    let args = ["descriptions/clf.pads", "tests/data/torture_clf.log", "--folded"];
    let first = run_profile(&args);
    assert_eq!(first.status.code(), Some(EXIT_DATA_ERRORS));
    let folded = String::from_utf8(first.stdout).expect("utf-8 folded");
    // Every line is `path;seg;... weight` — the flamegraph input format.
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack and weight");
        assert!(!stack.is_empty(), "non-empty stack in {line:?}");
        weight.parse::<u64>().unwrap_or_else(|_| panic!("numeric weight in {line:?}"));
    }
    // Nested paths reflect the schema: entry_t under the clt_t source
    // array, with at least one deeper frame below entry_t.
    assert!(folded.lines().any(|l| l.starts_with("clt_t;entry_t ")), "{folded}");
    assert!(folded.lines().any(|l| l.starts_with("clt_t;entry_t;")), "{folded}");
    let again = run_profile(&args);
    assert_eq!(
        String::from_utf8(again.stdout).expect("utf-8 folded"),
        folded,
        "folded stacks must be byte-identical across runs"
    );
}

#[test]
fn parse_profile_flag_reports_table_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_pads"))
        .current_dir(repo_root())
        .args(["parse", "descriptions/clf.pads", "tests/data/torture_clf.log", "--profile"])
        .output()
        .expect("pads binary runs");
    assert_eq!(out.status.code(), Some(EXIT_DATA_ERRORS));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("node"), "profile table on stderr:\n{err}");
    assert!(err.contains("entry_t"), "per-node rows on stderr:\n{err}");
}
