//! End-to-end tests driving the `pads` binary.

use std::io::Write;
use std::process::Command;

fn pads() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pads"))
}

fn write_temp(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pads-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents).expect("write");
    path
}

const DESCR: &str = r#"
Precord Pstruct order_t {
    Puint32 id;
    '|'; Pstring(:'|':) state;
    '|'; Puint32 total : total >= id;
};
Psource Parray orders_t { order_t[]; };
"#;

#[test]
fn check_accepts_good_and_rejects_bad_descriptions() {
    let good = write_temp("good.pads", DESCR.as_bytes());
    let out = pads().arg("check").arg(&good).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("source `orders_t`"));

    let bad = write_temp("bad.pads", b"Pstruct t { NoSuch x; };");
    let out = pads().arg("check").arg(&bad).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown type"));
}

#[test]
fn parse_reports_errors_with_record_numbers() {
    let descr = write_temp("d.pads", DESCR.as_bytes());
    let data = write_temp("data.txt", b"1|OPEN|5\n2|SHIP|1\n3|DONE|9\n");
    let out = pads().arg("parse").arg(&descr).arg(&data).output().expect("run");
    // total 1 < id 2 on the second record: the run completes, so the exit
    // status is the distinct "data errors" code (2), not hard failure (1).
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("errors: 1"), "{stdout}");
    assert!(stdout.contains("record 1"), "{stdout}");
    // The stderr summary counts errors per code.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("constraint violated: 1"), "{stderr}");
}

#[test]
fn parse_distinguishes_hard_failure_from_data_errors() {
    let descr = write_temp("d-hard.pads", DESCR.as_bytes());
    let out =
        pads().arg("parse").arg(&descr).arg("/definitely/not/a/file").output().expect("run");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn error_budget_flags_stop_parsing_early() {
    let descr = write_temp("d-budget.pads", DESCR.as_bytes());
    // Three constraint violations; a budget of one stops the run early.
    let data = write_temp("data-budget.txt", b"5|A|1\n6|B|1\n7|C|1\n8|D|9\n");
    let out = pads()
        .arg("parse")
        .arg(&descr)
        .arg(&data)
        .args(["--max-errs", "1", "--on-overflow", "stop"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error budget exhausted"), "{stderr}");
}

#[test]
fn unknown_record_type_is_a_hard_failure() {
    let descr = write_temp("d-rec.pads", DESCR.as_bytes());
    let data = write_temp("data-rec.txt", b"1|OPEN|5\n");
    let out = pads()
        .arg("accum")
        .arg(&descr)
        .arg(&data)
        .args(["--record", "nonexistent_t"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not declared"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn parse_xml_emits_document() {
    let descr = write_temp("d2.pads", DESCR.as_bytes());
    let data = write_temp("data2.txt", b"1|OPEN|5\n");
    let out = pads().arg("parse").arg(&descr).arg(&data).arg("--xml").output().expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<state>OPEN</state>"), "{stdout}");
}

#[test]
fn accum_infers_the_record_type() {
    let descr = write_temp("d3.pads", DESCR.as_bytes());
    let data = write_temp("data3.txt", b"1|OPEN|5\n2|SHIP|7\n2|OPEN|9\n");
    let out = pads().arg("accum").arg(&descr).arg(&data).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<top>.state"), "{stdout}");
    assert!(stdout.contains("good: 3 bad: 0"), "{stdout}");
}

#[test]
fn fmt_formats_records() {
    let descr = write_temp("d4.pads", DESCR.as_bytes());
    let data = write_temp("data4.txt", b"1|OPEN|5\n");
    let out = pads()
        .args(["fmt"])
        .arg(&descr)
        .arg(&data)
        .args(["--delim", ","])
        .output()
        .expect("run");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "1,OPEN,5\n");
}

#[test]
fn gen_then_parse_round_trips() {
    let descr = write_temp("d5.pads", DESCR.as_bytes());
    let gen = pads()
        .args(["gen"])
        .arg(&descr)
        .args(["--records", "12", "--seed", "9"])
        .output()
        .expect("run");
    assert!(gen.status.success(), "{}", String::from_utf8_lossy(&gen.stderr));
    let data = write_temp("gen5.txt", &gen.stdout);
    // Generic generation ignores semantic constraints, so only require
    // syntactic acceptance: count parsed records via a query.
    let out = pads()
        .args(["query"])
        .arg(&descr)
        .arg(&data)
        .arg("/elt[id >= 0]")
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "12");
}

#[test]
fn xsd_and_codegen_emit_plausible_output() {
    let descr = write_temp("d6.pads", DESCR.as_bytes());
    let out = pads().arg("xsd").arg(&descr).output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("<xs:schema"));
    let out = pads().arg("codegen").arg(&descr).output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("pub struct OrderT"));
}

#[test]
fn cobol_translates() {
    let cb = write_temp("c.cpy", b"01 R.\n   05 A PIC 9(3).\n   05 B PIC X(2).\n");
    let out = pads().arg("cobol").arg(&cb).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Pebc_zoned(:3:) a"), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = pads().arg("bogus").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn lint_allow_threshold_reveals_notes_and_trips_exit() {
    // DESCR's `state` field is referenced by no constraint: a PL206
    // note, invisible at the warn/deny thresholds.
    let descr = write_temp("d-lint-allow.pads", DESCR.as_bytes());
    let out = pads().arg("check").arg(&descr).arg("--lint").output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("PL206"));

    let out = pads().arg("check").arg(&descr).arg("--lint=allow").output().expect("run");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("note[PL206]:"), "{stderr}");
}

#[test]
fn lint_format_json_is_deterministic_machine_output() {
    let descr = write_temp("d-lint-json.pads", DESCR.as_bytes());
    let run = || {
        pads()
            .arg("check")
            .arg(&descr)
            .args(["--lint=allow", "--lint-format=json"])
            .output()
            .expect("run")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.stdout, b.stdout, "json output must be deterministic");
    let stdout = String::from_utf8_lossy(&a.stdout);
    assert!(stdout.starts_with('['), "{stdout}");
    assert!(stdout.contains("\"code\":\"PL206\""), "{stdout}");
    assert!(stdout.contains("\"level\":\"note\""), "{stdout}");
    assert!(stdout.contains("\"span\":{\"start\":"), "{stdout}");
    assert!(stdout.contains("\"hint\":"), "{stdout}");
    // Without `--lint`, json implies the deny threshold: clean exit here.
    let out =
        pads().arg("check").arg(&descr).arg("--lint-format=json").output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn diff_classifies_and_exits_three_on_breaks() {
    let old = write_temp("diff-old.pads", DESCR.as_bytes());
    // Identity: compatible, exit 0, no findings.
    let out = pads().arg("diff").arg(&old).arg(&old).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "verdict: compatible\n");

    // Added optional field: compatible, exit 0.
    let widened = write_temp(
        "diff-opt.pads",
        DESCR.replace("Puint32 total : total >= id;", "Puint32 total : total >= id; Popt Pchar flag;")
            .as_bytes(),
    );
    let out = pads().arg("diff").arg(&old).arg(&widened).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PD101 compatible"));

    // Removed field: breaks, exit 3.
    let broken = write_temp(
        "diff-broken.pads",
        DESCR.replace("'|'; Pstring(:'|':) state;\n", "").as_bytes(),
    );
    let out = pads().arg("diff").arg(&old).arg(&broken).output().expect("run");
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PD301 breaks"), "{stdout}");
    assert!(stdout.contains("verdict: breaks"), "{stdout}");
}
