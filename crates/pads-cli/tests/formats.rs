//! `--format {report,xml,none}` equivalence: every writer must produce
//! byte-identical output whether the records came from the sequential
//! engine (owned `Value` trees) or the record-sharded engine (columnar
//! `RecordBatch` rows) — including error records that went through the
//! panic-mode recovery policy — and `--format none` must parse (and set
//! the exit status) without writing anything to stdout.

use std::io::Write;
use std::process::Command;

fn pads() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pads"))
}

fn write_temp(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pads-fmt-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents).expect("write");
    path
}

const DESCR: &str = r#"
Precord Pstruct order_t {
    Puint32 id;
    '|'; Pstring(:'|':) state;
    '|'; Puint32 total : total >= id;
};
Psource Parray orders_t { order_t[]; };
"#;

// A constraint violation (record 1), a syntax error the panic-mode
// recovery policy resynchronises past (record 3), and clean records.
const DATA: &[u8] = b"1|OPEN|5\n2|SHIP|1\n3|DONE|9\nnot-a-record\n5|SHIP|20\n6|DONE|8\n";

struct Run {
    code: Option<i32>,
    stdout: Vec<u8>,
    stderr: String,
}

fn parse(extra: &[&str]) -> Run {
    let descr = write_temp("d.pads", DESCR.as_bytes());
    let data = write_temp("data.txt", DATA);
    let out = pads().arg("parse").arg(&descr).arg(&data).args(extra).output().expect("run");
    Run {
        code: out.status.code(),
        stdout: out.stdout,
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

#[test]
fn report_is_byte_identical_between_sequential_and_sharded_engines() {
    let seq = parse(&[]);
    let par = parse(&["--jobs", "4"]);
    assert_eq!(seq.code, Some(2));
    assert_eq!(par.code, Some(2));
    assert_eq!(seq.stdout, par.stdout);
    assert_eq!(seq.stderr, par.stderr);
    let text = String::from_utf8_lossy(&seq.stdout);
    assert!(text.contains("errors:"), "{text}");
}

#[test]
fn xml_is_byte_identical_between_sequential_and_sharded_engines() {
    let seq = parse(&["--format", "xml"]);
    let par = parse(&["--format=xml", "--jobs", "4"]);
    assert_eq!(seq.code, Some(2));
    assert_eq!(seq.stdout, par.stdout);
    // Error records survive the columnar round trip with their values.
    let text = String::from_utf8_lossy(&seq.stdout);
    assert!(text.contains("<orders_t>"), "{text}");
    assert!(text.contains("OPEN"), "{text}");
}

#[test]
fn format_xml_matches_the_legacy_xml_flag() {
    let long = parse(&["--format", "xml"]);
    let short = parse(&["--xml"]);
    assert_eq!(long.stdout, short.stdout);
    assert_eq!(long.code, short.code);
}

#[test]
fn format_none_discards_output_but_keeps_the_exit_status() {
    for jobs in ["1", "4"] {
        let run = parse(&["--format", "none", "--jobs", jobs]);
        assert_eq!(run.code, Some(2), "jobs={jobs}");
        assert!(run.stdout.is_empty(), "jobs={jobs}: {:?}", run.stdout);
        // The stderr error summary still appears.
        assert!(run.stderr.contains("error"), "jobs={jobs}: {}", run.stderr);
    }
}

#[test]
fn format_rejects_unknown_values() {
    let run = parse(&["--format", "csv"]);
    assert_eq!(run.code, Some(1));
    assert!(run.stderr.contains("expected report, xml, or none"), "{}", run.stderr);
}

#[test]
fn journaled_report_matches_the_plain_sequential_report() {
    let descr = write_temp("dj.pads", DESCR.as_bytes());
    let data = write_temp("dataj.txt", DATA);
    let plain = pads().arg("parse").arg(&descr).arg(&data).output().expect("run");
    for jobs in ["1", "3"] {
        let wal = write_temp(&format!("fmt-{jobs}.wal"), b"");
        std::fs::remove_file(&wal).expect("clear");
        let journaled = pads()
            .arg("parse")
            .arg(&descr)
            .arg(&data)
            .args(["--journal", wal.to_str().unwrap(), "--jobs", jobs])
            .output()
            .expect("run");
        assert_eq!(plain.stdout, journaled.stdout, "jobs={jobs}");
        assert_eq!(plain.status.code(), journaled.status.code(), "jobs={jobs}");
    }
}

#[test]
fn accumulator_report_is_identical_through_the_batched_parallel_engine() {
    let descr = write_temp("da.pads", DESCR.as_bytes());
    let data = write_temp("dataa.txt", DATA);
    let seq = pads().arg("accum").arg(&descr).arg(&data).output().expect("run");
    let par = pads()
        .arg("accum")
        .arg(&descr)
        .arg(&data)
        .args(["--jobs", "3"])
        .output()
        .expect("run");
    assert_eq!(seq.status.code(), par.status.code());
    assert_eq!(
        String::from_utf8_lossy(&seq.stdout),
        String::from_utf8_lossy(&par.stdout)
    );
}
