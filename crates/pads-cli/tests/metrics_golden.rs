//! Golden metric snapshots: `pads parse --metrics=json` over each bundled
//! description and its torture corpus must reproduce the checked-in counts
//! byte-for-byte. The format is counts-only (no timings), so the snapshot
//! is fully deterministic; any drift in parsing, error classification, or
//! event emission shows up as a diff here.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo build -p pads-cli
//! ./target/debug/pads parse descriptions/<d>.pads tests/data/torture_<d>.* \
//!     --metrics=json > crates/pads-cli/tests/golden/metrics_<d>_torture.json
//! ```

use std::path::Path;
use std::process::Command;

/// Exit status for "the data had errors but the run completed".
const EXIT_DATA_ERRORS: i32 = 2;

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn run_parse(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pads"))
        .current_dir(repo_root())
        .arg("parse")
        .args(args)
        .output()
        .expect("pads binary runs")
}

#[test]
fn metrics_json_matches_golden_snapshots() {
    let cases = [
        ("clf", "tests/data/torture_clf.log"),
        ("sirius", "tests/data/torture_sirius.txt"),
        ("mixed", "tests/data/torture_mixed.txt"),
    ];
    for (name, data) in cases {
        let out = run_parse(&[
            &format!("descriptions/{name}.pads"),
            data,
            "--metrics=json",
        ]);
        assert_eq!(
            out.status.code(),
            Some(EXIT_DATA_ERRORS),
            "{name}: torture corpus must complete with data errors\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = String::from_utf8(out.stdout).expect("utf-8 metrics");
        let golden_path =
            repo_root().join(format!("crates/pads-cli/tests/golden/metrics_{name}_torture.json"));
        let want = std::fs::read_to_string(&golden_path).expect("golden snapshot exists");
        assert_eq!(
            got, want,
            "{name}: metrics drifted from {}; regenerate if intentional",
            golden_path.display()
        );
    }
}

/// `--trace` and `--metrics=prom|json` must work (and not disturb the exit
/// code) on every description in `descriptions/`.
#[test]
fn trace_and_metrics_work_on_every_description() {
    let cases = [
        ("clf", "tests/data/torture_clf.log"),
        ("sirius", "tests/data/torture_sirius.txt"),
        ("mixed", "tests/data/torture_mixed.txt"),
    ];
    let mut described = 0;
    for entry in std::fs::read_dir(repo_root().join("descriptions")).expect("descriptions/") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pads") {
            continue;
        }
        described += 1;
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("stem");
        let (_, data) = cases
            .iter()
            .find(|(n, _)| *n == stem)
            .unwrap_or_else(|| panic!("no torture corpus for descriptions/{stem}.pads"));
        let descr = format!("descriptions/{stem}.pads");
        for flags in [
            &["--trace"][..],
            &["--trace=json"][..],
            &["--metrics=prom"][..],
            &["--metrics=json"][..],
            &["--trace=json", "--metrics=json"][..],
        ] {
            let mut args = vec![descr.as_str(), data];
            args.extend_from_slice(flags);
            let out = run_parse(&args);
            assert_eq!(
                out.status.code(),
                Some(EXIT_DATA_ERRORS),
                "{stem} {flags:?}: unexpected exit\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert!(
                !out.stdout.is_empty(),
                "{stem} {flags:?}: produced no output"
            );
        }
        // Prometheus exposition carries the family headers.
        let out = run_parse(&[&descr, data, "--metrics=prom"]);
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains("# TYPE pads_records_total counter"), "{stem}: {text}");
        assert!(text.contains("pads_type_hits_total"), "{stem}");
    }
    assert_eq!(described, 3, "bundled description inventory changed");
}
