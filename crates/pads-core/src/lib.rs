//! **pads** — a Rust implementation of the PADS data description language.
//!
//! PADS (*Processing Ad hoc Data Sources*; Fisher & Gruber, PLDI 2005) lets
//! a data analyst describe the physical layout *and* semantic properties of
//! an ad hoc data source — web logs, provisioning feeds, binary call
//! detail, Cobol billing files — and get a full manipulation library in
//! exchange: parser, printer, verifier, statistical profiler, format
//! converters, and query support.
//!
//! This crate is the user-facing entry point of the workspace:
//!
//! * [`compile`] — description text → checked [`Schema`];
//! * [`PadsParser`] — parse bytes into ([`Value`], [`ParseDesc`]) pairs,
//!   whole-source or record-at-a-time, under a constraint [`Mask`];
//! * [`Writer`] — write representations back out in original form;
//! * [`Verifier`] — re-check semantic constraints on in-memory values;
//! * [`descriptions`] — the paper's CLF and Sirius descriptions, bundled.
//!
//! Sibling crates extend this core the way the PADS compiler's generated
//! artifacts did: `pads-tools` (accumulators, formatting, XML),
//! `pads-query` (XQuery-style selection), `pads-gen` (synthetic data),
//! `pads-codegen` (Rust code generation), and `pads-cobol` (copybook
//! translation).
//!
//! # Quickstart
//!
//! ```
//! use pads::{compile, PadsParser, Value};
//! use pads_runtime::{BaseMask, Mask, Registry};
//!
//! let registry = Registry::standard();
//! let schema = compile(
//!     r#"
//!     Precord Pstruct order_t {
//!         Puint32 id;
//!         '|'; Pstring(:'|':) state;
//!         '|'; Puint32 total : total >= id;
//!     };
//!     Psource Parray orders_t { order_t[]; };
//!     "#,
//!     &registry,
//! )?;
//! let parser = PadsParser::new(&schema, &registry);
//! let mask = Mask::all(BaseMask::CheckAndSet);
//! let (orders, pd) = parser.parse_source(b"7|OPEN|19\n8|SHIP|20\n", &mask);
//! assert!(pd.is_ok());
//! assert_eq!(orders.len(), Some(2));
//! assert_eq!(orders.at_path("[1].state").and_then(Value::as_str), Some("SHIP"));
//! # Ok::<(), pads_check::CompileError>(())
//! ```

// Parsers must never abort on data: a reachable `unwrap`/`expect` on the
// parse path is a defect. Errors belong in parse descriptors. Tests are
// exempt (failing loudly is what they are for).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod batch;
pub mod descriptions;
pub mod generated;
pub mod eval;
pub mod parallel;
pub mod parse;
pub mod stream;
pub mod value;
pub mod verify;
pub mod vm;
pub mod write;

pub use pads_check::ir::{Schema, TypeId};
pub use pads_check::{check, compile, CheckError, CompileError};
pub use pads_runtime::{
    BaseMask, Charset, Cursor, Endian, ErrorBudget, ErrorCode, Loc, Mask, OnExhausted, ParseDesc,
    ParseState, PdKind, Pos, Prim, PrimKind, Progress, RecordDiscipline, RecoveryPolicy, Registry,
    ResumePoint, DEFAULT_MAX_INFLIGHT,
};
pub use pads_syntax::{parse as parse_description, Program, SyntaxError};

pub use arena::{push_value, to_value};
pub use batch::{Bitmap, ColTree, ColumnView, PrimColView, RecordBatch};
pub use eval::{Env, Ev};
pub use parse::{has_syntax_error, Elements, Engine, PadsParser, ParseOptions, Records};
pub use vm::VmProgram;
pub use stream::StreamRecords;
pub use value::Value;
pub use verify::{Verifier, Violation};
pub use write::Writer;

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str) -> (Schema, Registry) {
        let registry = Registry::standard();
        let schema = compile(src, &registry).expect("test description compiles");
        (schema, registry)
    }

    fn caset() -> Mask {
        Mask::all(BaseMask::CheckAndSet)
    }

    // ---- struct / literal basics ---------------------------------------

    #[test]
    fn parses_simple_struct() {
        let (schema, registry) = setup("Pstruct v_t { \"HTTP/\"; Puint8 major; '.'; Puint8 minor; };");
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"HTTP/1.0");
        let (v, pd) = parser.parse_named(&mut cur, "v_t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        assert_eq!(v.at_path("major").and_then(Value::as_u64), Some(1));
        assert_eq!(v.at_path("minor").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn literal_mismatch_is_partial() {
        let (schema, registry) = setup("Pstruct v_t { \"HTTP/\"; Puint8 major; };");
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"HTTQ/1");
        let (_, pd) = parser.parse_named(&mut cur, "v_t", &[], &caset());
        assert_eq!(pd.err_code, ErrorCode::LitMismatch);
        assert_eq!(pd.state, ParseState::Partial);
    }

    #[test]
    fn constraint_violation_is_semantic_and_keeps_value() {
        let (schema, registry) = setup("Pstruct p_t { Puint8 a; ','; Puint8 b : b > a; };");
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"9,3");
        let (v, pd) = parser.parse_named(&mut cur, "p_t", &[], &caset());
        assert_eq!(pd.nerr, 1);
        // The violation is recorded on the field's descriptor (aggregated
        // as NestedError at the struct level, like any nested error).
        let errors = pd.errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, "b");
        assert_eq!(errors[0].1, ErrorCode::ConstraintViolation);
        assert_eq!(pd.field("b").unwrap().err_code, ErrorCode::ConstraintViolation);
        assert_eq!(v.at_path("b").and_then(Value::as_u64), Some(3));
        assert!(!has_syntax_error(&pd));
    }

    #[test]
    fn masks_disable_constraint_checking() {
        let (schema, registry) = setup("Pstruct p_t { Puint8 a; ','; Puint8 b : b > a; };");
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"9,3");
        let (_, pd) = parser.parse_named(&mut cur, "p_t", &[], &Mask::all(BaseMask::Set));
        assert!(pd.is_ok(), "Set mask must skip the constraint: {pd}");
    }

    // ---- unions ---------------------------------------------------------

    #[test]
    fn ordered_union_takes_first_clean_branch() {
        let (schema, registry) = setup(
            r#"
            Punion client_t { Pip ip; Phostname host; };
            Pstruct t { client_t c; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"207.136.97.49 ");
        let (v, pd) = parser.parse_named(&mut cur, "client_t", &[], &caset());
        assert!(pd.is_ok());
        assert!(matches!(v, Value::Union { ref branch, .. } if branch == "ip"));
        let mut cur = parser.open(b"tj62.aol.com ");
        let (v, pd) = parser.parse_named(&mut cur, "client_t", &[], &caset());
        assert!(pd.is_ok());
        assert!(matches!(v, Value::Union { ref branch, .. } if branch == "host"));
    }

    #[test]
    fn union_constraints_select_branches_even_with_checks_off() {
        let (schema, registry) = setup(
            r#"
            Punion auth_id_t {
                Pchar unauthorized : unauthorized == '-';
                Pstring(:' ':) id;
            };
            Pstruct t { auth_id_t a; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        for mask in [caset(), Mask::all(BaseMask::Set)] {
            let mut cur = parser.open(b"- ");
            let (v, pd) = parser.parse_named(&mut cur, "auth_id_t", &[], &mask);
            assert!(pd.is_ok());
            assert!(matches!(v, Value::Union { ref branch, .. } if branch == "unauthorized"));
            let mut cur = parser.open(b"kfisher ");
            let (v, _) = parser.parse_named(&mut cur, "auth_id_t", &[], &mask);
            assert!(matches!(v, Value::Union { ref branch, .. } if branch == "id"));
        }
    }

    #[test]
    fn union_failure_reports_no_branch() {
        let (schema, registry) = setup(
            r#"
            Punion n_t { Puint8 small; Pip addr; };
            Pstruct t { n_t n; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"xyz");
        let (_, pd) = parser.parse_named(&mut cur, "n_t", &[], &caset());
        assert_eq!(pd.err_code, ErrorCode::UnionNoBranch);
    }

    #[test]
    fn switched_union_follows_selector() {
        let (schema, registry) = setup(
            r#"
            Punion body_t (:Puint8 kind:) Pswitch(kind) {
                Pcase 0: Puint32 num;
                Pcase 1: Pstring(:';':) text;
                Pdefault: Pvoid skip;
            };
            Pstruct msg_t { Puint8 kind; ':'; body_t(:kind:) body; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"0:12345");
        let (v, pd) = parser.parse_named(&mut cur, "msg_t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        assert_eq!(v.at_path("body.num").and_then(Value::as_u64), Some(12345));
        let mut cur = parser.open(b"1:hello;");
        let (v, _) = parser.parse_named(&mut cur, "msg_t", &[], &caset());
        assert_eq!(v.at_path("body.text").and_then(Value::as_str), Some("hello"));
        let mut cur = parser.open(b"9:whatever");
        let (v, pd) = parser.parse_named(&mut cur, "msg_t", &[], &caset());
        assert!(matches!(v.at_path("body"), Some(Value::Union { branch, .. }) if branch == "skip"));
        // Default branch consumes nothing, so the switch itself succeeded.
        assert!(pd.is_ok());
    }

    // ---- arrays -----------------------------------------------------------

    #[test]
    fn array_with_separator_and_eor_terminator() {
        let (schema, registry) = setup(
            r#"
            Pstruct ev_t { Pstring(:'|':) state; '|'; Puint32 ts; };
            Parray seq_t { ev_t[] : Psep('|') && Pterm(Peor); } Pwhere {
                Pforall (i Pin [0..length-2] : elts[i].ts <= elts[i+1].ts);
            };
            Precord Pstruct rec_t { Puint32 id; '|'; seq_t events; };
            Psource Parray recs_t { rec_t[]; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let data = b"7|A|10|B|20|C|30\n8|X|5\n";
        let (v, pd) = parser.parse_source(data, &caset());
        assert!(pd.is_ok(), "{pd:?}");
        assert_eq!(v.len(), Some(2));
        assert_eq!(v.at_path("[0].events").unwrap().len(), Some(3));
        assert_eq!(v.at_path("[0].events.[2].state").and_then(Value::as_str), Some("C"));
        assert_eq!(v.at_path("[1].events.[0].ts").and_then(Value::as_u64), Some(5));
    }

    #[test]
    fn array_where_clause_detects_unsorted_timestamps() {
        let (schema, registry) = setup(
            r#"
            Pstruct ev_t { Pstring(:'|':) state; '|'; Puint32 ts; };
            Parray seq_t { ev_t[] : Psep('|') && Pterm(Peor); } Pwhere {
                Pforall (i Pin [0..length-2] : elts[i].ts <= elts[i+1].ts);
            };
            Precord Pstruct rec_t { Puint32 id; '|'; seq_t events; };
            Psource Parray recs_t { rec_t[]; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let (_, pd) = parser.parse_source(b"7|A|30|B|20\n", &caset());
        assert_eq!(pd.nerr, 1);
        let errors = pd.errors();
        assert_eq!(errors[0].1, ErrorCode::ForallViolation);
        // ... and the mask can turn exactly that check off (Figure 7).
        let mut mask = caset();
        mask.child_mut(pads_runtime::mask::ELT).set_compound_at("events", BaseMask::Set);
        let (_, pd) = parser.parse_source(b"7|A|30|B|20\n", &mask);
        assert!(pd.is_ok(), "{pd}");
    }

    #[test]
    fn fixed_size_array_from_parameter() {
        let (schema, registry) = setup(
            r#"
            Parray bytes_t (:Puint32 n:) { Puint8[n] : Psep(','); };
            Pstruct packet_t { Puint32 len; ':'; bytes_t(:len:) body; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"3:7,8,9");
        let (v, pd) = parser.parse_named(&mut cur, "packet_t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        assert_eq!(v.at_path("body").unwrap().len(), Some(3));
        // Too few elements.
        let mut cur = parser.open(b"3:7,8");
        let (_, pd) = parser.parse_named(&mut cur, "packet_t", &[], &caset());
        assert!(!pd.is_ok());
    }

    #[test]
    fn array_with_literal_terminator() {
        let (schema, registry) = setup("Parray csv_t { Puint32[] : Psep(',') && Pterm(';'); };");
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"1,2,3;rest");
        let (v, pd) = parser.parse_named(&mut cur, "csv_t", &[], &caset());
        assert!(pd.is_ok());
        assert_eq!(v.len(), Some(3));
        assert_eq!(cur.rest(), b"rest");
        // Empty array: terminator immediately.
        let mut cur = parser.open(b";rest");
        let (v, pd) = parser.parse_named(&mut cur, "csv_t", &[], &caset());
        assert!(pd.is_ok());
        assert_eq!(v.len(), Some(0));
    }

    #[test]
    fn array_ended_predicate() {
        let (schema, registry) = setup(
            "Parray until_zero_t { Puint32[] : Psep(',') && Pended(elts[length-1] == 0); };",
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"5,3,0,7,1");
        let (v, pd) = parser.parse_named(&mut cur, "until_zero_t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        assert_eq!(v.len(), Some(3));
    }

    // ---- Popt, enums, typedefs -------------------------------------------

    #[test]
    fn popt_present_and_absent() {
        let (schema, registry) = setup(
            "Pstruct o_t { Puint32 a; '|'; Popt Puint32 b; '|'; Puint32 c; };",
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"1|2|3");
        let (v, pd) = parser.parse_named(&mut cur, "o_t", &[], &caset());
        assert!(pd.is_ok());
        assert_eq!(v.at_path("b").and_then(Value::as_u64), Some(2));
        let mut cur = parser.open(b"1||3");
        let (v, pd) = parser.parse_named(&mut cur, "o_t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        assert_eq!(v.at_path("b"), Some(&Value::Opt(None)));
    }

    #[test]
    fn enum_longest_match_and_failure() {
        let (schema, registry) = setup(
            r#"
            Penum m_t { GET, GETX, PUT };
            Pstruct t { m_t m; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"GETX ");
        let (v, pd) = parser.parse_named(&mut cur, "m_t", &[], &caset());
        assert!(pd.is_ok());
        assert!(matches!(v, Value::Enum { ref variant, .. } if variant == "GETX"));
        let mut cur = parser.open(b"ZAP");
        let (_, pd) = parser.parse_named(&mut cur, "m_t", &[], &caset());
        assert_eq!(pd.err_code, ErrorCode::EnumNoMatch);
    }

    #[test]
    fn typedef_range_constraint() {
        let (schema, registry) = setup(
            r#"
            Ptypedef Puint16_FW(:3:) response_t :
                response_t x => { 100 <= x && x < 600};
            Pstruct t { response_t r; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"200");
        let (v, pd) = parser.parse_named(&mut cur, "response_t", &[], &caset());
        assert!(pd.is_ok());
        assert_eq!(v.as_u64(), Some(200));
        let mut cur = parser.open(b"999");
        let (_, pd) = parser.parse_named(&mut cur, "response_t", &[], &caset());
        assert_eq!(pd.err_code, ErrorCode::ConstraintViolation);
    }

    // ---- records, recovery, entry points ----------------------------------

    #[test]
    fn panic_recovery_resynchronises_at_record_boundary() {
        let (schema, registry) = setup(
            r#"
            Precord Pstruct line_t { Puint32 n; ','; Puint32 m; };
            Psource Parray lines_t { line_t[]; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let data = b"1,2\ngarbage here\n5,6\n";
        let (v, pd) = parser.parse_source(data, &caset());
        assert_eq!(v.len(), Some(3));
        assert!(pd.nerr >= 1);
        // Records 0 and 2 are clean, record 1 is the bad one.
        assert_eq!(v.at_path("[0].n").and_then(Value::as_u64), Some(1));
        assert_eq!(v.at_path("[2].m").and_then(Value::as_u64), Some(6));
        let errors = pd.errors();
        assert!(errors.iter().all(|(p, _, _)| p.starts_with("[1]")));
    }

    #[test]
    fn element_at_a_time_iteration_matches_bulk_parse() {
        let (schema, registry) = setup(
            r#"
            Precord Pstruct line_t { Puint32 n; ','; Pstring(:',':) tag; };
            Psource Parray lines_t { line_t[]; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let data = b"1,ab
2,cd
3,ef
";
        let mask = caset();
        let (bulk, _) = parser.parse_source(data, &mask);
        let streamed: Vec<Value> =
            parser.elements(data, "lines_t", &mask).map(|(v, _)| v).collect();
        assert_eq!(bulk, Value::Array(streamed));
    }

    #[test]
    fn element_streaming_handles_separators_and_terminators() {
        let (schema, registry) = setup("Parray csv_t { Puint32[] : Psep(',') && Pterm(';'); };");
        let parser = PadsParser::new(&schema, &registry);
        let mask = caset();
        let vals: Vec<u64> = parser
            .elements(b"5,6,7;rest", "csv_t", &mask)
            .map(|(v, pd)| {
                assert!(pd.is_ok());
                v.as_u64().unwrap()
            })
            .collect();
        assert_eq!(vals, vec![5, 6, 7]);
        // Bad separator stops the stream with an error item.
        let items: Vec<_> = parser.elements(b"5|6;", "csv_t", &mask).collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].1.is_ok());
        assert!(!items[1].1.is_ok());
    }

    #[test]
    fn record_at_a_time_iteration_matches_bulk_parse() {
        let (schema, registry) = setup(
            r#"
            Precord Pstruct line_t { Puint32 n; };
            Psource Parray lines_t { line_t[]; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let data = b"1\n2\n3\n";
        let mask = caset();
        let (bulk, _) = parser.parse_source(data, &mask);
        let streamed: Vec<Value> =
            parser.records(data, "line_t", &mask).map(|(v, _)| v).collect();
        assert_eq!(bulk, Value::Array(streamed));
    }

    #[test]
    fn extra_data_before_eor_is_flagged() {
        let (schema, registry) = setup(
            r#"
            Precord Pstruct line_t { Puint32 n; };
            Psource Parray lines_t { line_t[]; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let (_, pd) = parser.parse_source(b"12 trailing\n", &caset());
        assert!(pd.errors().iter().any(|(_, c, _)| *c == ErrorCode::ExtraDataBeforeEor));
    }

    #[test]
    fn dependent_field_parsing() {
        // The width of the payload depends on an earlier field.
        let (schema, registry) = setup(
            "Pstruct p_t { Puint32 n; ':'; Pstring_FW(:n:) body; };",
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"5:hello rest");
        let (v, pd) = parser.parse_named(&mut cur, "p_t", &[], &caset());
        assert!(pd.is_ok());
        assert_eq!(v.at_path("body").and_then(Value::as_str), Some("hello"));
    }

    #[test]
    fn regex_literal_members_match_and_consume() {
        let (schema, registry) = setup(
            "Pstruct t { Pre \"[a-z]+=\"; Puint32 n; };",
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"width=42");
        let (v, pd) = parser.parse_named(&mut cur, "t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        assert_eq!(v.at_path("n").and_then(Value::as_u64), Some(42));
        let mut cur = parser.open(b"WIDTH=42");
        let (_, pd) = parser.parse_named(&mut cur, "t", &[], &caset());
        assert_eq!(pd.err_code, ErrorCode::RegexMismatch);
    }

    #[test]
    fn array_with_string_terminator() {
        let (schema, registry) = setup(
            "Parray csv_t { Puint32[] : Psep(',') && Pterm(\"END\"); };",
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"1,2END rest");
        let (v, pd) = parser.parse_named(&mut cur, "csv_t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        assert_eq!(v.len(), Some(2));
        assert_eq!(cur.rest(), b" rest");
    }

    #[test]
    fn union_rejects_named_branch_on_semantic_error() {
        let (schema, registry) = setup(
            r#"
            Ptypedef Puint8 small_t : small_t v => { v < 10 };
            Punion n_t { small_t small; Puint32 big; };
            Pstruct t { n_t n; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        // 7 fits the constrained branch.
        let mut cur = parser.open(b"7");
        let (v, pd) = parser.parse_named(&mut cur, "n_t", &[], &caset());
        assert!(pd.is_ok());
        assert!(matches!(v, Value::Union { ref branch, .. } if branch == "small"));
        // 42 violates small_t, so the union falls through to `big`.
        let mut cur = parser.open(b"42");
        let (v, pd) = parser.parse_named(&mut cur, "n_t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        assert!(matches!(v, Value::Union { ref branch, .. } if branch == "big"));
    }

    #[test]
    fn date_constraints_compare_as_epochs() {
        let (schema, registry) = setup(
            "Pstruct t { Pdate(:'|':) d : d >= 875000000; };",
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"15/Oct/1997:18:46:51 -0700|");
        let (_, pd) = parser.parse_named(&mut cur, "t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        let mut cur = parser.open(b"15/Oct/1967:18:46:51 -0700|");
        let (_, pd) = parser.parse_named(&mut cur, "t", &[], &caset());
        assert_eq!(pd.errors()[0].1, ErrorCode::ConstraintViolation);
    }

    #[test]
    fn nested_unions_resolve_inside_out() {
        let (schema, registry) = setup(
            r#"
            Punion inner_t { Pip ip; Puint32 num; };
            Punion outer_t { inner_t structured; Pstring(:' ':) raw; };
            Pstruct t { outer_t o; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"1.2.3.4 x");
        let (v, _) = parser.parse_named(&mut cur, "outer_t", &[], &caset());
        assert!(v.at_path("structured.ip").is_some(), "{v}");
        let mut cur = parser.open(b"99 x");
        let (v, _) = parser.parse_named(&mut cur, "outer_t", &[], &caset());
        assert!(v.at_path("structured.num").is_some(), "{v}");
        let mut cur = parser.open(b"hello x");
        let (v, _) = parser.parse_named(&mut cur, "outer_t", &[], &caset());
        assert_eq!(v.at_path("raw").and_then(Value::as_str), Some("hello"));
    }

    #[test]
    fn struct_pwhere_relates_fields() {
        let (schema, registry) = setup(
            "Pstruct span_t { Puint32 lo; ','; Puint32 hi; } Pwhere { lo <= hi };",
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"3,9");
        let (_, pd) = parser.parse_named(&mut cur, "span_t", &[], &caset());
        assert!(pd.is_ok());
        let mut cur = parser.open(b"9,3");
        let (_, pd) = parser.parse_named(&mut cur, "span_t", &[], &caset());
        assert_eq!(pd.err_code, ErrorCode::WhereViolation);
        // ... and the compound mask turns exactly that off.
        let mut m = caset();
        m.set_compound(BaseMask::Set);
        let mut cur = parser.open(b"9,3");
        let (_, pd) = parser.parse_named(&mut cur, "span_t", &[], &m);
        assert!(pd.is_ok());
    }

    #[test]
    fn functions_usable_in_array_where() {
        let (schema, registry) = setup(
            r#"
            bool within(int v, int cap) { return v <= cap; };
            Parray caps_t { Puint32[] : Psep(',') && Pterm(';'); } Pwhere {
                Pforall (i Pin [0..length-1] : within(elts[i], 100))
            };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"5,50,99;");
        let (_, pd) = parser.parse_named(&mut cur, "caps_t", &[], &caset());
        assert!(pd.is_ok(), "{pd}");
        let mut cur = parser.open(b"5,500;");
        let (_, pd) = parser.parse_named(&mut cur, "caps_t", &[], &caset());
        assert_eq!(pd.err_code, ErrorCode::ForallViolation);
    }

    // ---- write-back --------------------------------------------------------

    #[test]
    fn write_back_round_trips_clean_records() {
        let (schema, registry) = setup(
            r#"
            Precord Pstruct line_t { Puint32 n; '|'; Pstring(:'|':) tag; '|'; Popt Puint32 x; };
            Psource Parray lines_t { line_t[]; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let writer = Writer::new(&schema, &registry);
        let data = b"1|abc|9\n2|def|\n";
        let (v, pd) = parser.parse_source(data, &caset());
        assert!(pd.is_ok());
        let out = writer.write_source(&v).unwrap();
        assert_eq!(out, data);
    }

    // ---- verify -------------------------------------------------------------

    #[test]
    fn verify_detects_broken_invariants_after_mutation() {
        let (schema, registry) = setup(
            r#"
            Pstruct p_t { Puint8 a; ','; Puint8 b : b >= a; };
            "#,
        );
        let parser = PadsParser::new(&schema, &registry);
        let mut cur = parser.open(b"3,9");
        let (mut v, pd) = parser.parse_named(&mut cur, "p_t", &[], &caset());
        assert!(pd.is_ok());
        let verifier = Verifier::new(&schema);
        assert!(verifier.is_valid("p_t", &v));
        // Break the invariant in memory.
        *v.field_mut("b").unwrap() = Value::Prim(Prim::Uint(1));
        let violations = verifier.verify_named("p_t", &v);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].path, "b");
    }
}

#[cfg(test)]
mod write_tests {
    use super::*;

    #[test]
    fn dependent_width_write_back_round_trips() {
        // The width argument of the string is an earlier field; the writer
        // must evaluate it from the in-memory representation.
        let registry = Registry::standard();
        let schema = compile(
            "Precord Pstruct p_t { Puint32 n; ':'; Pstring_FW(:n:) body; }; Psource Parray ps_t { p_t[]; };",
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let writer = Writer::new(&schema, &registry);
        let data = b"5:hello\n2:ab\n11:hello world\n";
        let (v, pd) = parser.parse_source(data, &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok(), "{:?}", pd.errors());
        assert_eq!(writer.write_source(&v).unwrap(), data);
    }

    #[test]
    fn switched_union_write_back_round_trips() {
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Punion b_t (:Puint8 k:) Pswitch(k) {
                Pcase 0: Puint32 num;
                Pcase 1: Pstring(:'|':) text;
                Pdefault: Pvoid nothing;
            };
            Precord Pstruct m_t { Puint8 k; ':'; b_t(:k:) body; '|'; Puint8 z; };
            Psource Parray ms_t { m_t[]; };
            "#,
        &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let writer = Writer::new(&schema, &registry);
        let data = b"0:42|7\n1:hi|8\n5:|9\n";
        let (v, pd) = parser.parse_source(data, &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok(), "{:?}", pd.errors());
        assert_eq!(writer.write_source(&v).unwrap(), data);
    }

    #[test]
    fn length_prefixed_record_write_back() {
        let registry = Registry::standard();
        let schema = compile(
            "Precord Pstruct r_t { Pstring_FW(:3:) s; }; Psource Parray rs_t { r_t[]; };",
            &registry,
        )
        .unwrap();
        let opts = ParseOptions {
            discipline: RecordDiscipline::LengthPrefixed {
                header_bytes: 2,
                endian: Endian::Big,
            },
            ..Default::default()
        };
        let parser = PadsParser::new(&schema, &registry).with_options(opts);
        let writer = Writer::new(&schema, &registry).with_options(opts);
        let data = [0u8, 3, b'a', b'b', b'c', 0, 3, b'x', b'y', b'z'];
        let (v, pd) = parser.parse_source(&data, &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok());
        assert_eq!(writer.write_source(&v).unwrap(), data);
    }
}

#[cfg(test)]
mod verify_more_tests {
    use super::*;

    #[test]
    fn verifier_handles_parameterised_arrays() {
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Parray vals_t (:Puint8 n:) { Puint32[n] : Psep(','); };
            Precord Pstruct r_t { Puint8 nvals; '|'; vals_t(:nvals:) vals; };
            Psource Parray rs_t { r_t[]; };
            "#,
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let verifier = Verifier::new(&schema);
        let (v, pd) = parser.parse_source(b"3|7,8,9\n", &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok());
        let rec = v.index(0).unwrap();
        assert!(verifier.is_valid("r_t", rec));
        // Shrink the array without updating nvals: the verifier has no
        // physical layout to check, so this still verifies (sizes are
        // syntax); but a broken union branch name is caught.
        let mut broken = rec.clone();
        *broken.field_mut("vals").unwrap() = Value::Union {
            branch: "nosuch".into(),
            index: 0,
            value: Box::new(Value::unit()),
        };
        assert!(!verifier.is_valid("r_t", &broken));
    }

    #[test]
    fn verifier_checks_array_where_with_parameters() {
        let registry = Registry::standard();
        let schema = compile(
            r#"
            Parray caps_t (:Puint32 cap:) { Puint32[] : Psep(',') && Pterm(';'); } Pwhere {
                Pforall (i Pin [0..length-1] : elts[i] <= cap)
            };
            Pstruct t { Puint32 cap; ':'; caps_t(:cap:) vals; };
            "#,
            &registry,
        )
        .unwrap();
        let parser = PadsParser::new(&schema, &registry);
        let verifier = Verifier::new(&schema);
        let mut cur = parser.open(b"50:5,49;");
        let (mut v, pd) = parser.parse_named(&mut cur, "t", &[], &Mask::all(BaseMask::CheckAndSet));
        assert!(pd.is_ok(), "{pd}");
        assert!(verifier.is_valid("t", &v));
        // Raise an element above the cap in memory.
        if let Some(Value::Array(elts)) = v.field_mut("vals") {
            elts[0] = Value::Prim(Prim::Uint(99));
        }
        let violations = verifier.verify_named("t", &v);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].code, ErrorCode::ForallViolation);
    }
}
