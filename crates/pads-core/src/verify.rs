//! Verification of in-memory values (`*_verify` in the paper's generated
//! library).
//!
//! After an application transforms a representation — like Figure 7's
//! `cnvPhoneNumbers` — it can re-check every semantic constraint without
//! reparsing: field constraints, typedef predicates, and `Pwhere` clauses,
//! recursively. Physical syntax (literals, widths) is not involved; that is
//! the parser's business.

use pads_check::ir::{MemberIr, Schema, TypeId, TypeKind, TyUse};
use pads_runtime::{ErrorCode, Name, Prim};
use pads_syntax::ast::Expr;

use crate::eval::{self, Env, Ev};
use crate::value::Value;

/// A constraint violation found by [`Verifier::verify_named`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Dotted path to the offending node (array elements as `[i]`).
    pub path: String,
    /// What went wrong.
    pub code: ErrorCode,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.code)
    }
}

/// Re-checks semantic constraints on in-memory values.
pub struct Verifier<'s> {
    schema: &'s Schema,
}

impl<'s> Verifier<'s> {
    /// Creates a verifier for `schema`.
    pub fn new(schema: &'s Schema) -> Verifier<'s> {
        Verifier { schema }
    }

    /// Verifies `value` against the named type. Returns every violation
    /// (empty means the value satisfies all constraints).
    ///
    /// When `name` is not declared in the schema the result is a single
    /// [`ErrorCode::InternalError`] violation — never a panic.
    pub fn verify_named(&self, name: &str, value: &Value) -> Vec<Violation> {
        let Some(id) = self.schema.type_id(name) else {
            return vec![Violation { path: String::new(), code: ErrorCode::InternalError }];
        };
        let mut out = Vec::new();
        self.verify_def(id, &[], value, "", &mut out);
        out
    }

    /// Convenience predicate: no violations (the paper's
    /// `entry_t_verify(rep)` boolean).
    pub fn is_valid(&self, name: &str, value: &Value) -> bool {
        self.verify_named(name, value).is_empty()
    }

    fn verify_def(
        &self,
        id: TypeId,
        args: &[Prim],
        value: &Value,
        path: &str,
        out: &mut Vec<Violation>,
    ) {
        let def = self.schema.def(id);
        let params: Vec<(Name, Value)> = def
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| (Name::shared(&p.name), Value::Prim(a.clone())))
            .collect();
        match (&def.kind, value) {
            (TypeKind::Struct { members }, Value::Struct { fields }) => {
                for m in members {
                    let MemberIr::Field(f) = m else { continue };
                    let Some(v) = value.field(&f.name) else {
                        out.push(Violation {
                            path: join(path, &f.name),
                            code: ErrorCode::EvalError,
                        });
                        continue;
                    };
                    if let Some(c) = &f.constraint {
                        self.check(c, &params, fields, &join(path, &f.name), out);
                    }
                    self.verify_tyuse(&f.ty, &params, fields, v, &join(path, &f.name), out);
                }
                if let Some(w) = &def.where_clause {
                    self.check(w, &params, fields, path, out);
                }
            }
            (TypeKind::Union { branches, .. }, Value::Union { branch, value: inner, .. }) => {
                let Some(b) = branches.iter().find(|b| &b.field.name == branch) else {
                    out.push(Violation { path: path.to_owned(), code: ErrorCode::EvalError });
                    return;
                };
                let bound = [(branch.clone(), (**inner).clone())];
                if let Some(c) = &b.field.constraint {
                    self.check(c, &params, &bound, &join(path, branch), out);
                }
                self.verify_tyuse(&b.field.ty, &params, &[], inner, &join(path, branch), out);
            }
            (TypeKind::Array { elem, .. }, Value::Array(elts)) => {
                for (i, e) in elts.iter().enumerate() {
                    self.verify_tyuse(elem, &params, &[], e, &join(path, &format!("[{i}]")), out);
                }
                if let Some(w) = &def.where_clause {
                    let arr = Value::Array(elts.clone());
                    let len = Value::Prim(Prim::Uint(elts.len() as u64));
                    let bound =
                        [(Name::from_static("elts"), arr), (Name::from_static("length"), len)];
                    self.check_with_code(
                        w,
                        &params,
                        &bound,
                        path,
                        forall_code(w),
                        out,
                    );
                }
            }
            (TypeKind::Enum { variants }, Value::Enum { variant, .. }) => {
                if !variants.iter().any(|v| v == variant) {
                    out.push(Violation { path: path.to_owned(), code: ErrorCode::EnumNoMatch });
                }
            }
            (TypeKind::Typedef { base, var, pred }, v) => {
                if let (Some(name), Some(p)) = (var, pred) {
                    let bound = [(Name::shared(name), v.clone())];
                    self.check(p, &params, &bound, path, out);
                }
                self.verify_tyuse(base, &params, &[], v, path, out);
            }
            _ => out.push(Violation { path: path.to_owned(), code: ErrorCode::EvalError }),
        }
    }

    fn verify_tyuse(
        &self,
        ty: &TyUse,
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
        value: &Value,
        path: &str,
        out: &mut Vec<Violation>,
    ) {
        match (ty, value) {
            (TyUse::Opt(_), Value::Opt(None)) => {}
            (TyUse::Opt(inner), Value::Opt(Some(v))) => {
                self.verify_tyuse(inner, params, fields, v, path, out)
            }
            (TyUse::Base { .. }, Value::Prim(_)) => {}
            (TyUse::Named { id, args }, v) => {
                let mut env = self.env(params, fields);
                let prims: Result<Vec<Prim>, _> =
                    args.iter().map(|a| eval::eval_prim(a, &mut env)).collect();
                drop(env);
                match prims {
                    Ok(prims) => self.verify_def(*id, &prims, v, path, out),
                    Err(code) => out.push(Violation { path: path.to_owned(), code }),
                }
            }
            _ => out.push(Violation { path: path.to_owned(), code: ErrorCode::EvalError }),
        }
    }

    fn env<'e>(
        &'e self,
        params: &'e [(Name, Value)],
        fields: &'e [(Name, Value)],
    ) -> Env<'e> {
        let mut env = Env::new(self.schema);
        for (n, v) in params {
            env.push(n, Ev::Ref(v));
        }
        for (n, v) in fields {
            env.push(n, Ev::Ref(v));
        }
        env
    }

    fn check(
        &self,
        expr: &Expr,
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
        path: &str,
        out: &mut Vec<Violation>,
    ) {
        self.check_with_code(expr, params, fields, path, ErrorCode::ConstraintViolation, out);
    }

    fn check_with_code(
        &self,
        expr: &Expr,
        params: &[(Name, Value)],
        fields: &[(Name, Value)],
        path: &str,
        code: ErrorCode,
        out: &mut Vec<Violation>,
    ) {
        let mut env = self.env(params, fields);
        match eval::eval_bool(expr, &mut env) {
            Ok(true) => {}
            Ok(false) => out.push(Violation { path: path.to_owned(), code }),
            Err(e) => out.push(Violation { path: path.to_owned(), code: e }),
        }
    }
}

fn forall_code(w: &Expr) -> ErrorCode {
    if matches!(w, Expr::Forall { .. }) {
        ErrorCode::ForallViolation
    } else {
        ErrorCode::WhereViolation
    }
}

fn join(path: &str, name: &str) -> String {
    if path.is_empty() {
        name.to_owned()
    } else {
        format!("{path}.{name}")
    }
}
