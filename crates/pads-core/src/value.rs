//! The in-memory representation of parsed data.
//!
//! Every PADS type maps to a [`Value`] shape, mirroring the C mapping of §4:
//! `Pstruct`s to field lists, `Punion`s to tagged values, `Parray`s to
//! element vectors, `Penum`s to variant indices, `Popt`s to options, and
//! base types to [`Prim`]s.

use pads_runtime::{Name, Prim};

/// A parsed value.
///
/// Structure names are interned [`Name`]s: carrying a field, branch, or
/// variant name costs a refcount bump (interpreter) or a pointer copy
/// (generated parsers), never a per-record heap `String`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A base-type value.
    Prim(Prim),
    /// A `Pstruct`: named fields in declaration order (literal members do
    /// not appear — they are part of the physical syntax only).
    Struct {
        /// `(name, value)` pairs.
        fields: Vec<(Name, Value)>,
    },
    /// A `Punion`: the branch that parsed.
    Union {
        /// Name of the taken branch.
        branch: Name,
        /// Declaration index of the taken branch.
        index: usize,
        /// The branch's value.
        value: Box<Value>,
    },
    /// A `Parray`.
    Array(Vec<Value>),
    /// A `Penum` variant.
    Enum {
        /// Variant name.
        variant: Name,
        /// Declaration index of the variant.
        index: usize,
    },
    /// A `Popt`: present or absent (`NONE` in the paper's terminology).
    Opt(Option<Box<Value>>),
}

impl Value {
    /// The unit value (used for `Pvoid` and ignored members).
    pub fn unit() -> Value {
        Value::Prim(Prim::Unit)
    }

    /// The primitive inside, if this is a base value.
    pub fn as_prim(&self) -> Option<&Prim> {
        match self {
            Value::Prim(p) => Some(p),
            _ => None,
        }
    }

    /// Looks up a struct field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct { fields } => {
                fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Mutable struct field lookup.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut Value> {
        match self {
            Value::Struct { fields } => {
                fields.iter_mut().find(|(n, _)| n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Array element by index.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(elts) => elts.get(i),
            _ => None,
        }
    }

    /// Number of array elements (`None` for non-arrays).
    pub fn len(&self) -> Option<usize> {
        match self {
            Value::Array(elts) => Some(elts.len()),
            _ => None,
        }
    }

    /// Whether this is an empty array.
    pub fn is_empty(&self) -> Option<bool> {
        self.len().map(|n| n == 0)
    }

    /// Unsigned-integer view through prim/enum/present-option layers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Prim(p) => p.as_u64(),
            Value::Enum { index, .. } => Some(*index as u64),
            Value::Opt(Some(inner)) => inner.as_u64(),
            _ => None,
        }
    }

    /// Signed-integer view through prim/enum/present-option layers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Prim(p) => p.as_i64(),
            Value::Enum { index, .. } => Some(*index as i64),
            Value::Opt(Some(inner)) => inner.as_i64(),
            _ => None,
        }
    }

    /// String view (strings and present options of strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Prim(p) => p.as_str(),
            Value::Opt(Some(inner)) => inner.as_str(),
            _ => None,
        }
    }

    /// Traverses a dot/bracket path like `"header.order_num"` or
    /// `"events.[0].tstamp"`.
    pub fn at_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for part in path.split('.') {
            if part.is_empty() {
                continue;
            }
            cur = if let Some(idx) = part.strip_prefix('[').and_then(|p| p.strip_suffix(']')) {
                cur.index(idx.parse().ok()?)?
            } else {
                match cur {
                    Value::Union { branch, value, .. } if branch == part => value,
                    Value::Opt(Some(inner)) => inner.field(part).or_else(|| {
                        if let Value::Union { branch, value, .. } = inner.as_ref() {
                            (branch == part).then_some(value.as_ref())
                        } else {
                            None
                        }
                    })?,
                    other => other.field(part)?,
                }
            };
        }
        Some(cur)
    }
}

impl From<Prim> for Value {
    fn from(p: Prim) -> Value {
        Value::Prim(p)
    }
}

impl std::fmt::Display for Value {
    /// Renders a debugging view (`{a: 1, b: [2, 3]}`); for faithful output
    /// use the writer or the formatting tool.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Prim(p) => write!(f, "{p}"),
            Value::Struct { fields } => {
                f.write_str("{")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                f.write_str("}")
            }
            Value::Union { branch, value, .. } => write!(f, "{branch}({value})"),
            Value::Array(elts) => {
                f.write_str("[")?;
                for (i, v) in elts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Enum { variant, .. } => f.write_str(variant),
            Value::Opt(None) => f.write_str("NONE"),
            Value::Opt(Some(v)) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Struct {
            fields: vec![
                ("n".into(), Value::Prim(Prim::Uint(7))),
                (
                    "events".into(),
                    Value::Array(vec![
                        Value::Struct {
                            fields: vec![("tstamp".into(), Value::Prim(Prim::Uint(10)))],
                        },
                        Value::Struct {
                            fields: vec![("tstamp".into(), Value::Prim(Prim::Uint(20)))],
                        },
                    ]),
                ),
                (
                    "ramp".into(),
                    Value::Union {
                        branch: "genRamp".into(),
                        index: 1,
                        value: Box::new(Value::Prim(Prim::Uint(152_272))),
                    },
                ),
            ],
        }
    }

    #[test]
    fn path_traversal() {
        let v = sample();
        assert_eq!(v.at_path("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.at_path("events.[1].tstamp").and_then(Value::as_u64), Some(20));
        assert_eq!(v.at_path("ramp.genRamp").and_then(Value::as_u64), Some(152_272));
        assert!(v.at_path("missing").is_none());
        assert!(v.at_path("events.[9]").is_none());
    }

    #[test]
    fn display_shape() {
        assert_eq!(
            sample().at_path("events").unwrap().to_string(),
            "[{tstamp: 10}, {tstamp: 20}]"
        );
        assert_eq!(Value::Opt(None).to_string(), "NONE");
    }

    #[test]
    fn enum_coerces_to_index() {
        let v = Value::Enum { variant: "PUT".into(), index: 1 };
        assert_eq!(v.as_u64(), Some(1));
    }
}
