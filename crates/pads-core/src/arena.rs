//! Owned-[`Value`] bridge for the [`pads_runtime::arena`] tier.
//!
//! The arena itself lives in `pads-runtime` so generated parsers can
//! lower into it directly (borrowed `PStr` leaves stay borrowed, field
//! names are compile-time [`NameId`]s). This module supplies the two
//! conversions the interpreter side needs:
//!
//! * [`push_value`] — bridge an owned [`Value`] tree into the arena
//!   (string leaves spill into the arena text heap: the owned tree has
//!   already paid for them, so nothing borrows);
//! * [`to_value`] — convert an arena value back to an owned [`Value`]
//!   that is byte-identical to what the owned path would have produced
//!   for the same input. This is the equivalence the batch writers,
//!   accumulators, and the round-trip tests rely on.

use pads_runtime::{AShape, AVal, AValRef, NameId, NameTable, ValueArena};

use crate::value::Value;

/// Bridges an owned [`Value`] into `arena`, interning any names it
/// carries into `names`, and returns the handle.
pub fn push_value(arena: &mut ValueArena<'_>, v: &Value, names: &mut NameTable) -> AVal {
    match v {
        Value::Prim(p) => arena.prim(p),
        Value::Struct { fields } => {
            let pairs: Vec<(NameId, AVal)> = fields
                .iter()
                .map(|(n, v)| (names.intern(n.clone()), push_value(arena, v, names)))
                .collect();
            arena.strct(&pairs)
        }
        Value::Union { branch, index, value } => {
            let inner = push_value(arena, value, names);
            let name = names.intern(branch.clone());
            arena.union(name, *index, inner)
        }
        Value::Array(elts) => {
            let kids: Vec<AVal> = elts.iter().map(|e| push_value(arena, e, names)).collect();
            arena.array(&kids)
        }
        Value::Enum { variant, index } => {
            let name = names.intern(variant.clone());
            arena.enumv(name, *index)
        }
        Value::Opt(None) => arena.opt_none(),
        Value::Opt(Some(inner)) => {
            let v = push_value(arena, inner, names);
            arena.opt_some(v)
        }
    }
}

/// Converts an arena value back to the owned representation —
/// byte-identical to the [`Value`] the owned path builds for the same
/// input.
pub fn to_value(r: AValRef<'_, '_>, names: &NameTable) -> Value {
    match r.shape() {
        AShape::Prim => Value::Prim(r.prim().unwrap_or(pads_runtime::Prim::Unit)),
        AShape::Struct(_) => Value::Struct {
            fields: r
                .fields()
                .map(|(n, v)| (names.name(n).clone(), to_value(v, names)))
                .collect(),
        },
        AShape::Union => {
            // Shape guarantees the branch exists; the fallback never runs.
            match r.branch() {
                Some((name, index, value)) => Value::Union {
                    branch: names.name(name).clone(),
                    index,
                    value: Box::new(to_value(value, names)),
                },
                None => Value::Prim(pads_runtime::Prim::Unit),
            }
        }
        AShape::Array(_) => Value::Array(r.elements().map(|e| to_value(e, names)).collect()),
        AShape::Enum => match r.variant() {
            Some((name, index)) => Value::Enum { variant: names.name(name).clone(), index },
            None => Value::Prim(pads_runtime::Prim::Unit),
        },
        AShape::Opt(false) => Value::Opt(None),
        AShape::Opt(true) => {
            Value::Opt(r.opt_inner().map(|v| Box::new(to_value(v, names))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pads_runtime::Prim;

    fn sample_owned() -> Value {
        Value::Struct {
            fields: vec![
                ("n".into(), Value::Prim(Prim::Uint(7))),
                ("s".into(), Value::Prim(Prim::String("GET".into()))),
                (
                    "events".into(),
                    Value::Array(vec![
                        Value::Struct {
                            fields: vec![("tstamp".into(), Value::Prim(Prim::Uint(10)))],
                        },
                        Value::Struct {
                            fields: vec![("tstamp".into(), Value::Prim(Prim::Uint(20)))],
                        },
                    ]),
                ),
                (
                    "ramp".into(),
                    Value::Union {
                        branch: "genRamp".into(),
                        index: 1,
                        value: Box::new(Value::Prim(Prim::Uint(152_272))),
                    },
                ),
                ("maybe".into(), Value::Opt(None)),
                ("tag".into(), Value::Enum { variant: "PUT".into(), index: 1 }),
            ],
        }
    }

    #[test]
    fn owned_round_trips_byte_identical() {
        let owned = sample_owned();
        let mut arena = ValueArena::new();
        let mut names = NameTable::new();
        let h = push_value(&mut arena, &owned, &mut names);
        assert_eq!(to_value(arena.get(h), &names), owned);
    }

    #[test]
    fn borrowed_leaves_convert_to_owned_strings() {
        let data = b"GET /index.html HTTP/1.1";
        let s = std::str::from_utf8(&data[0..3]).unwrap();
        let mut arena = ValueArena::new();
        let mut names = NameTable::new();
        let method = names.intern("method");
        let sv = arena.str_borrowed(s);
        let rec = arena.strct(&[(method, sv)]);
        assert_eq!(
            to_value(arena.get(rec), &names),
            Value::Struct {
                fields: vec![("method".into(), Value::Prim(Prim::String("GET".into())))]
            }
        );
    }

    #[test]
    fn navigation_matches_value_api() {
        let owned = sample_owned();
        let mut arena = ValueArena::new();
        let mut names = NameTable::new();
        let h = push_value(&mut arena, &owned, &mut names);
        let r = arena.get(h);
        assert_eq!(r.shape(), AShape::Struct(6));
        assert_eq!(r.field("n", &names).unwrap().as_u64(), owned.field("n").unwrap().as_u64());
        assert_eq!(r.field("s", &names).unwrap().as_str(), owned.field("s").unwrap().as_str());
        let events = r.field("events", &names).unwrap();
        assert_eq!(events.shape(), AShape::Array(2));
        assert_eq!(
            events.index(1).unwrap().field("tstamp", &names).unwrap().as_u64(),
            owned.at_path("events.[1].tstamp").and_then(|v| v.as_u64())
        );
        let (bname, bidx, bval) = r.field("ramp", &names).unwrap().branch().unwrap();
        assert_eq!(names.name(bname), "genRamp");
        assert_eq!(bidx, 1);
        assert_eq!(bval.as_u64(), Some(152_272));
        assert_eq!(r.field("maybe", &names).unwrap().shape(), AShape::Opt(false));
        assert_eq!(r.field("tag", &names).unwrap().as_u64(), Some(1));
    }

    #[test]
    fn arena_reuse_across_batches() {
        let mut arena = ValueArena::new();
        let mut names = NameTable::new();
        let owned = sample_owned();
        for _ in 0..3 {
            let mut handles = Vec::new();
            for _ in 0..50 {
                handles.push(push_value(&mut arena, &owned, &mut names));
            }
            for h in handles {
                assert_eq!(to_value(arena.get(h), &names), owned);
            }
            arena.reset();
        }
        // Names persist across batches: interning is per-schema.
        assert!(names.lookup("events").is_some());
    }
}
