//! Parallel record-sharded parsing for the interpreter.
//!
//! This is the interpreter front-end to [`pads_runtime::par`]: the source is
//! split into record-aligned shards, each shard is parsed on its own worker
//! thread by a thread-local [`PadsParser`], and the per-record results are
//! *streamed* through bounded channels into an in-order merge. The output —
//! values, parse descriptors (with positions rebased to global
//! coordinates), and the [`ErrorBudget`] — is byte-identical to
//! [`PadsParser::records`] run sequentially, under every recovery policy;
//! see the determinism notes on [`pads_runtime::par`].
//!
//! Streaming is what bounds memory and enables durability: at most
//! `max_inflight` records per shard are retained ahead of the merge, and
//! [`PadsParser::records_par_stream`] hands every record to the consumer
//! with a [`Progress`] cursor (committed offset, record index, budget) the
//! moment its turn comes, so a checkpoint journal can commit during the
//! run instead of after it. [`PadsParser::records_par_resumed`] continues
//! from such a checkpoint.
//!
//! Observers are per-worker: [`PadsParser::records_par_observed`] takes a
//! *factory* that builds one [`WorkerObs`] attachment per worker thread —
//! a dense [`MetricsCore`](pads_runtime::MetricsCore) (the `Send`-able
//! counter slabs; the usual choice), a legacy event-stream observer, or
//! both; the handles themselves never cross threads — plus a harvest
//! closure drained once per record, and returns the per-record sink
//! deltas in merge order for the caller to fold together. Positions in
//! worker-side observer events are shard-local; aggregate counters
//! (record counts, error codes, type hits) are unaffected and merge
//! exactly.

use pads_runtime::par::{self, Progress, RecordMsg, Shard, ShardSender};
use pads_runtime::{
    ErrorBudget, Mask, ParseDesc, RecoveryPolicy, ResumePoint, WorkerObs, DEFAULT_MAX_INFLIGHT,
};

use crate::parse::{PadsParser, ParseOptions};
use crate::value::Value;

type RecordItems = Vec<(Value, ParseDesc)>;

impl<'s> PadsParser<'s> {
    /// Parses `data` record-at-a-time with the named record type on up to
    /// `jobs` worker threads, returning the records in source order plus the
    /// final error-budget tally.
    ///
    /// Equivalent to draining [`PadsParser::records`] and reading its
    /// budget, for any `jobs`; `jobs <= 1` *is* the sequential path. The
    /// parser's own observer is not carried into workers (observer handles
    /// are not `Send`) — use [`records_par_observed`](Self::records_par_observed)
    /// to observe a parallel parse.
    pub fn records_par(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
        jobs: usize,
    ) -> (RecordItems, ErrorBudget) {
        self.records_par_resumed(data, name, mask, jobs, ResumePoint::default())
    }

    /// Like [`records_par`](Self::records_par), but continuing from a
    /// committed [`ResumePoint`] (global source coordinates): only records
    /// from `resume.offset` / `resume.record` on are parsed, with the
    /// budget tally restored. Descriptors carry global coordinates, so a
    /// resumed run's output is the uninterrupted run's output minus the
    /// already-committed prefix.
    pub fn records_par_resumed(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
        jobs: usize,
        resume: ResumePoint,
    ) -> (RecordItems, ErrorBudget) {
        let mut items = Vec::new();
        let budget = self.records_par_stream(
            data,
            name,
            mask,
            jobs,
            DEFAULT_MAX_INFLIGHT,
            resume,
            None::<&ObserverlessFactory>,
            |value, pd, _extra, _progress| items.push((value, pd)),
        );
        (items, budget)
    }

    /// Like [`records_par`](Self::records_par), but folding the merged
    /// stream straight into a columnar
    /// [`RecordBatch`](crate::batch::RecordBatch) instead of a vector of
    /// per-record trees: the close path (report, accumulators, writers)
    /// reads contiguous columns, and row `i` reconstructs exactly what
    /// `records_par` would have returned at index `i`.
    pub fn records_par_batched(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
        jobs: usize,
    ) -> (crate::batch::RecordBatch, ErrorBudget) {
        let mut batch = crate::batch::RecordBatch::new();
        let budget = self.records_par_stream(
            data,
            name,
            mask,
            jobs,
            DEFAULT_MAX_INFLIGHT,
            ResumePoint::default(),
            None::<&ObserverlessFactory>,
            |value, pd, _extra, _progress| batch.push(&value, &pd),
        );
        (batch, budget)
    }

    /// Like [`records_par`](Self::records_par), but each worker thread (and
    /// the sequential-replay path, if taken) gets its own observer from
    /// `observer`, and the harvested per-record sink deltas are returned in
    /// merge order for the caller to fold together.
    ///
    /// The factory returns the observation to attach plus a closure that
    /// drains the sink's accumulation since its previous call (sinks and
    /// cores are plain data and cross threads; handles do not). It is
    /// called once per record, so the extras fold in *record* order —
    /// which is what keeps merged counters exact even when the merge
    /// diverts to sequential replay mid-shard.
    pub fn records_par_observed<E, F>(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
        jobs: usize,
        observer: F,
    ) -> (RecordItems, ErrorBudget, Vec<E>)
    where
        E: Send,
        F: Fn() -> (WorkerObs, Box<dyn FnMut() -> E>) + Sync,
    {
        let mut items = Vec::new();
        let mut extras = Vec::new();
        let budget = self.records_par_stream(
            data,
            name,
            mask,
            jobs,
            DEFAULT_MAX_INFLIGHT,
            ResumePoint::default(),
            Some(&observer),
            |value, pd, extra, _progress| {
                items.push((value, pd));
                extras.extend(extra);
            },
        );
        (items, budget, extras)
    }

    /// The streaming engine under all the `records_par*` entry points:
    /// parses `data` from `resume` on up to `jobs` workers, bounding each
    /// worker's lead over the in-order merge to `max_inflight` records, and
    /// hands every merged record to `consume` exactly once, in record
    /// order, together with its observer harvest (when `observer` is given)
    /// and a [`Progress`] cursor in **global** coordinates — the committed
    /// byte offset, record index, and budget tally after that record, i.e.
    /// exactly what a checkpoint journal commits.
    ///
    /// Returns the final budget tally.
    #[allow(clippy::too_many_arguments)]
    pub fn records_par_stream<E, F, C>(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
        jobs: usize,
        max_inflight: usize,
        resume: ResumePoint,
        observer: Option<&F>,
        mut consume: C,
    ) -> ErrorBudget
    where
        E: Send,
        F: Fn() -> (WorkerObs, Box<dyn FnMut() -> E>) + Sync,
        C: FnMut(Value, ParseDesc, Option<E>, &Progress),
    {
        let schema = self.schema();
        let registry = self.registry();
        let options = self.options();
        if resume.budget.stopped() {
            return resume.budget;
        }
        let base = resume.offset.min(data.len());
        let tail = &data[base..];
        // Unknown names poison the iterator with a single error item, which
        // has no per-shard meaning: let one sequential "shard" handle it.
        let jobs = if schema.type_id(name).is_some() { jobs.max(1) } else { 1 };
        let plan = par::plan_shards(tail, options.discipline, options.charset, jobs);

        // Workers cannot know how many errors earlier shards produced, so
        // they parse with source-level limits stripped; the merge (and the
        // replay path) applies the real policy. Per-record limits are
        // positional and stay.
        let stripped = ParseOptions {
            policy: RecoveryPolicy {
                max_errs: None,
                max_panic_skip: None,
                ..options.policy
            },
            ..options
        };

        let build = |opts: ParseOptions| -> (PadsParser<'s>, Option<Box<dyn FnMut() -> E>>) {
            let parser = PadsParser::new(schema, registry).with_options(opts);
            match observer {
                Some(factory) => {
                    let (att, harvest) = factory();
                    let mut parser = parser;
                    if let Some(obs) = att.handle {
                        parser = parser.with_observer(obs);
                    }
                    if let Some(core) = att.metrics {
                        parser = parser.with_metrics(core);
                    }
                    (parser, Some(harvest))
                }
                None => (parser, None),
            }
        };

        // Harvest closures are not `Send`, so each worker drains its own
        // observer after every record and ships the delta with it.
        let worker = |shard: &Shard, tx: ShardSender<(Value, ParseDesc), E>| {
            let (parser, mut harvest) = build(stripped);
            let mut it = parser.records(&tail[shard.start..shard.end], name, mask);
            let mut prev = it.budget();
            while let Some((value, mut pd)) = it.next() {
                pd.rebase(base + shard.start, resume.record + shard.first_record);
                let after = it.budget();
                let msg = RecordMsg {
                    nerr: after.errs.saturating_sub(prev.errs) as u32,
                    panic_skipped: after.panic_skipped.saturating_sub(prev.panic_skipped),
                    end_offset: shard.start + it.offset(),
                    extra: harvest.as_mut().map(|h| h()),
                    item: (value, pd),
                };
                prev = after;
                if !tx.send(msg) {
                    break;
                }
            }
        };

        // Sequential replay (plan-local resume point → global coordinates):
        // `records_resumed` positions the cursor globally, so descriptors
        // need no rebase and the budget carries straight through.
        let replay = |from: par::ResumePoint,
                      emit: &mut dyn FnMut((Value, ParseDesc), usize, ErrorBudget, Option<E>)| {
            let (parser, mut harvest) = build(options);
            let mut it = parser.records_resumed(
                data,
                name,
                mask,
                ResumePoint {
                    offset: base + from.offset,
                    record: resume.record + from.record,
                    budget: from.budget,
                },
            );
            while let Some(item) = it.next() {
                let budget = it.budget();
                let end = it.offset() - base;
                emit(item, end, budget, harvest.as_mut().map(|h| h()));
            }
            it.budget()
        };

        par::run_sharded(
            &plan,
            &options.policy,
            resume.budget,
            max_inflight,
            worker,
            replay,
            |(value, pd), extra, p: &Progress| {
                let global = Progress {
                    record: resume.record + p.record,
                    end_offset: base + p.end_offset,
                    budget: p.budget,
                };
                consume(value, pd, extra, &global);
            },
        )
    }
}

/// Type-anchoring alias for the observer-less `records_par` calls.
type ObserverlessFactory = fn() -> (WorkerObs, Box<dyn FnMut()>);
