//! Parallel record-sharded parsing for the interpreter.
//!
//! This is the interpreter front-end to [`pads_runtime::par`]: the source is
//! split into record-aligned shards, each shard is parsed on its own worker
//! thread by a thread-local [`PadsParser`], and the per-record results are
//! merged in source order. The output — values, parse descriptors (with
//! positions rebased to global coordinates), and the [`ErrorBudget`] — is
//! byte-identical to [`PadsParser::records`] run sequentially, under every
//! recovery policy; see the determinism notes on [`pads_runtime::par`].
//!
//! Observers are per-worker: [`PadsParser::records_par_observed`] takes a
//! *factory* that builds one observer per worker thread (observer handles
//! are deliberately not `Send`) and returns the harvested per-worker sinks
//! for the caller to merge. Positions in worker-side observer events are
//! shard-local; aggregate counters (record counts, error codes, type hits)
//! are unaffected and merge exactly.

use pads_runtime::par::{self, Shard, ShardOutcome};
use pads_runtime::{ErrorBudget, Mask, ObsHandle, ParseDesc, RecoveryPolicy};

use crate::parse::{PadsParser, ParseOptions};
use crate::value::Value;

type RecordItems = Vec<(Value, ParseDesc)>;

impl<'s> PadsParser<'s> {
    /// Parses `data` record-at-a-time with the named record type on up to
    /// `jobs` worker threads, returning the records in source order plus the
    /// final error-budget tally.
    ///
    /// Equivalent to draining [`PadsParser::records`] and reading its
    /// budget, for any `jobs`; `jobs <= 1` *is* the sequential path. The
    /// parser's own observer is not carried into workers (observer handles
    /// are not `Send`) — use [`records_par_observed`](Self::records_par_observed)
    /// to observe a parallel parse.
    pub fn records_par(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
        jobs: usize,
    ) -> (RecordItems, ErrorBudget) {
        let (items, budget, _) = self.run_par(data, name, mask, jobs, None::<&ObserverlessFactory>);
        (items, budget)
    }

    /// Like [`records_par`](Self::records_par), but each worker thread (and
    /// the sequential-replay path, if taken) gets its own observer from
    /// `observer`, and the harvested per-segment sinks are returned in merge
    /// order for the caller to fold together.
    ///
    /// The factory returns the observer handle to attach plus a closure
    /// that recovers the sink once the worker is done (sinks are plain data
    /// and cross threads; handles do not).
    pub fn records_par_observed<E, F>(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
        jobs: usize,
        observer: F,
    ) -> (RecordItems, ErrorBudget, Vec<E>)
    where
        E: Send,
        F: Fn() -> (ObsHandle, Box<dyn FnOnce() -> E>) + Sync,
    {
        self.run_par(data, name, mask, jobs, Some(&observer))
    }

    fn run_par<E, F>(
        &self,
        data: &[u8],
        name: &str,
        mask: &Mask,
        jobs: usize,
        observer: Option<&F>,
    ) -> (RecordItems, ErrorBudget, Vec<E>)
    where
        E: Send,
        F: Fn() -> (ObsHandle, Box<dyn FnOnce() -> E>) + Sync,
    {
        let schema = self.schema();
        let registry = self.registry();
        let options = self.options();
        // Unknown names poison the iterator with a single error item, which
        // has no per-shard meaning: let one sequential "shard" handle it.
        let jobs = if schema.type_id(name).is_some() { jobs.max(1) } else { 1 };
        let plan = par::plan_shards(data, options.discipline, options.charset, jobs);

        // Workers cannot know how many errors earlier shards produced, so
        // they parse with source-level limits stripped; the merge (and the
        // replay path) applies the real policy. Per-record limits are
        // positional and stay.
        let stripped = ParseOptions {
            policy: RecoveryPolicy {
                max_errs: None,
                max_panic_skip: None,
                ..options.policy
            },
            ..options
        };

        let build = |opts: ParseOptions| -> (PadsParser<'s>, Option<Box<dyn FnOnce() -> E>>) {
            let parser = PadsParser::new(schema, registry).with_options(opts);
            match observer {
                Some(factory) => {
                    let (obs, harvest) = factory();
                    (parser.with_observer(obs), Some(harvest))
                }
                None => (parser, None),
            }
        };

        // Harvest closures are not `Send`, so each worker drains its own
        // observer into the plain-data sink before returning.
        let worker = |shard: &Shard| {
            let (parser, harvest) = build(stripped);
            let mut items = Vec::with_capacity(shard.records);
            let mut it = parser.records(&data[shard.start..shard.end], name, mask);
            for (value, mut pd) in it.by_ref() {
                pd.rebase(shard.start, shard.first_record);
                items.push((value, pd));
            }
            let budget = it.budget();
            ShardOutcome { items, budget, extra: harvest.map(|h| h()) }
        };

        let replay = |shard: &Shard, carried: ErrorBudget| {
            let (parser, harvest) = build(options);
            let mut items = Vec::new();
            let mut it = parser.records(&data[shard.start..], name, mask);
            it.set_budget(carried);
            for (value, mut pd) in it.by_ref() {
                pd.rebase(shard.start, shard.first_record);
                items.push((value, pd));
            }
            let budget = it.budget();
            ShardOutcome { items, budget, extra: harvest.map(|h| h()) }
        };

        let (items, budget, harvests) =
            par::run_sharded(&plan, &options.policy, worker, replay);
        let extras = harvests.into_iter().flatten().collect();
        (items, budget, extras)
    }
}

/// Type-anchoring alias for the observer-less `records_par` call.
type ObserverlessFactory = fn() -> (ObsHandle, Box<dyn FnOnce()>);
